#ifndef RDFREL_UTIL_THREAD_POOL_H_
#define RDFREL_UTIL_THREAD_POOL_H_

/// \file thread_pool.h
/// Shared executor worker pool (DESIGN.md §13). One lazily-started pool per
/// process serves every parallel query: each worker owns a deque and steals
/// from the others when its own runs dry, so short morsel pipelines from
/// concurrent queries interleave without per-query thread churn.
///
/// Tasks must not block indefinitely on work executed by this same pool
/// (the executor's pipeline tasks never do: they synchronize only on morsel
/// dispensers and join-build latches fed by peer tasks that are already
/// running, because a query submits at most `workers` tasks... see
/// sql/parallel.cc for the exact argument). Submit never blocks.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace rdfrel::util {

class ThreadPool {
 public:
  struct Stats {
    unsigned workers = 0;
    uint64_t submitted = 0;
    uint64_t executed = 0;
    uint64_t steals = 0;   ///< tasks taken from another worker's deque
    size_t queued = 0;     ///< tasks currently waiting across all deques
  };

  /// Starts \p workers threads immediately. workers >= 1.
  explicit ThreadPool(unsigned workers);
  /// Drains nothing: pending tasks still run; the destructor wakes all
  /// workers, lets them finish queued tasks, and joins them.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues \p fn (round-robin across worker deques). Never blocks.
  void Submit(std::function<void()> fn);

  unsigned num_workers() const { return static_cast<unsigned>(workers_.size()); }
  Stats stats() const;

  /// The process-wide pool, created on first use with
  /// max(2, hardware_concurrency) workers (override: RDFREL_POOL_THREADS).
  /// Joined during static destruction, so sanitizers see a clean exit.
  static ThreadPool& Global();
  /// True once Global() has been constructed (stats endpoints use this to
  /// avoid spinning the pool up just to report on it).
  static bool GlobalStarted();

 private:
  // Pool-internal mutexes (deques + wake) all carry lock_rank::kPool — the
  // innermost rank: pool code never takes another engine lock, and Submit /
  // TryPop take the queue locks one at a time, never nested.
  struct WorkerQueue {
    Mutex mu{"pool-queue", lock_rank::kPool};
    std::deque<std::function<void()>> tasks RDFREL_GUARDED_BY(mu);
  };

  void WorkerLoop(size_t index);
  bool TryPop(size_t index, std::function<void()>* out, bool* stolen);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  Mutex wake_mu_{"pool-wake", lock_rank::kPool};
  CondVar wake_cv_;
  std::atomic<size_t> pending_{0};  ///< queued (not yet started) tasks
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_queue_{0};

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> steals_{0};
};

}  // namespace rdfrel::util

#endif  // RDFREL_UTIL_THREAD_POOL_H_
