#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace rdfrel {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) {
  // splitmix64 expansion of the seed into the xoshiro state.
  uint64_t x = seed;
  for (auto& si : s_) {
    x += 0x9e3779b97f4a7c15ull;
    si = Mix64(x);
  }
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  // Rejection-free multiply-shift; bias is negligible for our bounds.
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(Next()) * bound) >> 64);
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n) {
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

uint64_t ZipfSampler::Sample(Random& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace rdfrel
