#ifndef RDFREL_UTIL_LOGGING_H_
#define RDFREL_UTIL_LOGGING_H_

/// \file logging.h
/// Minimal leveled logging plus CHECK macros for internal invariants.
/// CHECK aborts: it guards programmer errors, never user input (user input
/// failures travel through Status).

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rdfrel {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalMessage();
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rdfrel

#define RDFREL_LOG(level)                                             \
  ::rdfrel::internal::LogMessage(::rdfrel::LogLevel::k##level,        \
                                 __FILE__, __LINE__)                  \
      .stream()

#define RDFREL_CHECK(expr)                                            \
  if (expr) {                                                         \
  } else                                                              \
    ::rdfrel::internal::FatalMessage(__FILE__, __LINE__, #expr).stream()

#define RDFREL_DCHECK(expr) RDFREL_CHECK(expr)

#endif  // RDFREL_UTIL_LOGGING_H_
