#include "util/mutex.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rdfrel::util {

namespace detail {

std::atomic<int> g_lock_rank_mode{-1};

bool InitLockRankMode() {
#ifdef NDEBUG
  int mode = 0;
#else
  int mode = 1;
#endif
  // One-time init read; nothing writes the environment concurrently.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("RDFREL_LOCK_RANK")) {
    if (env[0] == '1' && env[1] == '\0') mode = 1;
    if (env[0] == '0' && env[1] == '\0') mode = 0;
  }
  // A racing initializer computes the same value; last store wins benignly.
  g_lock_rank_mode.store(mode, std::memory_order_relaxed);
  return mode == 1;
}

namespace {

/// One held lock. POD on purpose: the per-thread stack below must stay
/// trivially destructible so locks taken during static destruction (the
/// global ThreadPool joins its workers then) never touch a dead object.
struct Held {
  const void* mu;
  const char* name;
  int rank;
  bool shared;
};

constexpr int kMaxHeld = 64;

struct HeldStack {
  int depth;
  Held entries[kMaxHeld];
};

thread_local HeldStack t_held;  // zero-initialized, trivially destructible

[[noreturn]] void AbortWithReport(const char* kind, const char* name,
                                  int rank, const Held* conflict) {
  std::fprintf(stderr, "rdfrel: %s\n", kind);
  std::fprintf(stderr, "  acquiring: \"%s\" (rank %d)\n", name, rank);
  std::fprintf(stderr, "  while holding (outermost first):\n");
  for (int i = 0; i < t_held.depth; ++i) {
    const Held& h = t_held.entries[i];
    std::fprintf(stderr, "    #%d \"%s\" (rank %d%s)\n", i, h.name, h.rank,
                 h.shared ? ", shared" : "");
  }
  if (conflict != nullptr) {
    std::fprintf(stderr,
                 "  cycle report: \"%s\" (rank %d) -> \"%s\" (rank %d) "
                 "inverts the documented order \"%s\" -> \"%s\"\n",
                 conflict->name, conflict->rank, name, rank, name,
                 conflict->name);
  }
  std::fprintf(stderr,
               "  see DESIGN.md \"Locking discipline\" for the lock "
               "hierarchy\n");
  std::abort();
}

}  // namespace

void NoteAcquireSlow(const void* mu, const char* name, int rank,
                     bool shared) {
  HeldStack& s = t_held;
  for (int i = 0; i < s.depth; ++i) {
    if (s.entries[i].mu == mu) {
      AbortWithReport(shared ? "re-entrant shared acquisition detected"
                             : "re-entrant acquisition detected",
                      name, rank, nullptr);
    }
  }
  if (rank != lock_rank::kUnranked) {
    // The new rank must exceed every ranked lock already held; report the
    // innermost violator (the edge that closes the would-be cycle).
    for (int i = s.depth - 1; i >= 0; --i) {
      const Held& h = s.entries[i];
      if (h.rank != lock_rank::kUnranked && h.rank >= rank) {
        AbortWithReport("lock-rank inversion detected", name, rank, &h);
      }
    }
  }
  if (s.depth < kMaxHeld) {
    s.entries[s.depth] = Held{mu, name, rank, shared};
    ++s.depth;
  }
  // Deeper than kMaxHeld: stop recording (never happens with the documented
  // hierarchy; the bound keeps the thread-local trivially destructible).
}

void NoteReleaseSlow(const void* mu) {
  HeldStack& s = t_held;
  for (int i = s.depth - 1; i >= 0; --i) {
    if (s.entries[i].mu != mu) continue;
    // Locks are almost always released innermost-first; tolerate
    // out-of-order release by compacting the stack.
    for (int j = i; j + 1 < s.depth; ++j) s.entries[j] = s.entries[j + 1];
    --s.depth;
    return;
  }
  // Unmatched release: the lock was taken while recording was off (mode
  // toggled mid-hold) or the stack overflowed. Ignore.
}

}  // namespace detail

void SetLockRankChecksEnabled(bool enabled) {
  detail::g_lock_rank_mode.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool LockRankChecksEnabled() { return detail::LockRankOn(); }

}  // namespace rdfrel::util
