#ifndef RDFREL_UTIL_LRU_CACHE_H_
#define RDFREL_UTIL_LRU_CACHE_H_

/// \file lru_cache.h
/// A sharded, thread-safe LRU cache. Keys are hashed to one of N shards,
/// each protected by its own mutex, so concurrent readers on different
/// shards never contend. Within a shard, entries are kept in a doubly
/// linked list ordered by recency; Get refreshes recency, Put evicts the
/// least recently used entry once the shard is at capacity.
///
/// This is the building block for the per-store SPARQL plan cache (see
/// store/backend_util.h): values there are shared_ptr<const CachedPlan>,
/// so a reader can keep using a plan that was concurrently evicted.
///
/// Locking: every shard mutex carries lock_rank::kPlanCache — shards are
/// only ever taken one at a time (Clear/size/stats iterate sequentially),
/// and callers hold at most the store lock (kStore) above this.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/mutex.h"

namespace rdfrel::util {

/// Aggregate counters for one cache. Snapshots are approximate under
/// concurrency (shards are read without a global lock) but each shard's
/// numbers are internally consistent.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;

  double hit_rate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// \p capacity is the total entry budget, split evenly across
  /// \p num_shards (rounded up to a power of two; every shard holds at
  /// least one entry).
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8) {
    size_t shards = 1;
    while (shards < num_shards) shards <<= 1;
    size_t per_shard = (capacity + shards - 1) / shards;
    if (per_shard == 0) per_shard = 1;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  /// Returns the value for \p key (refreshing its recency), or nullopt.
  std::optional<Value> Get(const Key& key) {
    Shard& s = ShardFor(key);
    MutexLock lock(&s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      ++s.misses;
      return std::nullopt;
    }
    ++s.hits;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites \p key. The new entry becomes most recent.
  void Put(const Key& key, Value value) {
    Shard& s = ShardFor(key);
    MutexLock lock(&s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      it->second->second = std::move(value);
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    if (s.lru.size() >= s.capacity) {
      s.map.erase(s.lru.back().first);
      s.lru.pop_back();
      ++s.evictions;
    }
    s.lru.emplace_front(key, std::move(value));
    s.map[key] = s.lru.begin();
  }

  /// Removes \p key; false when absent.
  bool Erase(const Key& key) {
    Shard& s = ShardFor(key);
    MutexLock lock(&s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    s.lru.erase(it->second);
    s.map.erase(it);
    return true;
  }

  /// Drops every entry (hit/miss counters are retained).
  void Clear() {
    for (auto& shard : shards_) {
      MutexLock lock(&shard->mu);
      shard->lru.clear();
      shard->map.clear();
    }
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& shard : shards_) {
      MutexLock lock(&shard->mu);
      n += shard->lru.size();
    }
    return n;
  }

  CacheStats stats() const {
    CacheStats out;
    for (const auto& shard : shards_) {
      MutexLock lock(&shard->mu);
      out.hits += shard->hits;
      out.misses += shard->misses;
      out.evictions += shard->evictions;
      out.entries += shard->lru.size();
    }
    return out;
  }

 private:
  struct Shard {
    explicit Shard(size_t cap) : capacity(cap) {}
    mutable Mutex mu{"lru-shard", lock_rank::kPlanCache};
    std::list<std::pair<Key, Value>> lru
        RDFREL_GUARDED_BY(mu);  // front == most recent
    std::unordered_map<Key,
                       typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        map RDFREL_GUARDED_BY(mu);
    uint64_t hits RDFREL_GUARDED_BY(mu) = 0;
    uint64_t misses RDFREL_GUARDED_BY(mu) = 0;
    uint64_t evictions RDFREL_GUARDED_BY(mu) = 0;
    const size_t capacity;
  };

  Shard& ShardFor(const Key& key) {
    // Shard on the high bits: std::hash of integers is commonly identity,
    // and low bits already pick the bucket inside the shard's map.
    size_t h = hash_(key);
    h ^= h >> 17;
    h *= 0x9e3779b97f4a7c15ULL;
    return *shards_[(h >> 32) & (shards_.size() - 1)];
  }
  const Shard& ShardFor(const Key& key) const {
    return const_cast<ShardedLruCache*>(this)->ShardFor(key);
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  Hash hash_;
};

}  // namespace rdfrel::util

#endif  // RDFREL_UTIL_LRU_CACHE_H_
