#include "util/arena.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <new>

namespace rdfrel::util {

ArenaStats& GlobalArenaStats() {
  static ArenaStats stats;
  return stats;
}

namespace {

std::atomic<uint64_t> g_next_arena_id{1};

/// Thread-local slab: a lock-free bump region carved out of one arena.
/// Keyed by the arena's process-unique id so an entry left over from a
/// destroyed arena can never be mistaken for the current one.
struct Slab {
  uint64_t arena_id = 0;
  char* cur = nullptr;
  size_t avail = 0;
};

thread_local Slab t_slab;

inline char* AlignUp(char* p, size_t align) {
  auto v = reinterpret_cast<uintptr_t>(p);
  v = (v + align - 1) & ~(align - 1);
  return reinterpret_cast<char*>(v);
}

}  // namespace

QueryArena::QueryArena()
    : id_(g_next_arena_id.fetch_add(1, std::memory_order_relaxed)) {
  GlobalArenaStats().arenas_created.fetch_add(1, std::memory_order_relaxed);
}

QueryArena::~QueryArena() {
  const uint64_t total = bytes_reserved();
  auto& stats = GlobalArenaStats();
  uint64_t peak = stats.bytes_peak.load(std::memory_order_relaxed);
  while (total > peak &&
         !stats.bytes_peak.compare_exchange_weak(peak, total,
                                                 std::memory_order_relaxed)) {
  }
}

std::pair<char*, size_t> QueryArena::Refill(size_t min_bytes) {
  MutexLock lock(&mu_);
  if (avail_ < min_bytes) {
    const size_t chunk = std::max(min_bytes, kChunkBytes);
    chunks_.push_back(std::make_unique<char[]>(chunk));
    cur_ = chunks_.back().get();
    avail_ = chunk;
    bytes_reserved_.fetch_add(chunk, std::memory_order_relaxed);
    GlobalArenaStats().bytes_reserved_total.fetch_add(
        chunk, std::memory_order_relaxed);
  }
  char* region = cur_;
  const size_t take = std::min(avail_, std::max(min_bytes, kSlabBytes));
  cur_ += take;
  avail_ -= take;
  return {region, take};
}

void* QueryArena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  // Oversized requests bypass the slab so they don't strand its remainder.
  if (bytes + align > kSlabBytes) {
    auto [region, size] = Refill(bytes + align);
    return AlignUp(region, align);
  }
  Slab& slab = t_slab;
  if (slab.arena_id == id_) {
    char* aligned = AlignUp(slab.cur, align);
    const size_t pad = static_cast<size_t>(aligned - slab.cur);
    if (pad + bytes <= slab.avail) {
      slab.cur = aligned + bytes;
      slab.avail -= pad + bytes;
      return aligned;
    }
  }
  // Slab missing, stale, or exhausted: refill from the arena. The previous
  // slab's remainder (from this or another arena) is abandoned — at most
  // kSlabBytes per switch, reclaimed when its owning arena dies.
  auto [region, size] = Refill(bytes + align);
  char* aligned = AlignUp(region, align);
  slab.arena_id = id_;
  slab.cur = aligned + bytes;
  slab.avail = size - static_cast<size_t>(slab.cur - region);
  return aligned;
}

}  // namespace rdfrel::util
