#include "util/status.h"

namespace rdfrel {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kInvalidQuery:
      return "InvalidQuery";
    case StatusCode::kInternalPlanError:
      return "InternalPlanError";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code == StatusCode::kOk) return;  // degrade to OK rather than lie
  rep_ = std::make_shared<const Rep>(Rep{code, std::move(message)});
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : kEmptyString;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace rdfrel
