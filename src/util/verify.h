#ifndef RDFREL_UTIL_VERIFY_H_
#define RDFREL_UTIL_VERIFY_H_

/// \file verify.h
/// Process-wide gate for the plan/IR invariant verifiers (DESIGN.md §8).
///
/// Verification runs unconditionally in Debug builds (NDEBUG undefined).
/// In optimized builds it is off by default and can be switched on either
/// per query (QueryOptions::verify_plans), per process via the environment
/// variable RDFREL_VERIFY_PLANS=1, or programmatically via SetVerifyPlans.

namespace rdfrel::util {

/// True when the plan/operator verifiers should run for this process.
/// Thread-safe; the environment is read once on first use.
bool VerifyPlansEnabled();

/// Overrides the process-wide default (tests, embedding applications).
/// Thread-safe. ResetVerifyPlans restores the build/env-derived default.
void SetVerifyPlans(bool enabled);
void ResetVerifyPlans();

}  // namespace rdfrel::util

#endif  // RDFREL_UTIL_VERIFY_H_
