#ifndef RDFREL_UTIL_ARENA_H_
#define RDFREL_UTIL_ARENA_H_

/// \file arena.h
/// Per-query bump allocator (DESIGN.md §13). A QueryArena owns a list of
/// large chunks and hands out aligned slices; nothing is ever freed
/// individually — the whole arena drops at query end, so hot-path
/// allocations (morsel row buffers, shared join-build scratch) never touch
/// the global allocator after warm-up.
///
/// Thread model: Allocate() is safe from any number of executor workers
/// concurrently. Each thread keeps a private slab (a thread-local cache of
/// the arena's current chunk) and bumps it without synchronization; only
/// slab refills take the arena mutex. Slabs are keyed by a process-unique
/// arena id, so a stale thread-local entry from a destroyed arena can never
/// match a live one.
///
/// ArenaAllocator<T> adapts the arena to STL containers
/// (std::vector<Row, ArenaAllocator<Row>> etc.); deallocate is a no-op.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/mutex.h"

namespace rdfrel::util {

/// Process-wide arena counters surfaced through /stats.
struct ArenaStats {
  std::atomic<uint64_t> arenas_created{0};
  std::atomic<uint64_t> bytes_reserved_total{0};  ///< cumulative chunk bytes
  std::atomic<uint64_t> bytes_peak{0};  ///< largest single-arena footprint
};

ArenaStats& GlobalArenaStats();

class QueryArena {
 public:
  /// Chunk granularity; single allocations larger than this get a dedicated
  /// chunk. 256 KiB amortizes the mutex over ~64 slab refills per worker per
  /// million small allocations while keeping small-query footprint modest.
  static constexpr size_t kChunkBytes = 256 * 1024;
  /// Per-thread slab granularity (lock-free bump region).
  static constexpr size_t kSlabBytes = 64 * 1024;

  QueryArena();
  ~QueryArena();

  QueryArena(const QueryArena&) = delete;
  QueryArena& operator=(const QueryArena&) = delete;

  /// Returns \p bytes of storage aligned to \p align (power of two).
  /// Thread-safe; never returns nullptr (throws std::bad_alloc on OOM like
  /// operator new). Zero-byte requests return a unique non-null pointer.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Total bytes reserved from the system so far (monotone; the arena never
  /// shrinks before destruction). Safe to read concurrently.
  uint64_t bytes_reserved() const {
    return bytes_reserved_.load(std::memory_order_relaxed);
  }

  /// Process-unique id (used to key thread-local slabs).
  uint64_t id() const { return id_; }

 private:
  /// Grabs a fresh region of at least \p min_bytes from the arena proper.
  /// Returns [ptr, size]. Takes the mutex itself.
  std::pair<char*, size_t> Refill(size_t min_bytes) RDFREL_EXCLUDES(mu_);

  const uint64_t id_;
  Mutex mu_{"arena", lock_rank::kArena};
  std::vector<std::unique_ptr<char[]>> chunks_
      RDFREL_GUARDED_BY(mu_);                    ///< owned storage
  char* cur_ RDFREL_GUARDED_BY(mu_) = nullptr;   ///< bump cursor, last chunk
  size_t avail_ RDFREL_GUARDED_BY(mu_) = 0;      ///< bytes left at cur_
  std::atomic<uint64_t> bytes_reserved_{0};
};

/// Minimal STL allocator over a QueryArena. The arena is borrowed and must
/// outlive every container (and every moved-from copy of the container)
/// that uses it. deallocate is a no-op: memory returns when the arena dies.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(QueryArena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) noexcept {}

  QueryArena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const noexcept {
    return arena_ != other.arena();
  }

 private:
  QueryArena* arena_;
};

}  // namespace rdfrel::util

#endif  // RDFREL_UTIL_ARENA_H_
