#ifndef RDFREL_UTIL_SCOPE_MARKERS_H_
#define RDFREL_UTIL_SCOPE_MARKERS_H_

/// \file scope_markers.h
/// Lifetime-scope marker macros checked by rdfrel-lint (DESIGN.md §15).
///
/// RDFREL_QUERY_SCOPED declares that every instance of the annotated class
/// lives strictly inside one query execution: constructed after the query's
/// QueryArena, destroyed before it. Members of such a class may therefore
/// hold arena-backed pointers and containers — the lint's arena-escape rule
/// exempts them. Apply it between the class keyword and the name:
///
///   class RDFREL_QUERY_SCOPED ExchangeOp final : public Operator { ... };
///
/// The claim is a contract, not a decoration: marking a type that escapes
/// the query (a cache entry, a store member, anything reachable from the
/// plan cache) reintroduces exactly the use-after-free the rule exists to
/// prevent. Under Clang the marker compiles to [[clang::annotate]] so the
/// libTooling engine reads it from the AST; under other compilers it
/// vanishes and the lexical engine matches the macro name in source.

#if defined(__clang__)
#define RDFREL_QUERY_SCOPED [[clang::annotate("rdfrel-query-scoped")]]
#else
#define RDFREL_QUERY_SCOPED
#endif

#endif  // RDFREL_UTIL_SCOPE_MARKERS_H_
