#ifndef RDFREL_UTIL_STRING_UTIL_H_
#define RDFREL_UTIL_STRING_UTIL_H_

/// \file string_util.h
/// Small string helpers shared across parsers and SQL generation.

#include <string>
#include <string_view>
#include <vector>

namespace rdfrel {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// True if \p s starts with / ends with \p prefix / \p suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII letters.
std::string ToLowerAscii(std::string_view s);
/// Upper-cases ASCII letters.
std::string ToUpperAscii(std::string_view s);

/// Case-insensitive ASCII equality (for SQL keywords).
bool EqualsIgnoreCaseAscii(std::string_view a, std::string_view b);

/// Joins strings with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Escapes a string for embedding in a single-quoted SQL literal
/// (doubles embedded quotes).
std::string SqlQuote(std::string_view s);

/// Escapes control characters, quotes and backslashes for N-Triples output.
std::string NtEscape(std::string_view s);

}  // namespace rdfrel

#endif  // RDFREL_UTIL_STRING_UTIL_H_
