#ifndef RDFREL_UTIL_HASH_H_
#define RDFREL_UTIL_HASH_H_

/// \file hash.h
/// Hash primitives. The DB2RDF predicate-to-column assignment (paper §2.2)
/// composes a *family* of independent hash functions h_1 ⊕ h_2 ⊕ … ⊕ h_n;
/// SeededHash provides that family via distinct 64-bit seeds.

#include <cstdint>
#include <string_view>

namespace rdfrel {

/// FNV-1a over bytes; stable across platforms and runs.
uint64_t Fnv1a64(std::string_view data);

/// A strong 64-bit avalanche mix (splitmix64 finalizer).
uint64_t Mix64(uint64_t x);

/// One member of a seeded hash-function family. Two SeededHash instances with
/// different seeds behave as independent hash functions over strings, which
/// is what predicate-mapping composition (Definition 2.2) requires.
class SeededHash {
 public:
  explicit SeededHash(uint64_t seed) : seed_(seed) {}

  /// Hash of \p data under this seed.
  uint64_t Hash(std::string_view data) const;

  /// Hash reduced to a column index in [0, range). \p range must be > 0.
  uint32_t Bucket(std::string_view data, uint32_t range) const;

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
};

/// Combines two hash values (boost::hash_combine style, 64-bit).
uint64_t HashCombine(uint64_t a, uint64_t b);

}  // namespace rdfrel

#endif  // RDFREL_UTIL_HASH_H_
