#ifndef RDFREL_UTIL_RANDOM_H_
#define RDFREL_UTIL_RANDOM_H_

/// \file random.h
/// Deterministic PRNG used by all synthetic dataset generators so workloads
/// are reproducible across runs and machines.

#include <cstdint>
#include <vector>

namespace rdfrel {

/// xoshiro256** seeded via splitmix64. Deterministic and fast.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [0, bound). \p bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability \p p.
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent \p s (s > 0). Uses the
  /// precomputed-CDF sampler in ZipfSampler for repeated draws; this method
  /// is a convenience for one-off draws (O(n) the first time per (n, s)).
  uint64_t Uniform64() { return Next(); }

 private:
  uint64_t s_[4];
};

/// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s.
/// Precomputes the CDF once; each draw is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);

  /// Draws one rank using \p rng.
  uint64_t Sample(Random& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace rdfrel

#endif  // RDFREL_UTIL_RANDOM_H_
