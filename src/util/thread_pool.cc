#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace rdfrel::util {

namespace {

std::atomic<bool> g_global_started{false};

unsigned GlobalPoolSize() {
  // One-time init read; nothing writes the environment concurrently.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("RDFREL_POOL_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1 && v <= 256) return static_cast<unsigned>(v);
  }
  // At least two even on single-core hosts so parallel plans still
  // interleave (and the differential/TSan suites exercise real concurrency).
  return std::max(2u, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = 1;
  queues_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Pairs with the wait loop: without the lock a worker could check
    // stop_ false, then sleep and miss the broadcast.
    MutexLock lock(&wake_mu_);
  }
  wake_cv_.NotifyAll();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  const size_t index =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    MutexLock lock(&queues_[index]->mu);
    queues_[index]->tasks.push_back(std::move(fn));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(&wake_mu_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_cv_.NotifyOne();
}

bool ThreadPool::TryPop(size_t index, std::function<void()>* out,
                        bool* stolen) {
  // Own queue first (FIFO: oldest task of this worker)...
  {
    WorkerQueue& q = *queues_[index];
    MutexLock lock(&q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.front());
      q.tasks.pop_front();
      *stolen = false;
      return true;
    }
  }
  // ...then steal from the back of a peer's.
  for (size_t off = 1; off < queues_.size(); ++off) {
    WorkerQueue& q = *queues_[(index + off) % queues_.size()];
    MutexLock lock(&q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.back());
      q.tasks.pop_back();
      *stolen = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t index) {
  while (true) {
    std::function<void()> task;
    bool stolen = false;
    if (TryPop(index, &task, &stolen)) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      if (stolen) steals_.fetch_add(1, std::memory_order_relaxed);
      task();
      executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    MutexLock lock(&wake_mu_);
    while (!stop_.load(std::memory_order_acquire) &&
           pending_.load(std::memory_order_relaxed) == 0) {
      wake_cv_.Wait(wake_mu_);
    }
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.workers = num_workers();
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.queued = pending_.load(std::memory_order_relaxed);
  return s;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(GlobalPoolSize());
  g_global_started.store(true, std::memory_order_release);
  return pool;
}

bool ThreadPool::GlobalStarted() {
  return g_global_started.load(std::memory_order_acquire);
}

}  // namespace rdfrel::util
