#include "util/hash.h"

namespace rdfrel {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char ch : data) {
    auto c = static_cast<unsigned char>(ch);
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t SeededHash::Hash(std::string_view data) const {
  // Mix the seed into the FNV stream head and tail so different seeds give
  // genuinely decorrelated functions, not mere rotations of one another.
  return Mix64(Fnv1a64(data) ^ Mix64(seed_));
}

uint32_t SeededHash::Bucket(std::string_view data, uint32_t range) const {
  // Fast range reduction (Lemire): unbiased enough for column assignment.
  return static_cast<uint32_t>(
      (static_cast<unsigned __int128>(Hash(data)) * range) >> 64);
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4));
}

}  // namespace rdfrel
