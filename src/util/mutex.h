#ifndef RDFREL_UTIL_MUTEX_H_
#define RDFREL_UTIL_MUTEX_H_

/// \file mutex.h
/// The annotated synchronization layer (DESIGN.md §14). Every mutex in this
/// codebase is one of the wrappers below, which buys two always-on checks:
///
///  1. **Compile-time thread-safety analysis** (Clang only). The wrappers
///     carry Clang capability annotations, every guarded field is marked
///     `RDFREL_GUARDED_BY(mu_)`, and every lock-holding function is marked
///     `RDFREL_REQUIRES(...)` — so building with `-Wthread-safety
///     -Werror=thread-safety` (scripts/check_thread_safety.sh) rejects a
///     data race on an annotated field at compile time. On non-Clang
///     compilers every macro expands to nothing.
///
///  2. **Runtime lock-rank deadlock detection** (Debug builds, or
///     `RDFREL_LOCK_RANK=1`, or SetLockRankChecksEnabled(true)). Clang's
///     analysis is per-function and cannot see cross-mutex acquisition
///     *order*, so each wrapper registers a rank from the documented
///     hierarchy (lock_rank below); a per-thread held-lock stack aborts
///     with a cycle report the moment any thread acquires ranks out of
///     order — turning a once-in-a-blue-moon ABBA hang into a
///     deterministic unit-testable crash.
///
/// Locking style rules (enforced by the analysis; see DESIGN.md §14):
///  - hold locks through the RAII guards (MutexLock / ReaderLock /
///    WriterLock), never bare Lock()/Unlock() pairs;
///  - condition-variable predicates are written as explicit `while` loops
///    around CondVar::Wait — the analysis cannot see through a predicate
///    lambda, and the loop form needs no suppression;
///  - `RDFREL_NO_THREAD_SAFETY_ANALYSIS` is a last resort for code that is
///    correct for reasons the analysis cannot express (document why at the
///    use site).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// --------------------------------------------------------------------------
// Clang capability-annotation macro set. Each expands to the corresponding
// __attribute__ under Clang and to nothing elsewhere, so GCC builds are
// unaffected. Names follow the Clang documentation's modern spelling.

#if defined(__clang__) && defined(__has_attribute)
#define RDFREL_TS_ATTRIBUTE__(x) __attribute__((x))
#else
#define RDFREL_TS_ATTRIBUTE__(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex", "shared_mutex", ...).
#define RDFREL_CAPABILITY(x) RDFREL_TS_ATTRIBUTE__(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define RDFREL_SCOPED_CAPABILITY RDFREL_TS_ATTRIBUTE__(scoped_lockable)

/// Field may only be read with \p x held (shared or exclusive) and written
/// with \p x held exclusively.
#define RDFREL_GUARDED_BY(x) RDFREL_TS_ATTRIBUTE__(guarded_by(x))

/// Pointer field whose *pointee* is protected by \p x (the pointer itself
/// may be read freely).
#define RDFREL_PT_GUARDED_BY(x) RDFREL_TS_ATTRIBUTE__(pt_guarded_by(x))

/// Function requires the capabilities to be held exclusively on entry (and
/// does not release them).
#define RDFREL_REQUIRES(...) \
  RDFREL_TS_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function requires at least shared access on entry.
#define RDFREL_REQUIRES_SHARED(...) \
  RDFREL_TS_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively and holds it past return.
#define RDFREL_ACQUIRE(...) \
  RDFREL_TS_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function acquires shared access and holds it past return.
#define RDFREL_ACQUIRE_SHARED(...) \
  RDFREL_TS_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive or, for scoped guards,
/// whatever mode the guard holds).
#define RDFREL_RELEASE(...) \
  RDFREL_TS_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function releases shared access.
#define RDFREL_RELEASE_SHARED(...) \
  RDFREL_TS_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the return value
/// meaning success.
#define RDFREL_TRY_ACQUIRE(...) \
  RDFREL_TS_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself).
#define RDFREL_EXCLUDES(...) RDFREL_TS_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code reached both
/// with and without the lock through paths the analysis cannot join).
#define RDFREL_ASSERT_CAPABILITY(x) \
  RDFREL_TS_ATTRIBUTE__(assert_capability(x))

/// Function returns a reference to the named capability.
#define RDFREL_RETURN_CAPABILITY(x) RDFREL_TS_ATTRIBUTE__(lock_returned(x))

/// Documents that this capability must be acquired before the listed ones.
#define RDFREL_ACQUIRED_BEFORE(...) \
  RDFREL_TS_ATTRIBUTE__(acquired_before(__VA_ARGS__))

/// Documents that this capability must be acquired after the listed ones.
#define RDFREL_ACQUIRED_AFTER(...) \
  RDFREL_TS_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Turns the analysis off for one function. Last resort; document why.
#define RDFREL_NO_THREAD_SAFETY_ANALYSIS \
  RDFREL_TS_ATTRIBUTE__(no_thread_safety_analysis)

namespace rdfrel::util {

// --------------------------------------------------------------------------
// Lock ranks. The documented process-wide acquisition order: a thread may
// only acquire a mutex whose rank is STRICTLY GREATER than every ranked
// mutex it already holds. Gaps leave room for future layers.
//
// The order encodes every nesting the engine actually performs:
//   server conn queue -> sharded-store coordinator -> shard router/gather
//   -> store r/w lock -> plan cache shard -> decoded-page cache -> exchange
//   reorder buffer -> shared join build -> join shard -> query arena -> WAL
//   writer (group-commit flusher state) -> Env file map -> worker-pool
//   wake/queue locks.
// e.g. a writer holding the store lock logs to the WAL (kStore < kWal), the
// WAL writer under kEveryRecord appends while holding its own lock
// (kWal < kEnv), and ExchangeOp::Open submits pipeline tasks to the global
// pool under the store's read lock (kStore < kPool). The multi-shard
// coordinator sits ABOVE the per-shard stores: a coordinator thread routes
// a mutation or scatters a fragment while holding its own locks and only
// then enters a shard's kStore lock (kCoordinator < kShardRouter < kStore);
// a shard never calls back up into the coordinator.
namespace lock_rank {
inline constexpr int kUnranked = 0;    ///< ordering not checked (leaf-only)
inline constexpr int kServer = 100;    ///< serve::SparqlServer connection queue
inline constexpr int kCoordinator = 140;  ///< shard::ShardedStore top lock
inline constexpr int kShardRouter = 170;  ///< scatter/gather + router state
inline constexpr int kStore = 200;     ///< store reader/writer lock
inline constexpr int kPlanCache = 300; ///< sharded plan/translation cache
inline constexpr int kPageCache = 400; ///< sql::Table decoded-page cache
inline constexpr int kExchange = 500;  ///< ExchangeOp reorder buffer
inline constexpr int kJoinBuild = 600; ///< SharedJoinBuild barrier state
inline constexpr int kJoinShard = 700; ///< SharedJoinBuild striped shards
inline constexpr int kArena = 800;     ///< QueryArena chunk list
inline constexpr int kWal = 900;       ///< persist::WalWriter flusher state
inline constexpr int kEnv = 1000;      ///< persist Env file maps / fault spec
inline constexpr int kPool = 1100;     ///< util::ThreadPool wake + queues
}  // namespace lock_rank

/// Rank checking defaults to ON in Debug builds (!NDEBUG) and OFF
/// otherwise; the environment variable RDFREL_LOCK_RANK=1/0 overrides the
/// default, and tests may force it at runtime regardless of build type.
void SetLockRankChecksEnabled(bool enabled);
bool LockRankChecksEnabled();

namespace detail {

/// -1 = not yet initialized (resolve from NDEBUG + RDFREL_LOCK_RANK).
extern std::atomic<int> g_lock_rank_mode;
bool InitLockRankMode();

inline bool LockRankOn() {
  const int m = g_lock_rank_mode.load(std::memory_order_relaxed);
  if (m < 0) return InitLockRankMode();
  return m == 1;
}

/// Slow paths live in mutex.cc; the inline wrappers keep the release-build
/// cost of every Lock/Unlock to one relaxed load and a predicted branch.
void NoteAcquireSlow(const void* mu, const char* name, int rank, bool shared);
void NoteReleaseSlow(const void* mu);

inline void NoteAcquire(const void* mu, const char* name, int rank,
                        bool shared) {
  if (LockRankOn()) NoteAcquireSlow(mu, name, rank, shared);
}
inline void NoteRelease(const void* mu) {
  if (LockRankOn()) NoteReleaseSlow(mu);
}

}  // namespace detail

// --------------------------------------------------------------------------
// Wrappers.

/// An annotated std::mutex with a registered lock rank. The rank check runs
/// BEFORE blocking on the underlying mutex, so a would-be ABBA deadlock
/// aborts with a cycle report instead of hanging.
class RDFREL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// \p name appears in cycle reports; \p rank is one of lock_rank above.
  explicit Mutex(const char* name, int rank = lock_rank::kUnranked)
      : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RDFREL_ACQUIRE() {
    detail::NoteAcquire(this, name_, rank_, /*shared=*/false);
    mu_.lock();
  }
  void Unlock() RDFREL_RELEASE() {
    mu_.unlock();
    detail::NoteRelease(this);
  }
  bool TryLock() RDFREL_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // try_lock cannot deadlock, so no rank check — but record the hold so
    // ordering of later acquisitions is still validated against it.
    detail::NoteAcquire(this, name_, lock_rank::kUnranked, /*shared=*/false);
    return true;
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_ = "mutex";
  int rank_ = lock_rank::kUnranked;
};

/// An annotated std::shared_mutex. Re-entrant acquisition in ANY mode is
/// flagged by the rank detector: shared-then-shared on the same thread
/// deadlocks the moment a writer arrives between the two.
class RDFREL_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name, int rank = lock_rank::kUnranked)
      : name_(name), rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() RDFREL_ACQUIRE() {
    detail::NoteAcquire(this, name_, rank_, /*shared=*/false);
    mu_.lock();
  }
  void Unlock() RDFREL_RELEASE() {
    mu_.unlock();
    detail::NoteRelease(this);
  }
  void LockShared() RDFREL_ACQUIRE_SHARED() {
    detail::NoteAcquire(this, name_, rank_, /*shared=*/true);
    mu_.lock_shared();
  }
  void UnlockShared() RDFREL_RELEASE_SHARED() {
    mu_.unlock_shared();
    detail::NoteRelease(this);
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const char* name_ = "shared_mutex";
  int rank_ = lock_rank::kUnranked;
};

/// Scoped exclusive lock over Mutex. Relockable: Unlock()/Lock() members
/// support the "release around blocking I/O" pattern (WAL group commit)
/// under full analysis coverage.
class RDFREL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RDFREL_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RDFREL_RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the mutex (must currently be held).
  void Unlock() RDFREL_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }
  /// Re-acquires after Unlock().
  void Lock() RDFREL_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex* mu_;
  bool held_ = true;
};

/// Scoped shared (reader) lock over SharedMutex.
class RDFREL_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) RDFREL_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() RDFREL_RELEASE() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Scoped exclusive (writer) lock over SharedMutex.
class RDFREL_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) RDFREL_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() RDFREL_RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable over Mutex. No predicate overloads on purpose: the
/// analysis cannot see into a predicate lambda, so call sites spell the
/// loop out — `while (!cond) cv.Wait(mu);` — which Clang verifies against
/// the guarded fields read by `cond`.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases \p mu, waits, re-acquires. Spurious wakeups happen;
  /// always wrap in a condition loop.
  void Wait(Mutex& mu) RDFREL_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // ownership stays with the caller's guard
  }

  /// Waits up to \p timeout; returns false on timeout, true when notified
  /// (or on a spurious wakeup — re-check the condition either way).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      RDFREL_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    const auto result = cv_.wait_for(adopted, timeout);
    adopted.release();
    return result == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rdfrel::util

#endif  // RDFREL_UTIL_MUTEX_H_
