#include "util/verify.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace rdfrel::util {

namespace {

// -1 = no override (use build/env default), 0 = forced off, 1 = forced on.
std::atomic<int> g_override{-1};

bool DefaultEnabled() {
#ifndef NDEBUG
  return true;
#else
  // One-time init read; nothing writes the environment concurrently.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("RDFREL_VERIFY_PLANS");
  return env != nullptr && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "") != 0;
#endif
}

}  // namespace

bool VerifyPlansEnabled() {
  int v = g_override.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  // The environment never changes mid-process; computing this repeatedly is
  // cheap and keeps the function safe to call before main().
  static const bool kDefault = DefaultEnabled();
  return kDefault;
}

void SetVerifyPlans(bool enabled) {
  g_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void ResetVerifyPlans() { g_override.store(-1, std::memory_order_relaxed); }

}  // namespace rdfrel::util
