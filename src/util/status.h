#ifndef RDFREL_UTIL_STATUS_H_
#define RDFREL_UTIL_STATUS_H_

/// \file status.h
/// Error handling primitives in the Arrow/RocksDB idiom: fallible functions
/// return a Status (or Result<T>) rather than throwing. Exceptions are never
/// thrown across public API boundaries of this library.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace rdfrel {

/// Machine-readable classification of an error.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kParseError,        ///< SPARQL/SQL/N-Triples text failed to parse.
  kNotFound,          ///< Named table/index/prefix/etc. does not exist.
  kAlreadyExists,     ///< Attempt to create a duplicate object.
  kOutOfRange,        ///< Index/offset outside valid bounds.
  kUnsupported,       ///< Feature intentionally outside the subset we build.
  kInternal,          ///< Invariant violation: a bug in this library.
  kExecutionError,    ///< Runtime failure while evaluating a query.
  kCapacityExceeded,  ///< Storage limits (page, row width) exceeded.
  kInvalidQuery,      ///< Query is well-formed text but semantically
                      ///< invalid (undeclared prefix, bad aggregate use).
  kInternalPlanError,  ///< A plan/IR invariant verifier rejected a flow
                       ///< tree, exec tree, or operator tree. Always a bug
                       ///< in the optimizer/planner, never user error. The
                       ///< message carries a dotted path to the offending
                       ///< node.
  kDataLoss,  ///< Persistent state failed integrity checks: a snapshot or
              ///< WAL section with a bad CRC, truncated record, or LSN gap.
              ///< Recovery downgrades to an older snapshot where possible;
              ///< this code surfaces when no valid state remains.
  kCancelled,  ///< The caller (a cancel token or a streaming sink) asked
               ///< the query to stop. Never a bug; partial results may have
               ///< been delivered before the cancellation took effect.
  kDeadlineExceeded,  ///< The per-query deadline passed before execution
                      ///< finished. Checked at batch boundaries, so a long
                      ///< scan stops within one batch of the deadline.
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap, movable success-or-error value. The OK state allocates nothing.
/// [[nodiscard]]: silently dropping a Status loses the only error signal
/// this library emits. When a failure is genuinely irrelevant (best-effort
/// cleanup, infallible-by-construction calls), discard it with
/// `IgnoreError(expr, "reason")` — a bare `(void)expr;` is rejected by
/// rdfrel-lint's status-discipline rule (DESIGN.md §15) because it leaves
/// nothing greppable behind.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status; \p code must not be kOk.
  Status(StatusCode code, std::string message);

  /// Factory helpers, one per error class.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status InvalidQuery(std::string msg) {
    return Status(StatusCode::kInvalidQuery, std::move(msg));
  }
  static Status InternalPlanError(std::string msg) {
    return Status(StatusCode::kInternalPlanError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// The error message; empty for OK.
  const std::string& message() const;

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsExecutionError() const {
    return code() == StatusCode::kExecutionError;
  }
  bool IsCapacityExceeded() const {
    return code() == StatusCode::kCapacityExceeded;
  }
  bool IsInvalidQuery() const {
    return code() == StatusCode::kInvalidQuery;
  }
  bool IsInternalPlanError() const {
    return code() == StatusCode::kInternalPlanError;
  }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

/// A value-or-Status sum type, analogous to arrow::Result<T>.
///
/// Usage:
/// \code
///   Result<int> r = ParseInt(s);
///   if (!r.ok()) return r.status();
///   int v = *r;
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error Status. Must not be OK.
  Result(Status status) : var_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(var_); }

  /// The error status; Status::OK() if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(var_);
  }

  /// Access the value. Undefined if !ok().
  const T& value() const& { return std::get<T>(var_); }
  T& value() & { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out, or returns \p fallback on error.
  T ValueOr(T fallback) && {
    if (ok()) return std::get<T>(std::move(var_));
    return fallback;
  }

 private:
  std::variant<T, Status> var_;
};

/// Deliberately discards an error, leaving a greppable audit trail. The
/// required \p reason documents *why* the failure doesn't matter ("best-effort
/// cleanup in destructor", "fallback path already taken"). Prefer this over
/// `(void)expr;`, which rdfrel-lint's status-discipline rule rejects. The
/// parameters are intentionally unnamed: the call is the documentation.
inline void IgnoreError(const Status&, const char* /*reason*/) {}

/// Result<T> overload: discards both the value and the error.
template <typename T>
inline void IgnoreError(const Result<T>&, const char* /*reason*/) {}

#define RDFREL_CONCAT_IMPL(x, y) x##y
#define RDFREL_CONCAT(x, y) RDFREL_CONCAT_IMPL(x, y)

/// Propagate-on-error macros (statement context only). The temporary gets a
/// line-unique name so nested expansions don't shadow each other.
#define RDFREL_RETURN_NOT_OK(expr)                                  \
  do {                                                              \
    ::rdfrel::Status RDFREL_CONCAT(_st_, __LINE__) = (expr);        \
    if (!RDFREL_CONCAT(_st_, __LINE__).ok()) {                      \
      return RDFREL_CONCAT(_st_, __LINE__);                         \
    }                                                               \
  } while (0)

/// ASSIGN_OR_RETURN: evaluates a Result<T> expression, returns its Status on
/// error, otherwise binds the value to `lhs`.
#define RDFREL_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  RDFREL_ASSIGN_OR_RETURN_IMPL(                                    \
      RDFREL_CONCAT(_result_tmp_, __LINE__), lhs, rexpr)

#define RDFREL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace rdfrel

#endif  // RDFREL_UTIL_STATUS_H_
