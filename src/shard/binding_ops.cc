#include "shard/binding_ops.h"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace rdfrel::shard {

namespace {

using store::Binding;
using store::ResultSet;

constexpr char kUnit = '\x1f';  // cell separator inside composite keys

std::optional<double> NumericOfTerm(const rdf::Term& t) {
  if (!t.is_literal()) return std::nullopt;
  const std::string& lex = t.lexical();
  if (lex.empty()) return std::nullopt;
  try {
    size_t pos = 0;
    double d = std::stod(lex, &pos);
    if (pos != lex.size()) return std::nullopt;
    return d;
  } catch (...) {
    return std::nullopt;
  }
}

/// Column indices of \p vars within \p table (npos when absent).
std::vector<size_t> ColumnIndexes(const ResultSet& table,
                                  const std::vector<std::string>& vars) {
  std::vector<size_t> idx(vars.size(), static_cast<size_t>(-1));
  for (size_t i = 0; i < vars.size(); ++i) {
    auto it = std::find(table.vars.begin(), table.vars.end(), vars[i]);
    if (it != table.vars.end()) {
      idx[i] = static_cast<size_t>(it - table.vars.begin());
    }
  }
  return idx;
}

/// Composite key over the given columns; requires all of them bound.
bool BoundKey(const Binding& row, const std::vector<size_t>& cols,
              std::string* key) {
  key->clear();
  for (size_t c : cols) {
    if (!row[c].has_value()) return false;
    *key += row[c]->DictionaryKey();
    *key += kUnit;
  }
  return true;
}

bool Compatible(const Binding& l, const std::vector<size_t>& lcols,
                const Binding& r, const std::vector<size_t>& rcols) {
  for (size_t i = 0; i < lcols.size(); ++i) {
    const auto& a = l[lcols[i]];
    const auto& b = r[rcols[i]];
    if (a.has_value() && b.has_value() && !(*a == *b)) return false;
  }
  return true;
}

/// Join scaffolding shared by inner and left join: output schema, the
/// bound-key hash index over the right side, and the merged-row builder.
struct JoinContext {
  std::vector<std::string> shared;
  std::vector<size_t> lshared, rshared;
  std::vector<size_t> rextra;      // right columns not shared
  std::vector<std::string> out_vars;
  // Right row indices by composite bound key; rows with an unbound shared
  // cell can match many keys and are probed by compatibility scan instead.
  std::unordered_map<std::string, std::vector<size_t>> index;
  std::vector<size_t> wildcards;

  JoinContext(const ResultSet& left, const ResultSet& right) {
    for (const auto& v : left.vars) {
      if (std::find(right.vars.begin(), right.vars.end(), v) !=
          right.vars.end()) {
        shared.push_back(v);
      }
    }
    lshared = ColumnIndexes(left, shared);
    rshared = ColumnIndexes(right, shared);
    for (size_t i = 0; i < right.vars.size(); ++i) {
      if (std::find(shared.begin(), shared.end(), right.vars[i]) ==
          shared.end()) {
        rextra.push_back(i);
      }
    }
    out_vars = left.vars;
    for (size_t i : rextra) out_vars.push_back(right.vars[i]);

    std::string key;
    for (size_t r = 0; r < right.rows.size(); ++r) {
      if (BoundKey(right.rows[r], rshared, &key)) {
        index[key].push_back(r);
      } else {
        wildcards.push_back(r);
      }
    }
  }

  Binding Merge(const Binding& l, const Binding& r) const {
    Binding out = l;
    // COALESCE the shared columns: a var unbound on the mandatory side may
    // be defined by the other side (sql_base.cc CompatMerge).
    for (size_t i = 0; i < lshared.size(); ++i) {
      if (!out[lshared[i]].has_value()) out[lshared[i]] = r[rshared[i]];
    }
    for (size_t i : rextra) out.push_back(r[i]);
    return out;
  }

  /// Invokes \p emit for every right row compatible with \p row.
  /// Returns the number of matches.
  template <typename Fn>
  size_t ForEachMatch(const Binding& row, const ResultSet& right,
                      Fn&& emit) const {
    size_t matches = 0;
    std::string key;
    if (BoundKey(row, lshared, &key)) {
      auto it = index.find(key);
      if (it != index.end()) {
        for (size_t r : it->second) {
          ++matches;
          emit(right.rows[r]);
        }
      }
      for (size_t r : wildcards) {
        if (Compatible(row, lshared, right.rows[r], rshared)) {
          ++matches;
          emit(right.rows[r]);
        }
      }
    } else {
      for (size_t r = 0; r < right.rows.size(); ++r) {
        if (Compatible(row, lshared, right.rows[r], rshared)) {
          ++matches;
          emit(right.rows[r]);
        }
      }
    }
    return matches;
  }
};

rdf::Term IntTerm(int64_t v) {
  return rdf::Term::TypedLiteral(std::to_string(v),
                                 "http://www.w3.org/2001/XMLSchema#integer");
}

rdf::Term DecimalTerm(double v) {
  std::ostringstream os;
  os << v;
  return rdf::Term::TypedLiteral(os.str(),
                                 "http://www.w3.org/2001/XMLSchema#decimal");
}

Result<ResultSet> AggregateTable(const sparql::Query& query,
                                 const ResultSet& table) {
  std::vector<size_t> group_cols = ColumnIndexes(table, query.group_by);
  for (size_t i = 0; i < group_cols.size(); ++i) {
    if (group_cols[i] == static_cast<size_t>(-1)) {
      return Status::InvalidArgument("GROUP BY variable ?" +
                                     query.group_by[i] + " is unbound");
    }
  }
  // Groups in first-encounter order (final order is canonical anyway).
  std::unordered_map<std::string, size_t> group_of;
  std::vector<std::vector<size_t>> groups;
  for (size_t r = 0; r < table.rows.size(); ++r) {
    std::string key;
    for (size_t c : group_cols) {
      const auto& cell = table.rows[r][c];
      key += cell.has_value() ? cell->DictionaryKey() : std::string();
      key += kUnit;
    }
    auto [it, inserted] = group_of.try_emplace(key, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(r);
  }
  // SQL yields one global group even over empty input when there is no
  // GROUP BY (COUNT(*) = 0).
  if (groups.empty() && query.group_by.empty()) groups.emplace_back();

  ResultSet out;
  for (const auto& pr : query.projection) out.vars.push_back(pr.OutputName());
  for (const auto& members : groups) {
    Binding row;
    for (const auto& pr : query.projection) {
      if (pr.agg == sparql::AggKind::kNone) {
        size_t col = ColumnIndexes(table, {pr.var})[0];
        if (col == static_cast<size_t>(-1) || members.empty()) {
          row.emplace_back();
        } else {
          row.push_back(table.rows[members[0]][col]);
        }
        continue;
      }
      if (pr.agg == sparql::AggKind::kCount) {
        int64_t n = 0;
        if (pr.star) {
          n = static_cast<int64_t>(members.size());
        } else {
          size_t col = ColumnIndexes(table, {pr.var})[0];
          if (col != static_cast<size_t>(-1)) {
            std::unordered_set<std::string> seen;
            for (size_t r : members) {
              const auto& cell = table.rows[r][col];
              if (!cell.has_value()) continue;
              if (pr.distinct) {
                if (!seen.insert(cell->DictionaryKey()).second) continue;
              }
              ++n;
            }
          }
        }
        row.push_back(IntTerm(n));
        continue;
      }
      // Numeric aggregates over literal values; non-numeric terms
      // contribute nothing (they have no lex row), empty set -> unbound.
      size_t col = ColumnIndexes(table, {pr.var})[0];
      std::vector<double> vals;
      std::unordered_set<std::string> seen;
      if (col != static_cast<size_t>(-1)) {
        for (size_t r : members) {
          const auto& cell = table.rows[r][col];
          if (!cell.has_value()) continue;
          std::optional<double> num = NumericOfTerm(*cell);
          if (!num.has_value()) continue;
          if (pr.distinct && !seen.insert(std::to_string(*num)).second) {
            continue;
          }
          vals.push_back(*num);
        }
      }
      if (vals.empty()) {
        row.emplace_back();
        continue;
      }
      double acc = vals[0];
      switch (pr.agg) {
        case sparql::AggKind::kSum:
        case sparql::AggKind::kAvg:
          for (size_t i = 1; i < vals.size(); ++i) acc += vals[i];
          if (pr.agg == sparql::AggKind::kAvg) {
            acc /= static_cast<double>(vals.size());
          }
          break;
        case sparql::AggKind::kMin:
          for (double v : vals) acc = std::min(acc, v);
          break;
        case sparql::AggKind::kMax:
          for (double v : vals) acc = std::max(acc, v);
          break;
        default:
          break;
      }
      row.push_back(DecimalTerm(acc));
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

ResultSet ProjectTable(const sparql::Query& query, ResultSet table) {
  const std::vector<std::string> want = query.EffectiveSelectVars();
  if (want == table.vars) return table;
  std::vector<size_t> cols = ColumnIndexes(table, want);
  ResultSet out;
  out.vars = want;
  out.rows.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    Binding b;
    b.reserve(cols.size());
    for (size_t c : cols) {
      if (c == static_cast<size_t>(-1)) {
        b.emplace_back();
      } else {
        b.push_back(row[c]);
      }
    }
    out.rows.push_back(std::move(b));
  }
  return out;
}

void DistinctRows(ResultSet* table) {
  std::unordered_set<std::string> seen;
  std::vector<Binding> kept;
  kept.reserve(table->rows.size());
  for (auto& row : table->rows) {
    std::string key;
    for (const auto& cell : row) {
      key += cell.has_value() ? cell->DictionaryKey() : std::string();
      key += kUnit;
    }
    if (seen.insert(std::move(key)).second) kept.push_back(std::move(row));
  }
  table->rows = std::move(kept);
}

}  // namespace

int CompareTermCanonical(const std::optional<rdf::Term>& a,
                         const std::optional<rdf::Term>& b) {
  if (!a.has_value()) return b.has_value() ? -1 : 0;
  if (!b.has_value()) return 1;
  if (*a == *b) return 0;
  return *a < *b ? -1 : 1;
}

int CompareTermOrdered(const std::optional<rdf::Term>& a,
                       const std::optional<rdf::Term>& b) {
  if (!a.has_value()) return b.has_value() ? -1 : 0;
  if (!b.has_value()) return 1;
  const std::optional<double> na = NumericOfTerm(*a);
  const std::optional<double> nb = NumericOfTerm(*b);
  if (na.has_value() && nb.has_value()) {
    if (*na < *nb) return -1;
    if (*nb < *na) return 1;
    return CompareTermCanonical(a, b);
  }
  if (na.has_value()) return -1;  // numeric sorts before non-numeric
  if (nb.has_value()) return 1;
  return CompareTermCanonical(a, b);
}

store::ResultSet JoinTables(store::ResultSet left, store::ResultSet right) {
  JoinContext ctx(left, right);
  ResultSet out;
  out.vars = ctx.out_vars;
  for (const auto& lrow : left.rows) {
    ctx.ForEachMatch(lrow, right, [&](const Binding& rrow) {
      out.rows.push_back(ctx.Merge(lrow, rrow));
    });
  }
  return out;
}

store::ResultSet LeftJoinTables(store::ResultSet left,
                                store::ResultSet right) {
  JoinContext ctx(left, right);
  ResultSet out;
  out.vars = ctx.out_vars;
  for (const auto& lrow : left.rows) {
    const size_t matches = ctx.ForEachMatch(lrow, right, [&](const Binding& rrow) {
      out.rows.push_back(ctx.Merge(lrow, rrow));
    });
    if (matches == 0) {
      Binding b = lrow;
      b.resize(ctx.out_vars.size());
      out.rows.push_back(std::move(b));
    }
  }
  return out;
}

store::ResultSet UnionTables(std::vector<store::ResultSet> tables) {
  ResultSet out;
  for (const auto& t : tables) {
    for (const auto& v : t.vars) {
      if (std::find(out.vars.begin(), out.vars.end(), v) == out.vars.end()) {
        out.vars.push_back(v);
      }
    }
  }
  for (auto& t : tables) {
    const std::vector<size_t> cols = ColumnIndexes(t, out.vars);
    for (auto& row : t.rows) {
      Binding b;
      b.reserve(out.vars.size());
      for (size_t c : cols) {
        if (c == static_cast<size_t>(-1)) {
          b.emplace_back();
        } else {
          b.push_back(std::move(row[c]));
        }
      }
      out.rows.push_back(std::move(b));
    }
  }
  return out;
}

Status FilterTable(const std::vector<const sparql::FilterExpr*>& filters,
                   store::ResultSet* table) {
  return store::ApplyPostFiltersToRows(filters, table->vars, &table->rows);
}

void CanonicalSortRows(const std::vector<sparql::OrderCond>& order_by,
                       store::ResultSet* table) {
  std::vector<std::pair<size_t, bool>> keys;  // column, descending
  for (const auto& oc : order_by) {
    auto it = std::find(table->vars.begin(), table->vars.end(), oc.var);
    if (it == table->vars.end()) continue;  // engine skips unknown keys too
    keys.emplace_back(static_cast<size_t>(it - table->vars.begin()),
                      oc.descending);
  }
  std::sort(table->rows.begin(), table->rows.end(),
            [&](const Binding& a, const Binding& b) {
              for (const auto& [col, desc] : keys) {
                int c = CompareTermOrdered(a[col], b[col]);
                if (c != 0) return desc ? c > 0 : c < 0;
              }
              for (size_t i = 0; i < a.size(); ++i) {
                int c = CompareTermCanonical(a[i], b[i]);
                if (c != 0) return c < 0;
              }
              return false;
            });
}

Result<store::ResultSet> FinalizeRows(const sparql::Query& query,
                                      store::ResultSet table,
                                      bool apply_limit) {
  ResultSet out;
  if (query.HasAggregates()) {
    RDFREL_ASSIGN_OR_RETURN(out, AggregateTable(query, table));
  } else {
    out = ProjectTable(query, std::move(table));
  }
  if (query.distinct) DistinctRows(&out);
  CanonicalSortRows(query.order_by, &out);
  if (apply_limit) {
    const size_t off = query.offset.has_value() && *query.offset > 0
                           ? static_cast<size_t>(*query.offset)
                           : 0;
    if (off > 0) {
      out.rows.erase(out.rows.begin(),
                     out.rows.begin() +
                         static_cast<ptrdiff_t>(std::min(off, out.rows.size())));
    }
    if (query.limit.has_value() && *query.limit >= 0 &&
        out.rows.size() > static_cast<size_t>(*query.limit)) {
      out.rows.resize(static_cast<size_t>(*query.limit));
    }
  }
  return out;
}

}  // namespace rdfrel::shard
