#ifndef RDFREL_SHARD_FRAGMENT_VERIFIER_H_
#define RDFREL_SHARD_FRAGMENT_VERIFIER_H_

/// \file fragment_verifier.h
/// Structural invariant verification for coordinator fragment plans — the
/// sharded analogue of opt/plan_verifier.h (DESIGN.md §8, §16).
///
/// A FragmentPlan is trusted by the coordinator: a violated invariant
/// produces silently wrong merged results (a triple answered twice, a
/// fragment that is not subject-local, a filter pushed below the OPTIONAL
/// whose BOUND it observes). The verifier re-checks, per plan:
///
///   * coverage — every triple pattern of the query appears in exactly one
///     fragment, and every fragment is referenced by exactly one Scatter
///     leaf reachable from the root;
///   * star shape — all patterns of a fragment share one subject node
///     (same variable or same constant term), `routed` is set iff that
///     subject is a constant, no transitive path modifiers survive;
///   * sendability — the fragment's SPARQL text re-parses and contains
///     exactly the fragment's patterns (round-trip), its variable list is
///     the first-occurrence variable set of its patterns;
///   * pushdown soundness — pushed filters mention only fragment-produced
///     variables and never BOUND;
///   * node arity — Scatter is a leaf with an in-range fragment index,
///     LeftJoin has exactly two children, Join/Union at least two, Filter
///     exactly one child and at least one residual filter.
///
/// Failures return Status::InternalPlanError with a dotted path
/// ("shardplan.union[1].scatter.f2"); always a decomposer bug, never user
/// error. Callers gate on QueryOptions::verify_plans /
/// util::VerifyPlansEnabled(), like every other verifier.

#include "shard/fragment.h"
#include "util/status.h"

namespace rdfrel::shard {

Status VerifyFragmentPlan(const FragmentPlan& plan);

}  // namespace rdfrel::shard

#endif  // RDFREL_SHARD_FRAGMENT_VERIFIER_H_
