#include "shard/fragment_verifier.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "sparql/parser.h"

namespace rdfrel::shard {

namespace {

using sparql::FilterExpr;
using sparql::FilterOp;
using sparql::TriplePattern;

Status Fail(const std::string& path, const std::string& what) {
  return Status::InternalPlanError(path + ": " + what);
}

std::string SubjectKeyOf(const sparql::TermOrVar& s) {
  return s.is_var ? "?" + s.var : s.term.DictionaryKey();
}

void CollectVars(const FilterExpr& f, std::vector<std::string>* out) {
  if (f.op == FilterOp::kVar || f.op == FilterOp::kBound) {
    out->push_back(f.var);
    return;
  }
  if (f.lhs) CollectVars(*f.lhs, out);
  if (f.rhs) CollectVars(*f.rhs, out);
}

bool HasBound(const FilterExpr& f) {
  if (f.op == FilterOp::kBound) return true;
  return (f.lhs && HasBound(*f.lhs)) || (f.rhs && HasBound(*f.rhs));
}

Status VerifyFragment(const Fragment& f, const std::string& path) {
  if (f.patterns.empty()) return Fail(path, "fragment has no patterns");
  if (f.vars.empty()) {
    return Fail(path, "fragment produces no variables");
  }
  const std::string subject_key = SubjectKeyOf(f.subject);
  std::vector<std::string> expect_vars;
  for (const TriplePattern* t : f.patterns) {
    if (t == nullptr) return Fail(path, "null pattern pointer");
    if (t->path_mod != sparql::PathMod::kNone) {
      return Fail(path, "transitive path modifier survived decomposition");
    }
    if (SubjectKeyOf(t->subject) != subject_key) {
      return Fail(path, "pattern t" + std::to_string(t->id) +
                            " does not share the star subject " +
                            f.subject.ToString());
    }
    for (const auto& v : t->Variables()) {
      if (std::find(expect_vars.begin(), expect_vars.end(), v) ==
          expect_vars.end()) {
        expect_vars.push_back(v);
      }
    }
  }
  if (expect_vars != f.vars) {
    return Fail(path, "variable list is not the first-occurrence set of "
                      "the fragment's patterns");
  }
  if (f.routed == f.subject.is_var) {
    return Fail(path, f.routed ? "routed fragment with variable subject"
                               : "constant-subject fragment not routed");
  }
  for (const FilterExpr* flt : f.pushed_filters) {
    if (flt == nullptr) return Fail(path, "null pushed filter");
    if (HasBound(*flt)) {
      return Fail(path, "BOUND pushed below its OPTIONAL scope");
    }
    std::vector<std::string> fvars;
    CollectVars(*flt, &fvars);
    for (const auto& v : fvars) {
      if (std::find(f.vars.begin(), f.vars.end(), v) == f.vars.end()) {
        return Fail(path, "pushed filter mentions ?" + v +
                              ", which the fragment does not produce");
      }
    }
  }
  // Sendability round-trip: the text must parse back to a query with
  // exactly this fragment's pattern count and variable list.
  if (f.sparql.empty()) return Fail(path, "empty fragment SPARQL text");
  Result<sparql::Query> reparsed = sparql::ParseQuery(f.sparql);
  if (!reparsed.ok()) {
    return Fail(path, "fragment text does not re-parse: " +
                          reparsed.status().ToString());
  }
  if (static_cast<size_t>(reparsed->num_triples) != f.patterns.size()) {
    return Fail(path, "fragment text re-parses to " +
                          std::to_string(reparsed->num_triples) +
                          " patterns, fragment holds " +
                          std::to_string(f.patterns.size()));
  }
  if (reparsed->EffectiveSelectVars() != f.vars) {
    return Fail(path, "fragment text projects a different variable list");
  }
  return Status::OK();
}

Status VerifyNode(const CoordNode& node, const FragmentPlan& plan,
                  const std::string& path,
                  std::vector<size_t>* scatter_refs) {
  switch (node.kind) {
    case CoordNodeKind::kScatter: {
      if (!node.children.empty()) {
        return Fail(path, "Scatter leaf has children");
      }
      if (node.fragment >= plan.fragments.size()) {
        return Fail(path, "fragment index f" + std::to_string(node.fragment) +
                              " out of range");
      }
      scatter_refs->push_back(node.fragment);
      return Status::OK();
    }
    case CoordNodeKind::kJoin:
    case CoordNodeKind::kUnion: {
      const char* kind =
          node.kind == CoordNodeKind::kJoin ? "join" : "union";
      if (node.children.size() < 2) {
        return Fail(path, std::string(kind) + " with fewer than 2 children");
      }
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (!node.children[i]) return Fail(path, "null child");
        RDFREL_RETURN_NOT_OK(VerifyNode(
            *node.children[i], plan,
            path + "." + kind + "[" + std::to_string(i) + "]",
            scatter_refs));
      }
      return Status::OK();
    }
    case CoordNodeKind::kLeftJoin: {
      if (node.children.size() != 2) {
        return Fail(path, "left join must have exactly 2 children");
      }
      for (size_t i = 0; i < 2; ++i) {
        if (!node.children[i]) return Fail(path, "null child");
        RDFREL_RETURN_NOT_OK(VerifyNode(
            *node.children[i], plan,
            path + ".leftjoin[" + std::to_string(i) + "]", scatter_refs));
      }
      return Status::OK();
    }
    case CoordNodeKind::kFilter: {
      if (node.children.size() != 1 || !node.children[0]) {
        return Fail(path, "filter must have exactly 1 child");
      }
      if (node.filters.empty()) {
        return Fail(path, "filter node with no residual filters");
      }
      for (const auto* f : node.filters) {
        if (f == nullptr) return Fail(path, "null residual filter");
      }
      return VerifyNode(*node.children[0], plan, path + ".filter",
                        scatter_refs);
    }
  }
  return Fail(path, "unknown node kind");
}

}  // namespace

Status VerifyFragmentPlan(const FragmentPlan& plan) {
  const std::string root = "shardplan";
  if (!plan.root) return Fail(root, "plan has no root node");
  if (!plan.query.where) return Fail(root, "plan query has no pattern");

  for (size_t i = 0; i < plan.fragments.size(); ++i) {
    RDFREL_RETURN_NOT_OK(
        VerifyFragment(plan.fragments[i], root + ".f" + std::to_string(i)));
  }

  std::vector<size_t> scatter_refs;
  RDFREL_RETURN_NOT_OK(VerifyNode(*plan.root, plan, root, &scatter_refs));

  // Every fragment referenced by exactly one reachable Scatter leaf.
  std::vector<size_t> ref_counts(plan.fragments.size(), 0);
  for (size_t f : scatter_refs) ref_counts[f]++;
  for (size_t i = 0; i < ref_counts.size(); ++i) {
    if (ref_counts[i] != 1) {
      return Fail(root, "fragment f" + std::to_string(i) + " referenced " +
                            std::to_string(ref_counts[i]) +
                            " times (want exactly 1)");
    }
  }

  // Every triple pattern of the query covered by exactly one fragment.
  std::vector<const TriplePattern*> query_triples;
  plan.query.where->CollectTriples(&query_triples);
  std::set<const TriplePattern*> want(query_triples.begin(),
                                      query_triples.end());
  std::set<const TriplePattern*> got;
  size_t total = 0;
  for (const auto& f : plan.fragments) {
    for (const TriplePattern* t : f.patterns) {
      if (!got.insert(t).second) {
        return Fail(root, "pattern t" + std::to_string(t->id) +
                              " covered by more than one fragment");
      }
      ++total;
    }
  }
  if (got != want || total != query_triples.size()) {
    return Fail(root, "fragments cover " + std::to_string(total) +
                          " patterns, query has " +
                          std::to_string(query_triples.size()));
  }
  return Status::OK();
}

}  // namespace rdfrel::shard
