#include "shard/sharded_store.h"

#include <algorithm>
#include <map>
#include <utility>

#include "persist/env.h"
#include "shard/fragment_verifier.h"
#include "sparql/parser.h"
#include "store/open.h"
#include "store/predicate_store_backend.h"
#include "store/triple_store_backend.h"
#include "util/verify.h"

namespace rdfrel::shard {

namespace {

using store::PersistOptions;
using store::QueryOptions;
using store::ResultSet;

/// Rows per OnRows block when streaming the finalized result out.
constexpr size_t kStreamBatchRows = 1024;

Result<std::unique_ptr<store::SparqlStore>> LoadShard(
    const std::string& backend, rdf::Graph graph) {
  if (backend == store::RdfStore::kBackendKind) {
    RDFREL_ASSIGN_OR_RETURN(auto s, store::RdfStore::Load(std::move(graph)));
    return std::unique_ptr<store::SparqlStore>(std::move(s));
  }
  if (backend == store::TripleStoreBackend::kBackendKind) {
    RDFREL_ASSIGN_OR_RETURN(auto s,
                            store::TripleStoreBackend::Load(std::move(graph)));
    return std::unique_ptr<store::SparqlStore>(std::move(s));
  }
  if (backend == store::PredicateStoreBackend::kBackendKind) {
    RDFREL_ASSIGN_OR_RETURN(
        auto s, store::PredicateStoreBackend::Load(std::move(graph)));
    return std::unique_ptr<store::SparqlStore>(std::move(s));
  }
  return Status::InvalidArgument("unknown shard backend kind '" + backend +
                                 "'");
}

Status EnableShardPersistence(store::SparqlStore* shard,
                              const std::string& dir,
                              const PersistOptions& opts) {
  if (auto* s = dynamic_cast<store::RdfStore*>(shard)) {
    return s->EnablePersistence(dir, opts);
  }
  if (auto* s = dynamic_cast<store::TripleStoreBackend*>(shard)) {
    return s->EnablePersistence(dir, opts);
  }
  if (auto* s = dynamic_cast<store::PredicateStoreBackend*>(shard)) {
    return s->EnablePersistence(dir, opts);
  }
  return Status::Internal("shard store of unknown concrete type");
}

/// Full-dump query used to rebuild the coordinator dictionary/statistics
/// from recovered shards (per-shard ids are not comparable, so the
/// coordinator re-encodes decoded terms).
constexpr std::string_view kDumpQuery =
    "SELECT ?s ?p ?o WHERE { ?s ?p ?o }";

}  // namespace

Result<std::unique_ptr<ShardedStore>> ShardedStore::Load(
    rdf::Graph graph, const ShardedStoreOptions& options) {
  if (options.shards == 0) {
    return Status::InvalidArgument("shard count must be at least 1");
  }
  auto sharded = std::unique_ptr<ShardedStore>(new ShardedStore());
  sharded->partitioner_ = Partitioner(options.shards, options.partition_seed);
  sharded->backend_ = options.backend;
  sharded->stats_top_k_ = options.stats_top_k;
  sharded->plan_cache_ = std::make_unique<
      util::ShardedLruCache<std::string, std::shared_ptr<const FragmentPlan>>>(
      options.plan_cache_capacity);

  {
    util::WriterLock lock(&sharded->mutex_);
    sharded->stats_ = opt::Statistics::FromGraph(graph, options.stats_top_k);
  }
  RDFREL_ASSIGN_OR_RETURN(std::vector<rdf::Triple> decoded,
                          graph.DecodeAll());
  sharded->dict_ = std::move(graph.dictionary());

  std::vector<rdf::Graph> parts(options.shards);
  for (const rdf::Triple& t : decoded) {
    parts[sharded->partitioner_.ShardOfTriple(t)].Add(t);
  }
  std::vector<store::SparqlStore*> raw;
  for (auto& part : parts) {
    RDFREL_ASSIGN_OR_RETURN(auto shard,
                            LoadShard(options.backend, std::move(part)));
    raw.push_back(shard.get());
    if (auto* m = dynamic_cast<store::RdfStore*>(shard.get())) {
      sharded->mutable_shards_.push_back(m);
    }
    sharded->shards_.push_back(std::move(shard));
  }
  sharded->coord_ =
      std::make_unique<Coordinator>(std::move(raw), sharded->partitioner_);
  return sharded;
}

Result<std::unique_ptr<ShardedStore>> ShardedStore::Open(
    const std::string& dir, const PersistOptions& persist_opts,
    const ShardedStoreOptions& options) {
  persist::Env* env =
      persist_opts.env != nullptr ? persist_opts.env : persist::Env::Default();
  RDFREL_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(env, dir));

  auto sharded = std::unique_ptr<ShardedStore>(new ShardedStore());
  sharded->partitioner_ =
      Partitioner(manifest.shard_count, manifest.partition_seed);
  sharded->backend_ = manifest.backend_kind;
  sharded->stats_top_k_ = options.stats_top_k;
  sharded->plan_cache_ = std::make_unique<
      util::ShardedLruCache<std::string, std::shared_ptr<const FragmentPlan>>>(
      options.plan_cache_capacity);

  // Per-shard recovery: snapshot + WAL replay + fresh checkpoint, each
  // shard independently. A torn multi-shard checkpoint (crash between two
  // shards' snapshots) converges here because every shard's WAL holds its
  // full acknowledged suffix.
  std::vector<store::SparqlStore*> raw;
  for (uint32_t i = 0; i < manifest.shard_count; ++i) {
    RDFREL_ASSIGN_OR_RETURN(
        auto shard, store::OpenStore(ShardDirPath(dir, i), persist_opts));
    raw.push_back(shard.get());
    if (auto* m = dynamic_cast<store::RdfStore*>(shard.get())) {
      sharded->mutable_shards_.push_back(m);
    }
    sharded->shards_.push_back(std::move(shard));
  }
  sharded->coord_ =
      std::make_unique<Coordinator>(std::move(raw), sharded->partitioner_);

  // Rebuild coordinator dictionary + statistics from the recovered data.
  rdf::Graph all;
  for (auto& shard : sharded->shards_) {
    RDFREL_ASSIGN_OR_RETURN(ResultSet dump, shard->Query(kDumpQuery));
    for (const auto& row : dump.rows) {
      if (row.size() != 3 || !row[0] || !row[1] || !row[2]) {
        return Status::Internal("shard dump returned a malformed row");
      }
      all.Add(rdf::Triple{*row[0], *row[1], *row[2]});
    }
  }
  {
    util::WriterLock lock(&sharded->mutex_);
    sharded->stats_ = opt::Statistics::FromGraph(all, options.stats_top_k);
    sharded->dict_ = std::move(all.dictionary());
    // Re-stamp: a recovery is a new consistent generation, whether or not
    // the pre-crash checkpoint reached every shard.
    sharded->generation_ = manifest.generation + 1;
    sharded->persist_dir_ = dir;
    sharded->persist_env_ = env;
    RDFREL_RETURN_NOT_OK(sharded->WriteManifestLocked());
  }
  return sharded;
}

Status ShardedStore::EnablePersistence(const std::string& dir,
                                       const PersistOptions& opts) {
  persist::Env* env =
      opts.env != nullptr ? opts.env : persist::Env::Default();
  RDFREL_RETURN_NOT_OK(env->CreateDirIfMissing(dir));
  for (uint32_t i = 0; i < num_shards(); ++i) {
    RDFREL_RETURN_NOT_OK(EnableShardPersistence(
        shards_[i].get(), ShardDirPath(dir, i), opts));
  }
  util::WriterLock lock(&mutex_);
  generation_ = 1;
  persist_dir_ = dir;
  persist_env_ = env;
  return WriteManifestLocked();
}

bool ShardedStore::persistent() const {
  util::ReaderLock lock(&mutex_);
  return persist_env_ != nullptr;
}

Status ShardedStore::WriteManifestLocked() {
  Manifest m;
  m.generation = generation_;
  m.shard_count = num_shards();
  m.partition_seed = partitioner_.seed();
  m.backend_kind = backend_;
  return WriteManifest(persist_env_, persist_dir_, m);
}

Result<std::shared_ptr<const FragmentPlan>> ShardedStore::GetPlan(
    std::string_view sparql, const QueryOptions& opts) {
  const std::string key = store::PlanCacheKey(sparql, opts);
  if (auto hit = plan_cache_->Get(key)) return std::move(*hit);
  RDFREL_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(sparql));
  std::shared_ptr<FragmentPlan> plan;
  {
    util::ReaderLock lock(&mutex_);
    RDFREL_ASSIGN_OR_RETURN(
        FragmentPlan p, DecomposeQuery(std::move(query), &stats_, &dict_));
    plan = std::make_shared<FragmentPlan>(std::move(p));
  }
  if (opts.verify_plans || util::VerifyPlansEnabled()) {
    RDFREL_RETURN_NOT_OK(VerifyFragmentPlan(*plan));
  }
  std::shared_ptr<const FragmentPlan> shared = std::move(plan);
  plan_cache_->Put(key, shared);
  return shared;
}

Status ShardedStore::QueryWith(std::string_view sparql,
                               const QueryOptions& opts,
                               store::RowSink& sink) {
  std::shared_ptr<const FragmentPlan> plan;
  {
    Result<std::shared_ptr<const FragmentPlan>> r = GetPlan(sparql, opts);
    if (!r.ok()) return r.status();
    plan = std::move(*r);
  }
  ResultSet result;
  {
    // Held shared across the whole scatter-gather: a mutation routed to
    // several shards is all-or-nothing from this query's point of view.
    util::ReaderLock lock(&mutex_);
    Result<ResultSet> r = coord_->Evaluate(*plan, opts);
    if (!r.ok()) return r.status();
    result = std::move(*r);
  }
  RDFREL_RETURN_NOT_OK(sink.Begin(result.vars));
  for (size_t start = 0; start < result.rows.size();
       start += kStreamBatchRows) {
    const size_t end =
        std::min(result.rows.size(), start + kStreamBatchRows);
    std::vector<store::Binding> block(
        std::make_move_iterator(result.rows.begin() +
                                static_cast<ptrdiff_t>(start)),
        std::make_move_iterator(result.rows.begin() +
                                static_cast<ptrdiff_t>(end)));
    RDFREL_RETURN_NOT_OK(sink.OnRows(std::move(block)));
  }
  return sink.End();
}

Result<std::string> ShardedStore::TranslateWith(std::string_view sparql,
                                                const QueryOptions& opts) {
  RDFREL_ASSIGN_OR_RETURN(std::shared_ptr<const FragmentPlan> plan,
                          GetPlan(sparql, opts));
  std::string out = "-- coordinator plan (" +
                    std::to_string(num_shards()) + " shards)\n" +
                    plan->ToString();
  for (size_t i = 0; i < plan->fragments.size(); ++i) {
    out += "-- fragment f" + std::to_string(i) + " (shard-local SQL)\n";
    RDFREL_ASSIGN_OR_RETURN(
        std::string sql,
        shards_[0]->TranslateWith(plan->fragments[i].sparql, opts));
    out += sql + "\n";
  }
  return out;
}

Result<store::SparqlStore::Explanation> ShardedStore::Explain(
    std::string_view sparql, const QueryOptions& opts) {
  RDFREL_ASSIGN_OR_RETURN(std::shared_ptr<const FragmentPlan> plan,
                          GetPlan(sparql, opts));
  Explanation ex;
  ex.parse_tree = plan->query.where ? plan->query.where->ToString() : "";
  ex.flow_tree = "(coordinator) fragments scatter to " +
                 std::to_string(num_shards()) + " shards";
  ex.exec_tree = plan->ToString();
  ex.plan_tree = plan->ToString();
  RDFREL_ASSIGN_OR_RETURN(ex.sql, TranslateWith(sparql, opts));
  return ex;
}

util::CacheStats ShardedStore::page_cache_stats() const {
  util::CacheStats total;
  for (const auto& shard : shards_) {
    const util::CacheStats s = shard->page_cache_stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.entries += s.entries;
  }
  return total;
}

Status ShardedStore::Checkpoint() {
  // Exclusive: no mutation may land between the first and the last shard's
  // snapshot, so the multi-shard checkpoint is one consistent cut.
  util::WriterLock lock(&mutex_);
  if (persist_env_ == nullptr) {
    return Status::Unsupported("no persistence attached to this store");
  }
  for (auto& shard : shards_) {
    RDFREL_RETURN_NOT_OK(shard->Checkpoint());
  }
  // The generation stamp goes LAST: a crash anywhere above leaves the old
  // manifest in place and per-shard recovery converges the shards.
  ++generation_;
  return WriteManifestLocked();
}

Status ShardedStore::Flush() {
  for (auto& shard : shards_) {
    RDFREL_RETURN_NOT_OK(shard->Flush());
  }
  return Status::OK();
}

Status ShardedStore::Close() {
  for (auto& shard : shards_) {
    RDFREL_RETURN_NOT_OK(shard->Close());
  }
  util::WriterLock lock(&mutex_);
  persist_env_ = nullptr;
  persist_dir_.clear();
  return Status::OK();
}

persist::PersistStats ShardedStore::persist_stats() const {
  persist::PersistStats total;
  for (const auto& shard : shards_) {
    const persist::PersistStats s = shard->persist_stats();
    total.wal_records += s.wal_records;
    total.wal_bytes += s.wal_bytes;
    total.fsyncs += s.fsyncs;
    total.group_commit_batches += s.group_commit_batches;
    total.snapshots_written += s.snapshots_written;
    total.replayed_records += s.replayed_records;
    total.torn_tail_bytes += s.torn_tail_bytes;
    total.last_lsn = std::max(total.last_lsn, s.last_lsn);
    total.last_checkpoint_lsn =
        std::max(total.last_checkpoint_lsn, s.last_checkpoint_lsn);
  }
  if (total.group_commit_batches > 0) {
    total.avg_group_commit_batch =
        static_cast<double>(total.wal_records) /
        static_cast<double>(total.group_commit_batches);
  }
  return total;
}

std::string ShardedStore::name() const {
  const std::string inner =
      shards_.empty() ? backend_ : shards_[0]->name();
  return "Sharded[" + inner + "]x" + std::to_string(num_shards());
}

uint64_t ShardedStore::generation() const {
  util::ReaderLock lock(&mutex_);
  return generation_;
}

uint64_t ShardedStore::rows_routed() const {
  return rows_routed_.load(std::memory_order_relaxed);
}

Status ShardedStore::Insert(const rdf::Triple& triple) {
  return InsertBatch({triple});
}

Status ShardedStore::Delete(const rdf::Triple& triple) {
  return DeleteBatch({triple});
}

Status ShardedStore::InsertBatch(const std::vector<rdf::Triple>& triples) {
  if (mutable_shards_.empty()) {
    return Status::Unsupported("the '" + backend_ +
                               "' backend is immutable after Load");
  }
  if (triples.empty()) return Status::OK();
  util::WriterLock lock(&mutex_);
  // Route by subject, preserving relative order within each shard.
  std::map<uint32_t, std::vector<rdf::Triple>> routed;
  for (const auto& t : triples) {
    routed[partitioner_.ShardOfTriple(t)].push_back(t);
  }
  for (auto& [target, batch] : routed) {
    RDFREL_RETURN_NOT_OK(mutable_shards_[target]->InsertBatch(batch));
    for (const auto& t : batch) {
      stats_.AddTriple(dict_.EncodeTriple(t));
    }
    rows_routed_.fetch_add(batch.size(), std::memory_order_relaxed);
  }
  plan_cache_->Clear();
  return Status::OK();
}

Status ShardedStore::DeleteBatch(const std::vector<rdf::Triple>& triples) {
  if (mutable_shards_.empty()) {
    return Status::Unsupported("the '" + backend_ +
                               "' backend is immutable after Load");
  }
  if (triples.empty()) return Status::OK();
  util::WriterLock lock(&mutex_);
  std::map<uint32_t, std::vector<rdf::Triple>> routed;
  for (const auto& t : triples) {
    routed[partitioner_.ShardOfTriple(t)].push_back(t);
  }
  for (auto& [target, batch] : routed) {
    RDFREL_RETURN_NOT_OK(mutable_shards_[target]->DeleteBatch(batch));
    for (const auto& t : batch) {
      stats_.RemoveTriple(dict_.EncodeTriple(t));
    }
    rows_routed_.fetch_add(batch.size(), std::memory_order_relaxed);
  }
  plan_cache_->Clear();
  return Status::OK();
}

}  // namespace rdfrel::shard
