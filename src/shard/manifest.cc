#include "shard/manifest.h"

#include <cstdio>
#include <memory>
#include <string_view>

#include "persist/coding.h"
#include "persist/crc32c.h"

namespace rdfrel::shard {

namespace {
constexpr std::string_view kMagic = "RDFMANI1";
}  // namespace

std::string Manifest::Encode() const {
  std::string body;
  body.append(kMagic);
  persist::PutU32(&body, kFormatVersion);
  persist::PutU64(&body, generation);
  persist::PutU32(&body, shard_count);
  persist::PutU64(&body, partition_seed);
  persist::PutString(&body, backend_kind);
  persist::PutU32(&body, persist::MaskCrc(persist::Crc32c(body)));
  return body;
}

Result<Manifest> Manifest::Decode(std::string_view data) {
  if (data.size() < kMagic.size() + 4 ||
      data.substr(0, kMagic.size()) != kMagic) {
    return Status::DataLoss("coordinator manifest: bad magic");
  }
  const size_t body_end = data.size() - 4;
  persist::ByteReader footer(data.substr(body_end));
  RDFREL_ASSIGN_OR_RETURN(uint32_t stored_crc, footer.ReadU32());
  if (persist::UnmaskCrc(stored_crc) !=
      persist::Crc32c(data.substr(0, body_end))) {
    return Status::DataLoss("coordinator manifest: CRC32C mismatch");
  }
  persist::ByteReader r(data.substr(kMagic.size(), body_end - kMagic.size()));
  Manifest m;
  RDFREL_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kFormatVersion) {
    return Status::DataLoss("coordinator manifest: unknown format version " +
                            std::to_string(version));
  }
  RDFREL_ASSIGN_OR_RETURN(m.generation, r.ReadU64());
  RDFREL_ASSIGN_OR_RETURN(m.shard_count, r.ReadU32());
  RDFREL_ASSIGN_OR_RETURN(m.partition_seed, r.ReadU64());
  RDFREL_ASSIGN_OR_RETURN(std::string_view kind, r.ReadString());
  m.backend_kind = std::string(kind);
  if (!r.AtEnd()) {
    return Status::DataLoss("coordinator manifest: trailing garbage");
  }
  if (m.shard_count == 0) {
    return Status::DataLoss("coordinator manifest: zero shard count");
  }
  return m;
}

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

std::string ShardDirPath(const std::string& dir, uint32_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard-%03u", index);
  return dir + "/" + buf;
}

Result<Manifest> ReadManifest(persist::Env* env, const std::string& dir) {
  RDFREL_ASSIGN_OR_RETURN(std::string data,
                          env->ReadFile(ManifestPath(dir)));
  return Manifest::Decode(data);
}

Status WriteManifest(persist::Env* env, const std::string& dir,
                     const Manifest& manifest) {
  const std::string path = ManifestPath(dir);
  const std::string tmp = path + ".tmp";
  RDFREL_ASSIGN_OR_RETURN(std::unique_ptr<persist::WritableFile> f,
                          env->NewWritableFile(tmp, /*truncate=*/true));
  RDFREL_RETURN_NOT_OK(f->Append(manifest.Encode()));
  RDFREL_RETURN_NOT_OK(f->Sync());
  RDFREL_RETURN_NOT_OK(f->Close());
  return env->RenameFile(tmp, path);
}

}  // namespace rdfrel::shard
