#ifndef RDFREL_SHARD_MANIFEST_H_
#define RDFREL_SHARD_MANIFEST_H_

/// \file manifest.h
/// The coordinator manifest: the one file in a sharded store directory
/// that belongs to the coordinator rather than to a shard (DESIGN.md §16).
///
/// Layout of a persisted sharded store:
///
///   <dir>/MANIFEST          this file (tmp + fsync + rename on update)
///   <dir>/shard-000/        a complete PR-4 persistence unit
///   <dir>/shard-001/        (snapshot generations + WAL, per shard)
///   ...
///
/// The manifest records the *placement contract* — shard count, partition
/// seed, backend kind — plus a generation stamp that the coordinator bumps
/// after every successful multi-shard checkpoint (and after recovery).
/// Placement fields are immutable for the lifetime of the directory:
/// recovery refuses a manifest whose shard count or seed cannot be honored,
/// because opening the shards under a different partition function would
/// silently misroute every future write.
///
/// Crash consistency: each shard's checkpoint is atomic on its own (PR-4
/// two-generation rotation), and each shard's WAL independently holds every
/// acknowledged mutation. A crash in the middle of a multi-shard checkpoint
/// therefore leaves shards at *mixed snapshot generations but one logical
/// commit point*: per-shard recovery (snapshot + WAL replay) restores each
/// shard's full acknowledged state regardless of whether its checkpoint ran.
/// The manifest generation is deliberately stamped LAST, so a torn
/// checkpoint is visible as `manifest.generation < max(shard generations)`;
/// recovery logs the tear, re-opens every shard, and re-stamps.

#include <cstdint>
#include <string>

#include "persist/env.h"
#include "util/status.h"

namespace rdfrel::shard {

struct Manifest {
  static constexpr uint32_t kFormatVersion = 1;

  uint64_t generation = 1;
  uint32_t shard_count = 0;
  uint64_t partition_seed = 0;
  std::string backend_kind;  ///< "db2rdf" | "triple" | "predicate"

  /// Serialized byte image (magic, version, fields, masked CRC32C).
  std::string Encode() const;

  /// Parses and CRC-verifies an image. kDataLoss on any corruption.
  static Result<Manifest> Decode(std::string_view data);
};

/// MANIFEST path inside a sharded store directory.
std::string ManifestPath(const std::string& dir);

/// "shard-000"-style subdirectory path for shard \p index.
std::string ShardDirPath(const std::string& dir, uint32_t index);

/// Reads and verifies <dir>/MANIFEST.
Result<Manifest> ReadManifest(persist::Env* env, const std::string& dir);

/// Atomically (tmp + fsync + rename) writes <dir>/MANIFEST.
Status WriteManifest(persist::Env* env, const std::string& dir,
                     const Manifest& manifest);

}  // namespace rdfrel::shard

#endif  // RDFREL_SHARD_MANIFEST_H_
