#ifndef RDFREL_SHARD_FRAGMENT_H_
#define RDFREL_SHARD_FRAGMENT_H_

/// \file fragment.h
/// Query fragmentation for scatter-gather execution (DESIGN.md §16).
///
/// The coordinator decomposes a parsed SPARQL query into *fragments*: each
/// fragment is a single-subject star — every triple pattern in it shares
/// one subject node (same variable, or the same constant term) — re-
/// serialized as a standalone, backend-agnostic SPARQL text. Subject
/// hash-partitioning makes a star subject-local (see partition.h), so a
/// fragment evaluates exactly by scattering its text to every shard (or to
/// the one owning shard, when the subject is a constant) and unioning the
/// gathered rows. Everything *between* fragments — joins on shared
/// variables, left joins for OPTIONAL, unions, residual filters, DISTINCT,
/// ORDER/LIMIT — runs at the coordinator over decoded bindings.
///
/// Fragments are deliberately plain text + options ("sendable"): a shard
/// executes one through the ordinary SparqlStore::QueryWith surface, which
/// keeps the protocol identical for all three backends and lets every
/// shard's own plan cache, vectorized executor and morsel layer do the
/// heavy lifting. FILTERs whose variables are fully produced by one
/// fragment (and which do not involve BOUND — its semantics belong to the
/// enclosing OPTIONAL scope) are pushed down into the fragment text, so
/// shards filter before the gather instead of after it.
///
/// The decomposition is a tree of CoordNodes mirroring the query's
/// AND/UNION/OPTIONAL structure with stars collapsed into Scatter leaves.
/// FragmentPlan owns the parsed Query; nodes reference its heap-allocated
/// pattern and filter nodes, which are address-stable under moves (the
/// same contract store::CachedPlan relies on).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "opt/statistics.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "util/status.h"

namespace rdfrel::shard {

/// One scatterable star: patterns sharing a single subject node.
struct Fragment {
  /// The shared subject (variable or constant term).
  sparql::TermOrVar subject;
  /// Patterns of this star, in parse order (borrowed from the plan's Query).
  std::vector<const sparql::TriplePattern*> patterns;
  /// Filters pushed into the fragment text (borrowed).
  std::vector<const sparql::FilterExpr*> pushed_filters;
  /// Variables this fragment produces, in first-occurrence order.
  std::vector<std::string> vars;
  /// The standalone SPARQL text sent to shards:
  /// `SELECT ?v... WHERE { patterns . FILTER ... }`.
  std::string sparql;
  /// Statistics-based cardinality estimate (rows), used to order joins
  /// before any fragment has executed. Negative = no estimate.
  double estimated_rows = -1.0;
  /// True when `subject` is a constant: the scatter targets only the
  /// owning shard instead of all shards.
  bool routed = false;
};

enum class CoordNodeKind {
  kScatter,   ///< leaf: evaluate one Fragment across the shards
  kJoin,      ///< hash-join children on shared vars (cartesian when none)
  kLeftJoin,  ///< children[0] OPTIONAL-extended by children[1..]
  kUnion,     ///< bag union of children (UNION branches)
  kFilter,    ///< residual FILTERs over children[0]
};

struct CoordNode;
using CoordNodePtr = std::unique_ptr<CoordNode>;

/// A node of the coordinator-side plan.
struct CoordNode {
  CoordNodeKind kind = CoordNodeKind::kScatter;
  /// kScatter: index into FragmentPlan::fragments.
  size_t fragment = 0;
  std::vector<CoordNodePtr> children;
  /// kFilter: the residual filters (borrowed from the plan's Query).
  std::vector<const sparql::FilterExpr*> filters;
};

/// The complete coordinator plan for one query. Immutable after build and
/// shared via shared_ptr from the coordinator's plan cache.
struct FragmentPlan {
  sparql::Query query;  ///< owns every pattern/filter the nodes reference
  std::vector<Fragment> fragments;
  CoordNodePtr root;

  /// Pretty tree dump for Explain / debugging.
  std::string ToString() const;
};

/// Decomposes \p query (consumed) into a FragmentPlan. \p stats and
/// \p dict, when non-null, provide the PR-2 statistics used to estimate
/// fragment cardinalities (join ordering); the plan is correct without
/// them. Fails with kUnsupported for constructs that cannot be made
/// subject-local (transitive property paths — their closures cross
/// shards).
Result<FragmentPlan> DecomposeQuery(sparql::Query query,
                                    const opt::Statistics* stats,
                                    const rdf::Dictionary* dict);

/// Serializes a parsed query back to parseable SPARQL (full IRIs, no
/// prologue). Used for fragment texts and by tests to strip modifiers.
std::string QueryToSparql(const sparql::Query& query);

/// Serializes one filter expression in the parser's accepted syntax.
std::string FilterToSparql(const sparql::FilterExpr& f);

}  // namespace rdfrel::shard

#endif  // RDFREL_SHARD_FRAGMENT_H_
