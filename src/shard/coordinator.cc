#include "shard/coordinator.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "util/thread_pool.h"

namespace rdfrel::shard {

namespace {

using store::QueryOptions;
using store::ResultSet;

Status CheckControl(const QueryOptions& opts) {
  if (opts.cancel != nullptr &&
      opts.cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled by caller");
  }
  if (opts.deadline.has_value() &&
      std::chrono::steady_clock::now() > *opts.deadline) {
    return Status::DeadlineExceeded("query deadline expired");
  }
  return Status::OK();
}

/// Options for a shard sub-query: plan knobs and the control fields pass
/// through; max_threads is pinned to 1 (see file comment).
QueryOptions SubQueryOptions(const QueryOptions& opts) {
  QueryOptions sub = opts;
  sub.max_threads = 1;
  sub.scatter_width = 0;
  return sub;
}

/// One fragment scatter in progress: result slots plus the gather latch.
struct GatherState {
  util::Mutex mu{"shard-gather", util::lock_rank::kShardRouter};
  util::CondVar cv;
  size_t remaining RDFREL_GUARDED_BY(mu) = 0;
  std::vector<Status> statuses;     // slot-indexed; written once per slot
  std::vector<ResultSet> tables;    // slot-indexed; written once per slot
};

}  // namespace

Result<ResultSet> Coordinator::Evaluate(const FragmentPlan& plan,
                                        const QueryOptions& opts) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (!plan.root) return Status::Internal("fragment plan has no root node");
  RDFREL_ASSIGN_OR_RETURN(ResultSet table, EvalNode(*plan.root, plan, opts));
  return FinalizeRows(plan.query, std::move(table));
}

CoordinatorStats Coordinator::stats() const {
  CoordinatorStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.fragments = fragments_.load(std::memory_order_relaxed);
  s.subqueries = subqueries_.load(std::memory_order_relaxed);
  s.rows_gathered = rows_gathered_.load(std::memory_order_relaxed);
  s.gather_inflight = gather_inflight_.load(std::memory_order_relaxed);
  s.gather_peak = gather_peak_.load(std::memory_order_relaxed);
  return s;
}

Result<ResultSet> Coordinator::EvalNode(const CoordNode& node,
                                        const FragmentPlan& plan,
                                        const QueryOptions& opts) {
  RDFREL_RETURN_NOT_OK(CheckControl(opts));
  switch (node.kind) {
    case CoordNodeKind::kScatter:
      return EvalScatter(plan.fragments[node.fragment], opts);
    case CoordNodeKind::kJoin:
      return EvalJoin(node, plan, opts);
    case CoordNodeKind::kLeftJoin: {
      RDFREL_ASSIGN_OR_RETURN(ResultSet left,
                              EvalNode(*node.children[0], plan, opts));
      RDFREL_ASSIGN_OR_RETURN(ResultSet right,
                              EvalNode(*node.children[1], plan, opts));
      return LeftJoinTables(std::move(left), std::move(right));
    }
    case CoordNodeKind::kUnion: {
      std::vector<ResultSet> parts;
      parts.reserve(node.children.size());
      for (const auto& c : node.children) {
        RDFREL_ASSIGN_OR_RETURN(ResultSet t, EvalNode(*c, plan, opts));
        parts.push_back(std::move(t));
      }
      return UnionTables(std::move(parts));
    }
    case CoordNodeKind::kFilter: {
      RDFREL_ASSIGN_OR_RETURN(ResultSet t,
                              EvalNode(*node.children[0], plan, opts));
      RDFREL_RETURN_NOT_OK(FilterTable(node.filters, &t));
      return t;
    }
  }
  return Status::Internal("unhandled coordinator node kind");
}

Result<ResultSet> Coordinator::EvalJoin(const CoordNode& node,
                                        const FragmentPlan& plan,
                                        const QueryOptions& opts) {
  std::vector<ResultSet> inputs;
  inputs.reserve(node.children.size());
  for (const auto& c : node.children) {
    RDFREL_ASSIGN_OR_RETURN(ResultSet t, EvalNode(*c, plan, opts));
    inputs.push_back(std::move(t));
  }
  // Statistics estimate per child, where the child is a plain scatter; the
  // estimate breaks actual-size ties so the fold order stays deterministic
  // and cheap fragments still join first when sizes are equal.
  std::vector<double> estimates(inputs.size(), -1.0);
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (node.children[i]->kind == CoordNodeKind::kScatter) {
      estimates[i] = plan.fragments[node.children[i]->fragment].estimated_rows;
    }
  }
  std::vector<size_t> order(inputs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (inputs[a].rows.size() != inputs[b].rows.size()) {
      return inputs[a].rows.size() < inputs[b].rows.size();
    }
    return estimates[a] >= 0 && estimates[b] >= 0 && estimates[a] < estimates[b];
  });
  ResultSet acc = std::move(inputs[order[0]]);
  for (size_t k = 1; k < order.size(); ++k) {
    RDFREL_RETURN_NOT_OK(CheckControl(opts));
    ResultSet& next = inputs[order[k]];
    // Build the hash index over the smaller table (JoinTables indexes its
    // second argument) — the broadcast-small-side choice, in-process.
    if (acc.rows.size() <= next.rows.size()) {
      acc = JoinTables(std::move(next), std::move(acc));
    } else {
      acc = JoinTables(std::move(acc), std::move(next));
    }
  }
  return acc;
}

Result<ResultSet> Coordinator::EvalScatter(const Fragment& fragment,
                                           const QueryOptions& opts) {
  fragments_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint32_t> targets;
  if (fragment.routed) {
    targets.push_back(partitioner_.ShardOf(fragment.subject.term));
  } else {
    for (uint32_t i = 0; i < shards_.size(); ++i) targets.push_back(i);
  }
  const QueryOptions sub = SubQueryOptions(opts);

  // Single target (constant subject, or one shard total): run inline.
  if (targets.size() == 1) {
    subqueries_.fetch_add(1, std::memory_order_relaxed);
    RDFREL_ASSIGN_OR_RETURN(
        ResultSet t, shards_[targets[0]]->QueryWith(fragment.sparql, sub));
    rows_gathered_.fetch_add(t.rows.size(), std::memory_order_relaxed);
    return t;
  }

  GatherState gather;
  gather.statuses.assign(targets.size(), Status::OK());
  gather.tables.resize(targets.size());
  const size_t width = opts.scatter_width == 0
                           ? targets.size()
                           : std::min<size_t>(opts.scatter_width,
                                              targets.size());
  util::ThreadPool& pool = util::ThreadPool::Global();
  for (size_t start = 0; start < targets.size(); start += width) {
    const size_t end = std::min(targets.size(), start + width);
    {
      // Arm the latch before any task can land on it.
      util::MutexLock lock(&gather.mu);
      gather.remaining = end - start;
    }
    // Submit the wave without holding any coordinator lock...
    for (size_t i = start; i < end; ++i) {
      const uint64_t inflight =
          gather_inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
      uint64_t peak = gather_peak_.load(std::memory_order_relaxed);
      while (inflight > peak &&
             !gather_peak_.compare_exchange_weak(peak, inflight,
                                                 std::memory_order_relaxed)) {
      }
      subqueries_.fetch_add(1, std::memory_order_relaxed);
      store::SparqlStore* shard = shards_[targets[i]];
      pool.Submit([this, shard, i, &fragment, &sub, &gather] {
        store::CollectingSink sink;
        Status st = shard->QueryWith(fragment.sparql, sub, sink);
        gather_inflight_.fetch_sub(1, std::memory_order_relaxed);
        util::MutexLock lock(&gather.mu);
        gather.statuses[i] = std::move(st);
        gather.tables[i] = std::move(sink.TakeResult());
        --gather.remaining;
        gather.cv.NotifyOne();
      });
    }
    // ...then block on the gather latch until the wave lands. The caller
    // is never a pool worker, so waiting here cannot starve the pool.
    util::MutexLock lock(&gather.mu);
    while (gather.remaining > 0) gather.cv.Wait(gather.mu);
  }

  for (const Status& st : gather.statuses) {
    RDFREL_RETURN_NOT_OK(st);
  }
  ResultSet out;
  out.vars = fragment.vars;
  for (ResultSet& t : gather.tables) {
    if (out.rows.empty()) {
      out.rows = std::move(t.rows);
    } else {
      out.rows.insert(out.rows.end(),
                      std::make_move_iterator(t.rows.begin()),
                      std::make_move_iterator(t.rows.end()));
    }
  }
  rows_gathered_.fetch_add(out.rows.size(), std::memory_order_relaxed);
  return out;
}

}  // namespace rdfrel::shard
