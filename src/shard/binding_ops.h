#ifndef RDFREL_SHARD_BINDING_OPS_H_
#define RDFREL_SHARD_BINDING_OPS_H_

/// \file binding_ops.h
/// Coordinator-side relational algebra over decoded bindings (DESIGN.md
/// §16). Shards return fragment rows as store::ResultSet tables of decoded
/// terms (per-shard dictionary ids never cross a shard boundary — they are
/// not comparable between shards); the coordinator combines those tables
/// with SPARQL bag semantics:
///
///   - JoinTables / LeftJoinTables implement compatible-bindings joins
///     (shared var unbound on either side is compatible; values merge with
///     COALESCE), mirroring translate/sql_base.cc's CompatEq/CompatMerge.
///   - UnionTables is UNION ALL with variable-set widening, mirroring
///     EmitUnion.
///   - FinalizeRows applies the tail of the query — aggregates or
///     projection, DISTINCT, the canonical merge order, OFFSET/LIMIT.
///
/// Canonical merge order (the determinism contract, DESIGN.md §16.4):
/// gathered rows are fully materialized and sorted by the ORDER BY keys
/// (numeric-aware, unbound-first, matching the SQL engine's NULLs-first /
/// numeric-before-string Value order) with a whole-row canonical tie-break,
/// so sharded output is a pure function of the data — independent of shard
/// count, scatter interleaving, and per-shard dictionary id assignment.
/// Note this is *stricter* than the single store, whose ORDER BY sorts by
/// dictionary id (deterministic per store instance, but dependent on id
/// assignment); the differential suite canonicalizes the single-store rows
/// with these same helpers before comparing bytes.

#include <string>
#include <vector>

#include "sparql/ast.h"
#include "store/result_set.h"
#include "util/status.h"

namespace rdfrel::shard {

/// Canonical total order on cells: unbound first, then rdf::Term's
/// (kind, lexical, language, datatype) order. Returns <0, 0, >0.
int CompareTermCanonical(const std::optional<rdf::Term>& a,
                         const std::optional<rdf::Term>& b);

/// ORDER BY key order: unbound first, numeric literals before non-numeric
/// terms and compared by value, everything else canonically. Ties fall
/// through to the whole-row canonical tie-break in CanonicalSortRows.
int CompareTermOrdered(const std::optional<rdf::Term>& a,
                       const std::optional<rdf::Term>& b);

/// Inner join on shared variables, SPARQL compatibility semantics, bag
/// counts. Cartesian product when no variables are shared.
store::ResultSet JoinTables(store::ResultSet left, store::ResultSet right);

/// children[0] OPTIONAL-extended by \p right: rows with no compatible
/// match survive with the right-only columns unbound.
store::ResultSet LeftJoinTables(store::ResultSet left,
                                store::ResultSet right);

/// Bag union; output variables are the first-occurrence union of the
/// inputs' variables, missing columns unbound.
store::ResultSet UnionTables(std::vector<store::ResultSet> tables);

/// Keeps rows on which every filter evaluates to true (SPARQL error ==
/// false), via store::EvalFilterOnBinding.
Status FilterTable(const std::vector<const sparql::FilterExpr*>& filters,
                   store::ResultSet* table);

/// Sorts rows by \p order_by (CompareTermOrdered per key, DESC honored)
/// with a whole-row canonical tie-break; pure canonical order when
/// \p order_by is empty. Deterministic total order in both cases.
void CanonicalSortRows(const std::vector<sparql::OrderCond>& order_by,
                       store::ResultSet* table);

/// Applies the query tail to a gathered pattern table: GROUP BY /
/// aggregates (COUNT over bindings; SUM/MIN/MAX/AVG over the numeric
/// values of literals, non-numeric skipped, empty set unbound — mirroring
/// the lex-table SQL of sql_base.cc) or plain projection, then DISTINCT,
/// canonical sort, and — when \p apply_limit — OFFSET/LIMIT. Tests pass
/// apply_limit=false to canonicalize a reference result before slicing.
Result<store::ResultSet> FinalizeRows(const sparql::Query& query,
                                      store::ResultSet table,
                                      bool apply_limit = true);

}  // namespace rdfrel::shard

#endif  // RDFREL_SHARD_BINDING_OPS_H_
