#ifndef RDFREL_SHARD_COORDINATOR_H_
#define RDFREL_SHARD_COORDINATOR_H_

/// \file coordinator.h
/// Scatter-gather execution of a FragmentPlan across in-process shards
/// (DESIGN.md §16.3).
///
/// Scatter: each Scatter leaf sends its fragment text to every target
/// shard — all shards for a variable subject, exactly the owning shard for
/// a constant subject — as tasks on the process-wide worker pool
/// (util::ThreadPool::Global()). Shard sub-queries run with max_threads=1:
/// parallelism comes from the cross-shard fan-out, and a sub-query that
/// itself submitted morsel tasks and blocked on them could deadlock the
/// pool (every worker waiting on tasks stuck behind it in the queues).
///
/// Gather: the coordinator thread (never a pool worker) blocks on a
/// CondVar under the kShardRouter-ranked gather mutex until every
/// sub-query of the wave lands; tasks take that mutex only to deposit a
/// result and notify. Pool submission happens before the gather lock is
/// taken, so no pool lock ever nests inside coordinator locks. Gathered
/// tables concatenate in shard order — a deterministic intermediate
/// independent of completion interleaving (the canonical merge sort in
/// binding_ops.h makes the *final* order data-pure regardless).
///
/// Joins between gathered tables run at the coordinator as hash joins
/// with the smaller actual side as build input (ties broken by the PR-2
/// statistics estimates that also order the fold), the in-process
/// degeneration of the broadcast-vs-repartition choice: every "exchange"
/// is a pointer handoff, so shipping the small side IS building the hash
/// table over it.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "shard/binding_ops.h"
#include "shard/fragment.h"
#include "shard/partition.h"
#include "store/sparql_store.h"
#include "util/mutex.h"

namespace rdfrel::shard {

/// Cumulative scatter-gather counters (all monotonic except
/// gather_inflight, the current depth; gather_peak is its high-water).
struct CoordinatorStats {
  uint64_t queries = 0;         ///< coordinator plans evaluated
  uint64_t fragments = 0;       ///< Scatter leaves executed
  uint64_t subqueries = 0;      ///< shard sub-queries issued
  uint64_t rows_gathered = 0;   ///< rows returned by shard sub-queries
  uint64_t gather_inflight = 0; ///< sub-queries in flight right now
  uint64_t gather_peak = 0;     ///< high-water of gather_inflight
};

/// Evaluates FragmentPlans against a fixed set of shard stores. Stateless
/// between queries apart from the counters; thread-safe (concurrent
/// Evaluate calls share the pool and the counters).
class Coordinator {
 public:
  /// \p shards are borrowed and must outlive the coordinator.
  Coordinator(std::vector<store::SparqlStore*> shards, Partitioner partitioner)
      : shards_(std::move(shards)), partitioner_(partitioner) {}

  /// Runs \p plan and returns the finalized result (projection/aggregates,
  /// DISTINCT, canonical merge order, OFFSET/LIMIT — see
  /// binding_ops.h FinalizeRows). Honors opts.deadline / opts.cancel
  /// between operators and inside shard sub-queries, opts.scatter_width as
  /// the per-fragment fan-out cap, and forces max_threads=1 on sub-queries.
  Result<store::ResultSet> Evaluate(const FragmentPlan& plan,
                                    const store::QueryOptions& opts);

  CoordinatorStats stats() const;

 private:
  Result<store::ResultSet> EvalNode(const CoordNode& node,
                                    const FragmentPlan& plan,
                                    const store::QueryOptions& opts);
  Result<store::ResultSet> EvalScatter(const Fragment& fragment,
                                       const store::QueryOptions& opts);
  Result<store::ResultSet> EvalJoin(const CoordNode& node,
                                    const FragmentPlan& plan,
                                    const store::QueryOptions& opts);

  std::vector<store::SparqlStore*> shards_;
  Partitioner partitioner_;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> fragments_{0};
  std::atomic<uint64_t> subqueries_{0};
  std::atomic<uint64_t> rows_gathered_{0};
  std::atomic<uint64_t> gather_inflight_{0};
  std::atomic<uint64_t> gather_peak_{0};
};

}  // namespace rdfrel::shard

#endif  // RDFREL_SHARD_COORDINATOR_H_
