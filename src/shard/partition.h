#ifndef RDFREL_SHARD_PARTITION_H_
#define RDFREL_SHARD_PARTITION_H_

/// \file partition.h
/// Subject hash-partitioning for the sharded store (DESIGN.md §16).
///
/// The partition key of a triple is its *subject*: every triple whose
/// subject is the term S lives in shard `Hash(canonical(S), seed) % N`.
/// The hash runs over the subject's canonical N-Triples serialization, so
/// placement is a pure function of (term, seed, shard count) — stable
/// across processes, restarts and per-shard dictionary id assignment
/// (each shard owns an independent dictionary, so ids are NOT comparable
/// across shards; canonical strings are).
///
/// Subject-locality is what makes star scatter-gather correct: a star
/// query anchored at one subject draws every one of its triples from a
/// single shard, so scattering the star to all shards and unioning the
/// gathered rows loses nothing and duplicates nothing.

#include <cstdint>
#include <string>

#include "rdf/term.h"
#include "util/hash.h"

namespace rdfrel::shard {

/// Default seed for the partition hash. Changing the seed (or the shard
/// count) changes placement, so both are stamped into the coordinator
/// manifest and validated on recovery.
inline constexpr uint64_t kDefaultPartitionSeed = 0x52444652454C5348ULL;

/// The subject-hash partitioner. Cheap value type; copies are fine.
class Partitioner {
 public:
  Partitioner(uint32_t num_shards, uint64_t seed)
      : num_shards_(num_shards == 0 ? 1 : num_shards), seed_(seed) {}

  uint32_t num_shards() const { return num_shards_; }
  uint64_t seed() const { return seed_; }

  /// Shard owning subject \p term.
  uint32_t ShardOf(const rdf::Term& term) const {
    return ShardOfKey(term.ToNTriples());
  }

  /// Shard owning a subject given its canonical N-Triples form.
  uint32_t ShardOfKey(const std::string& canonical) const {
    return static_cast<uint32_t>(Mix64(Fnv1a64(canonical) ^ seed_) %
                                 num_shards_);
  }

  /// Shard owning triple \p t (routes by subject).
  uint32_t ShardOfTriple(const rdf::Triple& t) const {
    return ShardOf(t.subject);
  }

 private:
  uint32_t num_shards_;
  uint64_t seed_;
};

}  // namespace rdfrel::shard

#endif  // RDFREL_SHARD_PARTITION_H_
