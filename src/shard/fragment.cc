#include "shard/fragment.h"

#include <algorithm>
#include <map>
#include <utility>

namespace rdfrel::shard {

namespace {

using sparql::FilterExpr;
using sparql::FilterOp;
using sparql::Pattern;
using sparql::PatternKind;
using sparql::TermOrVar;
using sparql::TriplePattern;

/// Key identifying a subject node: variables by name, constants by their
/// dictionary key (kind-tagged, so an IRI and a literal never collide).
std::string SubjectKey(const TermOrVar& s) {
  return s.is_var ? "?" + s.var : s.term.DictionaryKey();
}

void AddVar(std::vector<std::string>* vars, const std::string& v) {
  if (std::find(vars->begin(), vars->end(), v) == vars->end()) {
    vars->push_back(v);
  }
}

void CollectFilterVars(const FilterExpr& f, std::vector<std::string>* out) {
  switch (f.op) {
    case FilterOp::kVar:
    case FilterOp::kBound:
      AddVar(out, f.var);
      return;
    case FilterOp::kTerm:
      return;
    default:
      if (f.lhs) CollectFilterVars(*f.lhs, out);
      if (f.rhs) CollectFilterVars(*f.rhs, out);
      return;
  }
}

bool ContainsBound(const FilterExpr& f) {
  if (f.op == FilterOp::kBound) return true;
  if (f.lhs && ContainsBound(*f.lhs)) return true;
  if (f.rhs && ContainsBound(*f.rhs)) return true;
  return false;
}

std::string EscapeStringLiteral(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string TermOrVarToSparql(const TermOrVar& t) {
  return t.is_var ? "?" + t.var : t.term.ToNTriples();
}

std::string TripleToSparql(const TriplePattern& t) {
  std::string pred = TermOrVarToSparql(t.predicate);
  if (t.path_mod == sparql::PathMod::kPlus) pred += "+";
  if (t.path_mod == sparql::PathMod::kStar) pred += "*";
  return TermOrVarToSparql(t.subject) + " " + pred + " " +
         TermOrVarToSparql(t.object);
}

std::string PatternToSparql(const Pattern& p);

/// Serializes a union branch / optional body as a braced group.
std::string AsGroup(const Pattern& p) {
  if (p.kind == PatternKind::kAnd) return PatternToSparql(p);
  return "{ " + PatternToSparql(p) + " }";
}

std::string PatternToSparql(const Pattern& p) {
  switch (p.kind) {
    case PatternKind::kTriple:
      return TripleToSparql(p.triple);
    case PatternKind::kOr: {
      std::string out;
      for (size_t i = 0; i < p.children.size(); ++i) {
        if (i) out += " UNION ";
        out += AsGroup(*p.children[i]);
      }
      return out;
    }
    case PatternKind::kOptional:
      return "OPTIONAL " + AsGroup(*p.children[0]);
    case PatternKind::kAnd: {
      std::string out = "{";
      bool prev_triple = false;
      for (const auto& c : p.children) {
        if (c->kind == PatternKind::kTriple) {
          out += prev_triple ? " . " : " ";
          out += TripleToSparql(c->triple);
          prev_triple = true;
        } else {
          out += " " + PatternToSparql(*c);
          prev_triple = false;
        }
      }
      for (const auto& f : p.filters) {
        out += " FILTER (" + FilterToSparql(*f) + ")";
      }
      out += " }";
      return out;
    }
  }
  return "";
}

double PatternEstimate(const TriplePattern& t, const opt::Statistics& stats,
                       const rdf::Dictionary& dict) {
  if (!t.subject.is_var) {
    const uint64_t id = dict.Lookup(t.subject.term);
    return id == 0 ? 0.0 : stats.EstimateBySubject(id);
  }
  if (!t.predicate.is_var) {
    const uint64_t id = dict.Lookup(t.predicate.term);
    return id == 0 ? 0.0
                   : static_cast<double>(stats.CountByPredicate(id));
  }
  return static_cast<double>(stats.total_triples());
}

/// Builds fragments + coordinator nodes for one kAnd group.
class Decomposer {
 public:
  Decomposer(FragmentPlan* plan, const opt::Statistics* stats,
             const rdf::Dictionary* dict)
      : plan_(plan), stats_(stats), dict_(dict) {}

  Result<CoordNodePtr> Build(const Pattern& p) {
    switch (p.kind) {
      case PatternKind::kTriple: {
        if (p.triple.path_mod != sparql::PathMod::kNone) {
          return Status::Unsupported(
              "sharded execution: transitive property paths cross shard "
              "boundaries (pattern t" + std::to_string(p.triple.id) + ")");
        }
        std::vector<const TriplePattern*> group{&p.triple};
        RDFREL_ASSIGN_OR_RETURN(
            size_t frag, MakeFragment(p.triple.subject, group, {}));
        return ScatterNode(frag);
      }
      case PatternKind::kOr: {
        auto node = std::make_unique<CoordNode>();
        node->kind = CoordNodeKind::kUnion;
        for (const auto& c : p.children) {
          RDFREL_ASSIGN_OR_RETURN(CoordNodePtr child, Build(*c));
          node->children.push_back(std::move(child));
        }
        return node;
      }
      case PatternKind::kOptional:
        // Reached only when OPTIONAL is the sole content of a group (the
        // parent kAnd handles the left-join pairing); evaluate the body
        // as if required — with an empty left side, SPARQL's left join
        // degenerates to the body itself.
        return Build(*p.children[0]);
      case PatternKind::kAnd:
        return BuildGroup(p);
    }
    return Status::Internal("unreachable pattern kind");
  }

 private:
  Result<CoordNodePtr> ScatterNode(size_t frag) {
    auto node = std::make_unique<CoordNode>();
    node->kind = CoordNodeKind::kScatter;
    node->fragment = frag;
    return node;
  }

  Result<CoordNodePtr> BuildGroup(const Pattern& p) {
    // 1. Collapse this group's direct triple children into subject stars,
    //    keyed by subject node, in first-occurrence order.
    std::vector<std::string> star_order;
    std::map<std::string, std::vector<const TriplePattern*>> stars;
    std::map<std::string, TermOrVar> star_subject;
    for (const auto& c : p.children) {
      if (c->kind != PatternKind::kTriple) continue;
      const TriplePattern& t = c->triple;
      if (t.path_mod != sparql::PathMod::kNone) {
        return Status::Unsupported(
            "sharded execution: transitive property paths cross shard "
            "boundaries (pattern t" + std::to_string(t.id) + ")");
      }
      const std::string key = SubjectKey(t.subject);
      auto [it, inserted] = stars.try_emplace(key);
      if (inserted) {
        star_order.push_back(key);
        star_subject.emplace(key, t.subject);
      }
      it->second.push_back(&t);
    }

    // 2. Partition this group's filters into pushdown candidates (attached
    //    to the star that produces every variable they mention; BOUND
    //    stays residual — its semantics belong to the OPTIONAL scope) and
    //    residual coordinator filters.
    std::vector<const FilterExpr*> residual;
    std::map<std::string, std::vector<const FilterExpr*>> pushed;
    for (const auto& f : p.filters) {
      std::vector<std::string> fvars;
      CollectFilterVars(*f, &fvars);
      const FilterExpr* chosen_star_filter = nullptr;
      std::string chosen_key;
      if (!ContainsBound(*f) && !fvars.empty()) {
        for (const auto& key : star_order) {
          std::vector<std::string> svars = StarVars(stars[key]);
          bool covered = true;
          for (const auto& v : fvars) {
            if (std::find(svars.begin(), svars.end(), v) == svars.end()) {
              covered = false;
              break;
            }
          }
          if (covered) {
            chosen_star_filter = f.get();
            chosen_key = key;
            break;
          }
        }
      }
      if (chosen_star_filter != nullptr) {
        pushed[chosen_key].push_back(chosen_star_filter);
      } else {
        residual.push_back(f.get());
      }
    }

    // 3. Required inputs: star fragments first (subject first-occurrence
    //    order), then non-triple required children in syntactic order.
    std::vector<CoordNodePtr> required;
    for (const auto& key : star_order) {
      RDFREL_ASSIGN_OR_RETURN(
          size_t frag,
          MakeFragment(star_subject.at(key), stars[key], pushed[key]));
      RDFREL_ASSIGN_OR_RETURN(CoordNodePtr node, ScatterNode(frag));
      required.push_back(std::move(node));
    }
    std::vector<const Pattern*> optionals;
    for (const auto& c : p.children) {
      if (c->kind == PatternKind::kTriple) continue;
      if (c->kind == PatternKind::kOptional) {
        optionals.push_back(c->children[0].get());
        continue;
      }
      RDFREL_ASSIGN_OR_RETURN(CoordNodePtr node, Build(*c));
      required.push_back(std::move(node));
    }
    if (required.empty() && optionals.empty()) {
      return Status::InvalidQuery("empty group pattern");
    }

    CoordNodePtr node;
    if (required.size() == 1) {
      node = std::move(required[0]);
    } else if (!required.empty()) {
      node = std::make_unique<CoordNode>();
      node->kind = CoordNodeKind::kJoin;
      node->children = std::move(required);
    }

    // 4. OPTIONAL children left-join onto the required part in syntactic
    //    order. A group that is *only* OPTIONALs left-joins onto the unit
    //    table — i.e. the first body evaluates as required.
    for (const Pattern* opt : optionals) {
      RDFREL_ASSIGN_OR_RETURN(CoordNodePtr body, Build(*opt));
      if (!node) {
        node = std::move(body);
        continue;
      }
      auto lj = std::make_unique<CoordNode>();
      lj->kind = CoordNodeKind::kLeftJoin;
      lj->children.push_back(std::move(node));
      lj->children.push_back(std::move(body));
      node = std::move(lj);
    }

    if (!residual.empty()) {
      auto filt = std::make_unique<CoordNode>();
      filt->kind = CoordNodeKind::kFilter;
      filt->children.push_back(std::move(node));
      filt->filters = std::move(residual);
      node = std::move(filt);
    }
    return node;
  }

  static std::vector<std::string> StarVars(
      const std::vector<const TriplePattern*>& patterns) {
    std::vector<std::string> vars;
    for (const auto* t : patterns) {
      for (const auto& v : t->Variables()) AddVar(&vars, v);
    }
    return vars;
  }

  Result<size_t> MakeFragment(const TermOrVar& subject,
                              const std::vector<const TriplePattern*>& group,
                              std::vector<const FilterExpr*> filters) {
    Fragment f;
    f.subject = subject;
    f.patterns = group;
    f.pushed_filters = std::move(filters);
    f.vars = StarVars(group);
    if (f.vars.empty()) {
      return Status::Unsupported(
          "sharded execution: variable-free (boolean) pattern group");
    }
    for (const auto* t : group) {
      if (t->subject.is_var) continue;
      if (t->subject.term.is_blank()) {
        return Status::Unsupported(
            "sharded execution: blank-node subject in query pattern");
      }
    }
    f.routed = !subject.is_var;
    std::string text = "SELECT";
    for (const auto& v : f.vars) text += " ?" + v;
    text += " WHERE {";
    for (size_t i = 0; i < group.size(); ++i) {
      text += i ? " . " : " ";
      text += TripleToSparql(*group[i]);
    }
    for (const auto* flt : f.pushed_filters) {
      text += " FILTER (" + FilterToSparql(*flt) + ")";
    }
    text += " }";
    f.sparql = std::move(text);
    if (stats_ != nullptr && dict_ != nullptr) {
      double est = static_cast<double>(stats_->total_triples());
      for (const auto* t : group) {
        est = std::min(est, PatternEstimate(*t, *stats_, *dict_));
      }
      f.estimated_rows = est;
    }
    plan_->fragments.push_back(std::move(f));
    return plan_->fragments.size() - 1;
  }

  FragmentPlan* plan_;
  const opt::Statistics* stats_;
  const rdf::Dictionary* dict_;
};

void DumpNode(const CoordNode& n, const FragmentPlan& plan, int indent,
              std::string* out) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (n.kind) {
    case CoordNodeKind::kScatter: {
      const Fragment& f = plan.fragments[n.fragment];
      *out += pad + "Scatter f" + std::to_string(n.fragment) +
              (f.routed ? " [routed]" : " [all shards]");
      if (f.estimated_rows >= 0) {
        *out += " est=" + std::to_string(static_cast<long long>(
                              f.estimated_rows));
      }
      *out += ": " + f.sparql + "\n";
      return;
    }
    case CoordNodeKind::kJoin:
      *out += pad + "Join\n";
      break;
    case CoordNodeKind::kLeftJoin:
      *out += pad + "LeftJoin (OPTIONAL)\n";
      break;
    case CoordNodeKind::kUnion:
      *out += pad + "Union\n";
      break;
    case CoordNodeKind::kFilter: {
      *out += pad + "Filter";
      for (const auto* f : n.filters) *out += " " + FilterToSparql(*f);
      *out += "\n";
      break;
    }
  }
  for (const auto& c : n.children) DumpNode(*c, plan, indent + 1, out);
}

}  // namespace

std::string FilterToSparql(const FilterExpr& f) {
  switch (f.op) {
    case FilterOp::kVar: return "?" + f.var;
    case FilterOp::kTerm: return f.term.ToNTriples();
    case FilterOp::kBound: return "BOUND(?" + f.var + ")";
    case FilterOp::kRegex:
      return "REGEX(" + FilterToSparql(*f.lhs) + ", \"" +
             EscapeStringLiteral(f.pattern) + "\")";
    case FilterOp::kNot: return "(!" + FilterToSparql(*f.lhs) + ")";
    case FilterOp::kAnd:
      return "(" + FilterToSparql(*f.lhs) + " && " + FilterToSparql(*f.rhs) +
             ")";
    case FilterOp::kOr:
      return "(" + FilterToSparql(*f.lhs) + " || " + FilterToSparql(*f.rhs) +
             ")";
    case FilterOp::kEq:
      return "(" + FilterToSparql(*f.lhs) + " = " + FilterToSparql(*f.rhs) +
             ")";
    case FilterOp::kNe:
      return "(" + FilterToSparql(*f.lhs) + " != " + FilterToSparql(*f.rhs) +
             ")";
    case FilterOp::kLt:
      return "(" + FilterToSparql(*f.lhs) + " < " + FilterToSparql(*f.rhs) +
             ")";
    case FilterOp::kLe:
      return "(" + FilterToSparql(*f.lhs) + " <= " + FilterToSparql(*f.rhs) +
             ")";
    case FilterOp::kGt:
      return "(" + FilterToSparql(*f.lhs) + " > " + FilterToSparql(*f.rhs) +
             ")";
    case FilterOp::kGe:
      return "(" + FilterToSparql(*f.lhs) + " >= " + FilterToSparql(*f.rhs) +
             ")";
  }
  return "";
}

std::string QueryToSparql(const sparql::Query& query) {
  std::string out = "SELECT";
  if (query.distinct) out += " DISTINCT";
  if (query.HasAggregates()) {
    for (const auto& pr : query.projection) {
      if (pr.agg == sparql::AggKind::kNone) {
        out += " ?" + pr.var;
        continue;
      }
      const char* name = "COUNT";
      switch (pr.agg) {
        case sparql::AggKind::kCount: name = "COUNT"; break;
        case sparql::AggKind::kSum: name = "SUM"; break;
        case sparql::AggKind::kMin: name = "MIN"; break;
        case sparql::AggKind::kMax: name = "MAX"; break;
        case sparql::AggKind::kAvg: name = "AVG"; break;
        case sparql::AggKind::kNone: break;
      }
      out += " (" + std::string(name) + "(";
      if (pr.distinct) out += "DISTINCT ";
      out += pr.star ? "*" : "?" + pr.var;
      out += ") AS ?" + pr.alias + ")";
    }
  } else if (query.select_vars.empty()) {
    out += " *";
  } else {
    for (const auto& v : query.select_vars) out += " ?" + v;
  }
  out += " WHERE ";
  out += query.where ? AsGroup(*query.where) : "{ }";
  if (!query.group_by.empty()) {
    out += " GROUP BY";
    for (const auto& v : query.group_by) out += " ?" + v;
  }
  if (!query.order_by.empty()) {
    out += " ORDER BY";
    for (const auto& o : query.order_by) {
      out += o.descending ? " DESC(?" + o.var + ")" : " ?" + o.var;
    }
  }
  if (query.limit.has_value()) {
    out += " LIMIT " + std::to_string(*query.limit);
  }
  if (query.offset.has_value()) {
    out += " OFFSET " + std::to_string(*query.offset);
  }
  return out;
}

std::string FragmentPlan::ToString() const {
  std::string out;
  out += "fragments: " + std::to_string(fragments.size()) + "\n";
  if (root) DumpNode(*root, *this, 0, &out);
  return out;
}

Result<FragmentPlan> DecomposeQuery(sparql::Query query,
                                    const opt::Statistics* stats,
                                    const rdf::Dictionary* dict) {
  FragmentPlan plan;
  plan.query = std::move(query);
  if (!plan.query.where) {
    return Status::InvalidQuery("query has no WHERE pattern");
  }
  Decomposer d(&plan, stats, dict);
  RDFREL_ASSIGN_OR_RETURN(plan.root, d.Build(*plan.query.where));
  return plan;
}

}  // namespace rdfrel::shard
