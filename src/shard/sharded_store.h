#ifndef RDFREL_SHARD_SHARDED_STORE_H_
#define RDFREL_SHARD_SHARDED_STORE_H_

/// \file sharded_store.h
/// The in-process sharded store (DESIGN.md §16): N complete backend
/// instances — each with its own dictionary, relational layout, plan cache
/// and persistence unit — behind one coordinator that implements the full
/// store::SparqlStore surface. Triples are hash-partitioned by subject
/// (partition.h), queries are decomposed into subject-star fragments
/// (fragment.h) scattered onto the process worker pool and gathered /
/// joined at the coordinator (coordinator.h), and results always come back
/// in the canonical merge order (binding_ops.h) — a pure function of the
/// data, identical for every shard count.
///
/// Consistency: the coordinator carries its own SharedMutex (rank
/// kCoordinator, *above* every shard's kStore lock). Queries hold it
/// shared for the whole scatter-gather; mutations and Checkpoint hold it
/// exclusively while routing to shards. A multi-triple mutation routed to
/// several shards is therefore never half-visible to a query, and a
/// multi-shard checkpoint is a consistent cut: no mutation can land
/// between the first and the last shard's snapshot.
///
/// Mutations route to the owning shard and are supported for the "db2rdf"
/// backend; the baseline backends are immutable after Load, and the
/// sharded store reports the same kUnsupported they would.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/graph.h"
#include "shard/coordinator.h"
#include "shard/fragment.h"
#include "shard/manifest.h"
#include "shard/partition.h"
#include "store/backend_util.h"
#include "store/rdf_store.h"
#include "store/sparql_store.h"
#include "util/lru_cache.h"
#include "util/mutex.h"

namespace rdfrel::shard {

struct ShardedStoreOptions {
  /// Number of shards; fixed for the lifetime of the store (and of its
  /// persisted directory — placement is a function of the count).
  uint32_t shards = 2;
  uint64_t partition_seed = kDefaultPartitionSeed;
  /// Backend kind per shard: "db2rdf", "triple" or "predicate".
  std::string backend = store::RdfStore::kBackendKind;
  /// Coordinator fragment-plan cache budget (each shard additionally runs
  /// its own SQL plan cache).
  size_t plan_cache_capacity = store::PlanCache::kDefaultCapacity;
  /// Top-k budget of the coordinator statistics.
  size_t stats_top_k = 1000;
};

class ShardedStore final : public store::SparqlStore {
 public:
  /// Builds a sharded store from \p graph (consumed): partitions the
  /// triples by subject and loads one backend instance per shard.
  static Result<std::unique_ptr<ShardedStore>> Load(
      rdf::Graph graph, const ShardedStoreOptions& options = {});

  /// Opens a persisted sharded store directory: reads the coordinator
  /// MANIFEST (placement contract + generation), recovers every shard
  /// through store::OpenStore (snapshot + WAL replay, per shard), rebuilds
  /// the coordinator dictionary/statistics from the recovered shards, and
  /// re-stamps the manifest generation. A crash between two shard
  /// checkpoints is invisible here: each shard's WAL independently holds
  /// every acknowledged mutation, so per-shard recovery converges all
  /// shards onto the same logical commit point.
  static Result<std::unique_ptr<ShardedStore>> Open(
      const std::string& dir, const store::PersistOptions& persist_opts = {},
      const ShardedStoreOptions& options = {});

  /// Attaches durability: one PR-4 persistence unit per shard under
  /// <dir>/shard-NNN plus the coordinator MANIFEST.
  Status EnablePersistence(const std::string& dir,
                           const store::PersistOptions& opts = {});
  bool persistent() const;

  // SparqlStore surface.
  Status QueryWith(std::string_view sparql, const store::QueryOptions& opts,
                   store::RowSink& sink) override;
  using store::SparqlStore::QueryWith;
  Result<std::string> TranslateWith(std::string_view sparql,
                                    const store::QueryOptions& opts) override;
  Result<Explanation> Explain(std::string_view sparql,
                              const store::QueryOptions& opts = {}) override;
  util::CacheStats plan_cache_stats() const override {
    return plan_cache_->stats();
  }
  /// Aggregated over shards.
  util::CacheStats page_cache_stats() const override;
  Status Checkpoint() override;
  Status Flush() override;
  Status Close() override;
  /// Aggregated over shards (counters summed, LSNs maxed).
  persist::PersistStats persist_stats() const override;
  std::string name() const override;
  const rdf::Dictionary& dictionary() const override { return dict_; }

  // Mutations (db2rdf shards only; kUnsupported otherwise).
  Status Insert(const rdf::Triple& triple);
  Status Delete(const rdf::Triple& triple);
  Status InsertBatch(const std::vector<rdf::Triple>& triples);
  Status DeleteBatch(const std::vector<rdf::Triple>& triples);

  // Introspection (/stats, tests).
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  const Partitioner& partitioner() const { return partitioner_; }
  const std::string& backend_kind() const { return backend_; }
  /// Manifest generation; 0 while no persistence is attached.
  uint64_t generation() const;
  /// Triples routed to shards by the mutation paths.
  uint64_t rows_routed() const;
  CoordinatorStats coordinator_stats() const { return coord_->stats(); }
  store::SparqlStore* shard(uint32_t index) { return shards_[index].get(); }
  const store::SparqlStore* shard(uint32_t index) const {
    return shards_[index].get();
  }

 private:
  ShardedStore() = default;

  /// Looks up or builds the FragmentPlan for (sparql, opts).
  Result<std::shared_ptr<const FragmentPlan>> GetPlan(
      std::string_view sparql, const store::QueryOptions& opts)
      RDFREL_EXCLUDES(mutex_);

  Status WriteManifestLocked() RDFREL_REQUIRES(mutex_);

  // Immutable after construction.
  std::vector<std::unique_ptr<store::SparqlStore>> shards_;
  std::vector<store::RdfStore*> mutable_shards_;  ///< non-owning; db2rdf only
  std::unique_ptr<Coordinator> coord_;
  Partitioner partitioner_{1, kDefaultPartitionSeed};
  std::string backend_;
  size_t stats_top_k_ = 1000;

  // Coordinator lock: ABOVE every shard's kStore lock (see util/mutex.h).
  mutable util::SharedMutex mutex_{"sharded-store",
                                   util::lock_rank::kCoordinator};
  rdf::Dictionary dict_;  ///< coordinator-level ids (routing, estimates)
  opt::Statistics stats_ RDFREL_GUARDED_BY(mutex_);
  uint64_t generation_ RDFREL_GUARDED_BY(mutex_) = 0;
  std::string persist_dir_ RDFREL_GUARDED_BY(mutex_);
  persist::Env* persist_env_ RDFREL_GUARDED_BY(mutex_) = nullptr;
  std::atomic<uint64_t> rows_routed_{0};

  mutable std::unique_ptr<
      util::ShardedLruCache<std::string, std::shared_ptr<const FragmentPlan>>>
      plan_cache_;
};

}  // namespace rdfrel::shard

#endif  // RDFREL_SHARD_SHARDED_STORE_H_
