#ifndef RDFREL_SPARQL_LEXER_H_
#define RDFREL_SPARQL_LEXER_H_

/// \file lexer.h
/// Tokenizer for the SPARQL subset.

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rdfrel::sparql {

enum class TokenKind {
  kKeywordOrName,  ///< SELECT / OPTIONAL / prefix-less local name / 'a'
  kVar,            ///< ?x or $x (text is the bare name)
  kIri,            ///< <...> (text without brackets)
  kPname,          ///< prefix:local (text as written)
  kString,         ///< "..." (unescaped text)
  kLangTag,        ///< @en (text without '@')
  kInteger,
  kDecimal,
  kSymbol,         ///< punctuation/operators
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t offset = 0;
};

/// Tokenizes \p sparql. Comments: '#' to end of line. Multi-char symbols:
/// ^^, &&, ||, !=, <=, >=.
Result<std::vector<Token>> LexSparql(std::string_view sparql);

}  // namespace rdfrel::sparql

#endif  // RDFREL_SPARQL_LEXER_H_
