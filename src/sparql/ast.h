#ifndef RDFREL_SPARQL_AST_H_
#define RDFREL_SPARQL_AST_H_

/// \file ast.h
/// Abstract syntax for the SPARQL 1.0 subset: basic graph patterns composed
/// with AND (group), UNION, OPTIONAL, plus FILTER, SELECT [DISTINCT],
/// ORDER BY, LIMIT/OFFSET. This matches the pattern taxonomy of the paper's
/// §3.1.2 (SIMPLE / AND / OR / OPTIONAL patterns).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rdf/term.h"

namespace rdfrel::sparql {

/// A triple-pattern component: a variable or an RDF term.
struct TermOrVar {
  bool is_var = false;
  std::string var;     ///< variable name without '?', when is_var
  rdf::Term term;      ///< when !is_var

  static TermOrVar Var(std::string name) {
    TermOrVar t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
  static TermOrVar Of(rdf::Term term) {
    TermOrVar t;
    t.term = std::move(term);
    return t;
  }

  std::string ToString() const {
    return is_var ? "?" + var : term.ToNTriples();
  }
};

/// Property-path modifier on a triple's predicate (SPARQL 1.1 subset).
/// Sequences (p/q), alternatives (p|q) and inverses (^p) are rewritten into
/// plain patterns by the parser; only transitive closure survives to
/// evaluation.
enum class PathMod {
  kNone,
  kPlus,  ///< p+ : one or more
  kStar,  ///< p* : zero or more (reflexive over the predicate's nodes)
};

/// One triple pattern. `id` is the 1-based position in parse order (the
/// paper's t1, t2, ...), used by the optimizer and in plan dumps.
struct TriplePattern {
  TermOrVar subject;
  TermOrVar predicate;
  TermOrVar object;
  int id = 0;
  PathMod path_mod = PathMod::kNone;

  /// Variables mentioned, in S,P,O order without duplicates.
  std::vector<std::string> Variables() const;

  std::string ToString() const {
    return subject.ToString() + " " + predicate.ToString() + " " +
           object.ToString();
  }
};

// ------------------------------------------------------------------ Filters

enum class FilterOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kNot,
  kBound,   ///< BOUND(?x)
  kRegex,   ///< REGEX(?x, "pattern") — substring match in this subset
  kVar,     ///< bare variable operand
  kTerm,    ///< RDF term operand
};

struct FilterExpr;
using FilterExprPtr = std::unique_ptr<FilterExpr>;

/// A FILTER expression node.
struct FilterExpr {
  FilterOp op;
  FilterExprPtr lhs;   // kAnd/kOr/comparisons; kNot uses lhs only
  FilterExprPtr rhs;
  std::string var;     // kVar / kBound
  rdf::Term term;      // kTerm
  std::string pattern; // kRegex

  std::string ToString() const;
};

// ----------------------------------------------------------------- Patterns

enum class PatternKind {
  kTriple,    ///< leaf: one triple pattern
  kAnd,       ///< group { A B C }
  kOr,        ///< A UNION B
  kOptional,  ///< OPTIONAL { A }
};

struct Pattern;
using PatternPtr = std::unique_ptr<Pattern>;

/// A node of the query pattern tree (the paper's Figure 7 parse tree).
struct Pattern {
  PatternKind kind;
  TriplePattern triple;               ///< kTriple
  std::vector<PatternPtr> children;   ///< kAnd/kOr; kOptional has exactly 1
  std::vector<FilterExprPtr> filters; ///< FILTERs attached to a kAnd group

  /// All triple patterns in this subtree, parse order.
  void CollectTriples(std::vector<const TriplePattern*>* out) const;
  /// All variable names in this subtree.
  void CollectVariables(std::vector<std::string>* out) const;

  std::string ToString(int indent = 0) const;
};

PatternPtr MakeTriplePattern(TriplePattern t);
PatternPtr MakeGroup(std::vector<PatternPtr> children);

// -------------------------------------------------------------------- Query

struct OrderCond {
  std::string var;
  bool descending = false;
};

/// SPARQL 1.1 aggregate functions.
enum class AggKind { kNone, kCount, kSum, kMin, kMax, kAvg };

/// One SELECT-clause item: a plain variable, or an aggregate
/// `(AGG([DISTINCT] ?v | *) AS ?alias)`.
struct Projection {
  std::string var;      ///< source variable; empty for COUNT(*)
  AggKind agg = AggKind::kNone;
  bool distinct = false;
  std::string alias;    ///< output name for aggregates
  bool star = false;    ///< COUNT(*)

  /// The output variable name (var, or alias for aggregates).
  const std::string& OutputName() const {
    return agg == AggKind::kNone ? var : alias;
  }
};

/// A parsed SELECT query.
struct Query {
  bool distinct = false;
  /// Projection; empty means '*' (all variables in pattern order).
  std::vector<std::string> select_vars;
  /// Full projection including aggregates (parallels select_vars for plain
  /// queries; authoritative when HasAggregates()).
  std::vector<Projection> projection;
  /// GROUP BY variables (aggregate queries only).
  std::vector<std::string> group_by;
  PatternPtr where;  ///< root pattern (a kAnd group)
  std::vector<OrderCond> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;

  /// Number of triple patterns in the query.
  int num_triples = 0;

  bool HasAggregates() const {
    for (const auto& pr : projection) {
      if (pr.agg != AggKind::kNone) return true;
    }
    return false;
  }

  /// Projection resolved against the pattern (expands '*'); for aggregate
  /// queries, the output names in SELECT order.
  std::vector<std::string> EffectiveSelectVars() const;
};

}  // namespace rdfrel::sparql

#endif  // RDFREL_SPARQL_AST_H_
