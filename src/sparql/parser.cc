#include "sparql/parser.h"

#include <map>

#include "sparql/lexer.h"
#include "util/string_util.h"

namespace rdfrel::sparql {

namespace {

constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    RDFREL_RETURN_NOT_OK(ParsePrologue());
    Query q;
    RDFREL_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    if (PeekKeyword("DISTINCT")) {
      Advance();
      q.distinct = true;
    } else if (PeekKeyword("REDUCED")) {
      Advance();  // treat REDUCED as DISTINCT-less pass-through
    }
    if (ConsumeSymbol("*")) {
      // empty select_vars == all variables
    } else {
      while (true) {
        if (Peek().kind == TokenKind::kVar) {
          Projection pr;
          pr.var = Peek().text;
          q.select_vars.push_back(pr.var);
          q.projection.push_back(std::move(pr));
          Advance();
          continue;
        }
        if (PeekSymbol("(")) {
          // (AGG([DISTINCT] ?v | *) AS ?alias)
          Advance();
          RDFREL_ASSIGN_OR_RETURN(Projection pr, ParseAggregate());
          RDFREL_RETURN_NOT_OK(ExpectSymbol(")"));
          q.projection.push_back(std::move(pr));
          continue;
        }
        break;
      }
      if (q.projection.empty()) {
        return Error("expected projection variables or *");
      }
      // Mixed plain+aggregate projections keep select_vars in sync only
      // for the non-aggregate case.
      bool has_agg = false;
      for (const auto& pr : q.projection) {
        if (pr.agg != AggKind::kNone) has_agg = true;
      }
      if (has_agg) q.select_vars.clear();
    }
    if (PeekKeyword("WHERE")) Advance();
    RDFREL_ASSIGN_OR_RETURN(q.where, ParseGroup());
    // Solution modifiers.
    if (PeekKeyword("GROUP")) {
      Advance();
      RDFREL_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (Peek().kind == TokenKind::kVar) {
        q.group_by.push_back(Peek().text);
        Advance();
      }
      if (q.group_by.empty()) return Error("empty GROUP BY");
    }
    if (PeekKeyword("ORDER")) {
      Advance();
      RDFREL_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderCond oc;
        if (PeekKeyword("DESC") || PeekKeyword("ASC")) {
          oc.descending = PeekKeyword("DESC");
          Advance();
          RDFREL_RETURN_NOT_OK(ExpectSymbol("("));
          if (Peek().kind != TokenKind::kVar) {
            return Error("expected variable in ORDER BY");
          }
          oc.var = Peek().text;
          Advance();
          RDFREL_RETURN_NOT_OK(ExpectSymbol(")"));
        } else if (Peek().kind == TokenKind::kVar) {
          oc.var = Peek().text;
          Advance();
        } else {
          break;
        }
        q.order_by.push_back(std::move(oc));
      }
      if (q.order_by.empty()) return Error("empty ORDER BY");
    }
    if (PeekKeyword("LIMIT")) {
      Advance();
      if (Peek().kind != TokenKind::kInteger) {
        return Error("expected LIMIT count");
      }
      q.limit = std::stoll(Peek().text);
      Advance();
    }
    if (PeekKeyword("OFFSET")) {
      Advance();
      if (Peek().kind != TokenKind::kInteger) {
        return Error("expected OFFSET count");
      }
      q.offset = std::stoll(Peek().text);
      Advance();
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    q.num_triples = next_triple_id_ - 1;
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool PeekKeyword(std::string_view kw) const {
    const Token& t = Peek();
    return t.kind == TokenKind::kKeywordOrName &&
           EqualsIgnoreCaseAscii(t.text, kw);
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) {
      return Error("expected " + std::string(kw));
    }
    Advance();
    return Status::OK();
  }
  bool PeekSymbol(std::string_view sym) const {
    const Token& t = Peek();
    return t.kind == TokenKind::kSymbol && t.text == sym;
  }
  bool ConsumeSymbol(std::string_view sym) {
    if (PeekSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!ConsumeSymbol(sym)) {
      return Error("expected '" + std::string(sym) + "'");
    }
    return Status::OK();
  }
  Status Error(std::string msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset) + " (near '" +
                              Peek().text + "')");
  }

  /// Parses `AGG([DISTINCT] ?v | *) AS ?alias` (inside parentheses).
  Result<Projection> ParseAggregate() {
    Projection pr;
    const Token& t = Peek();
    if (t.kind != TokenKind::kKeywordOrName) {
      return Error("expected aggregate function");
    }
    if (EqualsIgnoreCaseAscii(t.text, "COUNT")) {
      pr.agg = AggKind::kCount;
    } else if (EqualsIgnoreCaseAscii(t.text, "SUM")) {
      pr.agg = AggKind::kSum;
    } else if (EqualsIgnoreCaseAscii(t.text, "MIN")) {
      pr.agg = AggKind::kMin;
    } else if (EqualsIgnoreCaseAscii(t.text, "MAX")) {
      pr.agg = AggKind::kMax;
    } else if (EqualsIgnoreCaseAscii(t.text, "AVG")) {
      pr.agg = AggKind::kAvg;
    } else {
      return Error("unknown aggregate function '" + t.text + "'");
    }
    Advance();
    RDFREL_RETURN_NOT_OK(ExpectSymbol("("));
    if (PeekKeyword("DISTINCT")) {
      Advance();
      pr.distinct = true;
    }
    if (ConsumeSymbol("*")) {
      if (pr.agg != AggKind::kCount) {
        return Error("only COUNT supports *");
      }
      pr.star = true;
    } else if (Peek().kind == TokenKind::kVar) {
      pr.var = Peek().text;
      Advance();
    } else {
      return Error("expected variable or * in aggregate");
    }
    RDFREL_RETURN_NOT_OK(ExpectSymbol(")"));
    RDFREL_RETURN_NOT_OK(ExpectKeyword("AS"));
    if (Peek().kind != TokenKind::kVar) {
      return Error("expected ?alias after AS");
    }
    pr.alias = Peek().text;
    Advance();
    return pr;
  }

  Status ParsePrologue() {
    while (true) {
      if (PeekKeyword("PREFIX")) {
        Advance();
        // Expect pname "prefix:" (empty local) or keyword+':'? The lexer
        // emits "prefix:" forms as kPname with empty local.
        const Token& t = Peek();
        if (t.kind != TokenKind::kPname) {
          return Error("expected prefix declaration name");
        }
        std::string pname = t.text;
        size_t colon = pname.find(':');
        std::string prefix = pname.substr(0, colon);
        if (pname.size() != colon + 1) {
          return Error("prefix declaration must end with ':'");
        }
        Advance();
        if (Peek().kind != TokenKind::kIri) {
          return Error("expected IRI in PREFIX declaration");
        }
        prefixes_[prefix] = Peek().text;
        Advance();
        continue;
      }
      if (PeekKeyword("BASE")) {
        Advance();
        if (Peek().kind != TokenKind::kIri) {
          return Error("expected IRI after BASE");
        }
        base_ = Peek().text;
        Advance();
        continue;
      }
      return Status::OK();
    }
  }

  Result<rdf::Term> ExpandPname(const std::string& pname, size_t offset) {
    size_t colon = pname.find(':');
    std::string prefix = pname.substr(0, colon);
    std::string local = pname.substr(colon + 1);
    if (prefix == "_") {
      return rdf::Term::BlankNode(local);
    }
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      // Lexically fine but semantically invalid: distinct machine-readable
      // code so callers can separate "fix your query" from syntax errors.
      return Status::InvalidQuery("undeclared prefix '" + prefix +
                                  "' at offset " + std::to_string(offset));
    }
    return rdf::Term::Iri(it->second + local);
  }

  /// Parses a subject/predicate/object term or variable.
  Result<TermOrVar> ParseTermOrVar(bool allow_a) {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVar: {
        std::string name = t.text;
        Advance();
        return TermOrVar::Var(std::move(name));
      }
      case TokenKind::kIri: {
        std::string iri = t.text;
        Advance();
        // Resolve relative IRIs against BASE; absolute ones pass through.
        if (!base_.empty() && iri.find(':') == std::string::npos) {
          iri = base_ + iri;
        }
        return TermOrVar::Of(rdf::Term::Iri(std::move(iri)));
      }
      case TokenKind::kPname: {
        RDFREL_ASSIGN_OR_RETURN(rdf::Term term,
                                ExpandPname(t.text, t.offset));
        Advance();
        return TermOrVar::Of(std::move(term));
      }
      case TokenKind::kString: {
        std::string lex = t.text;
        Advance();
        if (Peek().kind == TokenKind::kLangTag) {
          std::string lang = Peek().text;
          Advance();
          return TermOrVar::Of(
              rdf::Term::LangLiteral(std::move(lex), std::move(lang)));
        }
        if (PeekSymbol("^^")) {
          Advance();
          if (Peek().kind == TokenKind::kIri) {
            std::string dt = Peek().text;
            Advance();
            return TermOrVar::Of(
                rdf::Term::TypedLiteral(std::move(lex), std::move(dt)));
          }
          if (Peek().kind == TokenKind::kPname) {
            RDFREL_ASSIGN_OR_RETURN(rdf::Term dt_term,
                                    ExpandPname(Peek().text, Peek().offset));
            Advance();
            return TermOrVar::Of(
                rdf::Term::TypedLiteral(std::move(lex), dt_term.lexical()));
          }
          return Error("expected datatype IRI after ^^");
        }
        return TermOrVar::Of(rdf::Term::Literal(std::move(lex)));
      }
      case TokenKind::kInteger: {
        std::string lex = t.text;
        Advance();
        return TermOrVar::Of(rdf::Term::TypedLiteral(
            std::move(lex), "http://www.w3.org/2001/XMLSchema#integer"));
      }
      case TokenKind::kDecimal: {
        std::string lex = t.text;
        Advance();
        return TermOrVar::Of(rdf::Term::TypedLiteral(
            std::move(lex), "http://www.w3.org/2001/XMLSchema#decimal"));
      }
      case TokenKind::kKeywordOrName:
        if (allow_a && t.text == "a") {
          Advance();
          return TermOrVar::Of(rdf::Term::Iri(std::string(kRdfType)));
        }
        return Error("unexpected name '" + t.text + "' in triple pattern");
      default:
        return Error("expected term or variable");
    }
  }

  // ------------------------------------------------------ property paths
  struct PathElt {
    TermOrVar pred;
    bool inverse = false;
    PathMod mod = PathMod::kNone;
  };
  using PathSeq = std::vector<PathElt>;

  /// elt := ['^'] (iri | 'a') ['+' | '*']
  Result<PathElt> ParsePathElt() {
    PathElt elt;
    if (ConsumeSymbol("^")) elt.inverse = true;
    RDFREL_ASSIGN_OR_RETURN(elt.pred, ParseTermOrVar(/*allow_a=*/true));
    if (elt.pred.is_var) {
      if (elt.inverse) {
        return Error("variable predicates cannot take path operators");
      }
      return elt;
    }
    if (ConsumeSymbol("+")) {
      elt.mod = PathMod::kPlus;
    } else if (ConsumeSymbol("*")) {
      elt.mod = PathMod::kStar;
    }
    return elt;
  }

  /// seq := elt ('/' elt)* ; alt := seq ('|' seq)*
  Result<std::vector<PathSeq>> ParsePathAlt() {
    std::vector<PathSeq> alts;
    do {
      PathSeq seq;
      do {
        RDFREL_ASSIGN_OR_RETURN(PathElt elt, ParsePathElt());
        if (elt.pred.is_var && (seq.size() > 0 || PeekSymbol("/"))) {
          return Error("variable predicates cannot appear in paths");
        }
        seq.push_back(std::move(elt));
      } while (ConsumeSymbol("/"));
      alts.push_back(std::move(seq));
    } while (ConsumeSymbol("|"));
    return alts;
  }

  /// Expands subject -seq-> object into chained triples (fresh variables
  /// link the steps; inverses swap the step's endpoints).
  std::vector<PatternPtr> ExpandSeq(const TermOrVar& subject,
                                    const PathSeq& seq,
                                    const TermOrVar& object) {
    std::vector<PatternPtr> out;
    TermOrVar current = subject;
    for (size_t i = 0; i < seq.size(); ++i) {
      TermOrVar next =
          i + 1 == seq.size()
              ? object
              : TermOrVar::Var("__p" + std::to_string(next_path_var_++));
      TriplePattern tp;
      tp.predicate = seq[i].pred;
      tp.path_mod = seq[i].mod;
      if (seq[i].inverse) {
        tp.subject = next;
        tp.object = current;
      } else {
        tp.subject = current;
        tp.object = next;
      }
      tp.id = next_triple_id_++;
      out.push_back(MakeTriplePattern(std::move(tp)));
      current = next;
    }
    return out;
  }

  /// Emits the pattern(s) for subject -alt-> object into \p out.
  void ExpandPath(const TermOrVar& subject,
                  const std::vector<PathSeq>& alts, const TermOrVar& object,
                  std::vector<PatternPtr>* out) {
    if (alts.size() == 1) {
      auto triples = ExpandSeq(subject, alts[0], object);
      for (auto& t : triples) out->push_back(std::move(t));
      return;
    }
    auto orp = std::make_unique<Pattern>();
    orp->kind = PatternKind::kOr;
    for (const auto& seq : alts) {
      auto triples = ExpandSeq(subject, seq, object);
      if (triples.size() == 1) {
        orp->children.push_back(std::move(triples[0]));
      } else {
        orp->children.push_back(MakeGroup(std::move(triples)));
      }
    }
    out->push_back(std::move(orp));
  }

  /// Parses one triples block: subject (path obj (, obj)*) (; path obj...)*
  Status ParseTriplesBlock(std::vector<PatternPtr>* out) {
    RDFREL_ASSIGN_OR_RETURN(TermOrVar subject,
                            ParseTermOrVar(/*allow_a=*/false));
    while (true) {
      RDFREL_ASSIGN_OR_RETURN(std::vector<PathSeq> alts, ParsePathAlt());
      bool plain_var = alts.size() == 1 && alts[0].size() == 1 &&
                       alts[0][0].pred.is_var && !alts[0][0].inverse &&
                       alts[0][0].mod == PathMod::kNone;
      while (true) {
        RDFREL_ASSIGN_OR_RETURN(TermOrVar obj, ParseTermOrVar(false));
        if (plain_var) {
          TriplePattern tp;
          tp.subject = subject;
          tp.predicate = alts[0][0].pred;
          tp.object = std::move(obj);
          tp.id = next_triple_id_++;
          out->push_back(MakeTriplePattern(std::move(tp)));
        } else {
          ExpandPath(subject, alts, obj, out);
        }
        if (!ConsumeSymbol(",")) break;
      }
      if (!ConsumeSymbol(";")) break;
      // Allow trailing ';' before '.' or '}'.
      if (PeekSymbol(".") || PeekSymbol("}")) break;
    }
    return Status::OK();
  }

  /// Parses a group graph pattern '{ ... }'.
  Result<PatternPtr> ParseGroup() {
    RDFREL_RETURN_NOT_OK(ExpectSymbol("{"));
    auto group = std::make_unique<Pattern>();
    group->kind = PatternKind::kAnd;
    while (!PeekSymbol("}")) {
      if (Peek().kind == TokenKind::kEnd) return Error("unterminated group");
      if (PeekKeyword("OPTIONAL")) {
        Advance();
        RDFREL_ASSIGN_OR_RETURN(PatternPtr inner, ParseGroup());
        auto opt = std::make_unique<Pattern>();
        opt->kind = PatternKind::kOptional;
        opt->children.push_back(std::move(inner));
        group->children.push_back(std::move(opt));
        ConsumeSymbol(".");
        continue;
      }
      if (PeekKeyword("FILTER")) {
        Advance();
        RDFREL_ASSIGN_OR_RETURN(FilterExprPtr f, ParseFilter());
        group->filters.push_back(std::move(f));
        ConsumeSymbol(".");
        continue;
      }
      if (PeekSymbol("{")) {
        // Nested group, possibly a UNION chain.
        RDFREL_ASSIGN_OR_RETURN(PatternPtr first, ParseGroup());
        if (PeekKeyword("UNION")) {
          auto orp = std::make_unique<Pattern>();
          orp->kind = PatternKind::kOr;
          orp->children.push_back(std::move(first));
          while (PeekKeyword("UNION")) {
            Advance();
            RDFREL_ASSIGN_OR_RETURN(PatternPtr next, ParseGroup());
            orp->children.push_back(std::move(next));
          }
          group->children.push_back(std::move(orp));
        } else {
          group->children.push_back(std::move(first));
        }
        ConsumeSymbol(".");
        continue;
      }
      // Triples block.
      RDFREL_RETURN_NOT_OK(ParseTriplesBlock(&group->children));
      if (!ConsumeSymbol(".")) {
        // '.' optional before '}' / OPTIONAL / FILTER / '{'.
        if (!PeekSymbol("}") && !PeekKeyword("OPTIONAL") &&
            !PeekKeyword("FILTER") && !PeekSymbol("{")) {
          return Error("expected '.' between triple patterns");
        }
      }
    }
    RDFREL_RETURN_NOT_OK(ExpectSymbol("}"));
    // Collapse single-child groups without filters.
    if (group->children.size() == 1 && group->filters.empty()) {
      return std::move(group->children.front());
    }
    return PatternPtr(std::move(group));
  }

  // ------------------------------------------------------------- filters
  Result<FilterExprPtr> ParseFilter() {
    RDFREL_RETURN_NOT_OK(ExpectSymbol("("));
    RDFREL_ASSIGN_OR_RETURN(FilterExprPtr e, ParseFilterOr());
    RDFREL_RETURN_NOT_OK(ExpectSymbol(")"));
    return e;
  }

  Result<FilterExprPtr> ParseFilterOr() {
    RDFREL_ASSIGN_OR_RETURN(FilterExprPtr lhs, ParseFilterAnd());
    while (PeekSymbol("||")) {
      Advance();
      RDFREL_ASSIGN_OR_RETURN(FilterExprPtr rhs, ParseFilterAnd());
      auto e = std::make_unique<FilterExpr>();
      e->op = FilterOp::kOr;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<FilterExprPtr> ParseFilterAnd() {
    RDFREL_ASSIGN_OR_RETURN(FilterExprPtr lhs, ParseFilterUnary());
    while (PeekSymbol("&&")) {
      Advance();
      RDFREL_ASSIGN_OR_RETURN(FilterExprPtr rhs, ParseFilterUnary());
      auto e = std::make_unique<FilterExpr>();
      e->op = FilterOp::kAnd;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<FilterExprPtr> ParseFilterUnary() {
    if (ConsumeSymbol("!")) {
      RDFREL_ASSIGN_OR_RETURN(FilterExprPtr child, ParseFilterUnary());
      auto e = std::make_unique<FilterExpr>();
      e->op = FilterOp::kNot;
      e->lhs = std::move(child);
      return FilterExprPtr(std::move(e));
    }
    return ParseFilterComparison();
  }

  Result<FilterExprPtr> ParseFilterComparison() {
    RDFREL_ASSIGN_OR_RETURN(FilterExprPtr lhs, ParseFilterPrimary());
    struct OpMap {
      std::string_view sym;
      FilterOp op;
    };
    static constexpr OpMap kOps[] = {
        {"<=", FilterOp::kLe}, {">=", FilterOp::kGe}, {"!=", FilterOp::kNe},
        {"=", FilterOp::kEq},  {"<", FilterOp::kLt},  {">", FilterOp::kGt},
    };
    for (const auto& m : kOps) {
      if (PeekSymbol(m.sym)) {
        Advance();
        RDFREL_ASSIGN_OR_RETURN(FilterExprPtr rhs, ParseFilterPrimary());
        auto e = std::make_unique<FilterExpr>();
        e->op = m.op;
        e->lhs = std::move(lhs);
        e->rhs = std::move(rhs);
        return FilterExprPtr(std::move(e));
      }
    }
    return lhs;
  }

  Result<FilterExprPtr> ParseFilterPrimary() {
    if (ConsumeSymbol("(")) {
      RDFREL_ASSIGN_OR_RETURN(FilterExprPtr e, ParseFilterOr());
      RDFREL_RETURN_NOT_OK(ExpectSymbol(")"));
      return e;
    }
    const Token& t = Peek();
    if (t.kind == TokenKind::kVar) {
      auto e = std::make_unique<FilterExpr>();
      e->op = FilterOp::kVar;
      e->var = t.text;
      Advance();
      return FilterExprPtr(std::move(e));
    }
    if (t.kind == TokenKind::kKeywordOrName &&
        EqualsIgnoreCaseAscii(t.text, "BOUND")) {
      Advance();
      RDFREL_RETURN_NOT_OK(ExpectSymbol("("));
      if (Peek().kind != TokenKind::kVar) {
        return Error("expected variable in BOUND()");
      }
      auto e = std::make_unique<FilterExpr>();
      e->op = FilterOp::kBound;
      e->var = Peek().text;
      Advance();
      RDFREL_RETURN_NOT_OK(ExpectSymbol(")"));
      return FilterExprPtr(std::move(e));
    }
    if (t.kind == TokenKind::kKeywordOrName &&
        EqualsIgnoreCaseAscii(t.text, "REGEX")) {
      Advance();
      RDFREL_RETURN_NOT_OK(ExpectSymbol("("));
      RDFREL_ASSIGN_OR_RETURN(FilterExprPtr arg, ParseFilterPrimary());
      RDFREL_RETURN_NOT_OK(ExpectSymbol(","));
      if (Peek().kind != TokenKind::kString) {
        return Error("expected pattern string in REGEX()");
      }
      auto e = std::make_unique<FilterExpr>();
      e->op = FilterOp::kRegex;
      e->lhs = std::move(arg);
      e->pattern = Peek().text;
      Advance();
      // Optional flags argument, ignored.
      if (ConsumeSymbol(",")) {
        if (Peek().kind != TokenKind::kString) {
          return Error("expected flags string in REGEX()");
        }
        Advance();
      }
      RDFREL_RETURN_NOT_OK(ExpectSymbol(")"));
      return FilterExprPtr(std::move(e));
    }
    // Terms.
    RDFREL_ASSIGN_OR_RETURN(TermOrVar tv, ParseTermOrVar(false));
    auto e = std::make_unique<FilterExpr>();
    e->op = FilterOp::kTerm;
    e->term = std::move(tv.term);
    return FilterExprPtr(std::move(e));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::map<std::string, std::string> prefixes_;
  std::string base_;
  int next_triple_id_ = 1;
  int next_path_var_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view sparql) {
  RDFREL_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSparql(sparql));
  Parser p(std::move(tokens));
  return p.Parse();
}

}  // namespace rdfrel::sparql
