#include "sparql/lexer.h"

#include <cctype>

namespace rdfrel::sparql {

namespace {
bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.';
}
}  // namespace

Result<std::vector<Token>> LexSparql(std::string_view in) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = in.size();
  while (i < n) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && in[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    // Variable.
    if (c == '?' || c == '$') {
      ++i;
      std::string name;
      while (i < n && IsNameChar(in[i]) && in[i] != '.') {
        name.push_back(in[i]);
        ++i;
      }
      if (name.empty()) {
        return Status::ParseError("empty variable name at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenKind::kVar, std::move(name), start});
      continue;
    }
    // IRI (only when it looks like one; bare '<' is a comparison).
    if (c == '<') {
      size_t j = i + 1;
      bool iri_like = false;
      while (j < n && in[j] != '>' && !std::isspace(
                 static_cast<unsigned char>(in[j]))) {
        ++j;
      }
      iri_like = j < n && in[j] == '>';
      if (iri_like) {
        std::string iri(in.substr(i + 1, j - i - 1));
        i = j + 1;
        tokens.push_back({TokenKind::kIri, std::move(iri), start});
        continue;
      }
    }
    // String literal.
    if (c == '"') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (in[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        if (in[i] == '\\' && i + 1 < n) {
          char e = in[i + 1];
          switch (e) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case 'r': text.push_back('\r'); break;
            case '"': text.push_back('"'); break;
            case '\\': text.push_back('\\'); break;
            default:
              return Status::ParseError("bad escape in string literal");
          }
          i += 2;
          continue;
        }
        text.push_back(in[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenKind::kString, std::move(text), start});
      continue;
    }
    // Lang tag.
    if (c == '@') {
      ++i;
      std::string tag;
      while (i < n && (std::isalnum(static_cast<unsigned char>(in[i])) ||
                       in[i] == '-')) {
        tag.push_back(in[i]);
        ++i;
      }
      tokens.push_back({TokenKind::kLangTag, std::move(tag), start});
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      if (c == '-') ++i;
      bool decimal = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(in[i]))) ++i;
      if (i < n && in[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(in[i + 1]))) {
        decimal = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(in[i]))) ++i;
      }
      tokens.push_back({decimal ? TokenKind::kDecimal : TokenKind::kInteger,
                        std::string(in.substr(start, i - start)), start});
      continue;
    }
    // Name, keyword, or prefixed name.
    if (IsNameStart(c)) {
      ++i;
      while (i < n && IsNameChar(in[i])) ++i;
      // Trailing '.' belongs to the triple terminator, not the name.
      while (i > start && in[i - 1] == '.') --i;
      std::string word(in.substr(start, i - start));
      if (i < n && in[i] == ':') {
        // prefix:local
        ++i;
        size_t lstart = i;
        while (i < n && IsNameChar(in[i])) ++i;
        while (i > lstart && in[i - 1] == '.') --i;  // terminator
        std::string local(in.substr(lstart, i - lstart));
        tokens.push_back({TokenKind::kPname, word + ":" + local, start});
        continue;
      }
      tokens.push_back({TokenKind::kKeywordOrName, std::move(word), start});
      continue;
    }
    // ':' starting a pname with empty prefix (":local").
    if (c == ':') {
      ++i;
      size_t lstart = i;
      while (i < n && IsNameChar(in[i])) ++i;
      while (i > lstart && in[i - 1] == '.') --i;
      tokens.push_back(
          {TokenKind::kPname, ":" + std::string(in.substr(lstart, i - lstart)),
           start});
      continue;
    }
    // Multi-char symbols.
    if (i + 1 < n) {
      std::string_view two = in.substr(i, 2);
      if (two == "^^" || two == "&&" || two == "||" || two == "!=" ||
          two == "<=" || two == ">=") {
        tokens.push_back({TokenKind::kSymbol, std::string(two), start});
        i += 2;
        continue;
      }
    }
    static constexpr std::string_view kSingles = "{}().,;*=<>!/_+|^";
    if (kSingles.find(c) != std::string_view::npos) {
      tokens.push_back({TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(start));
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace rdfrel::sparql
