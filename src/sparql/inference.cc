#include "sparql/inference.h"

#include <algorithm>
#include <functional>

namespace rdfrel::sparql {

namespace {
constexpr const char* kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
}  // namespace

void TypeHierarchy::AddSubclass(const std::string& sub_iri,
                                const std::string& super_iri) {
  if (sub_iri == super_iri) return;
  direct_subs_[super_iri].insert(sub_iri);
  direct_subs_[sub_iri];  // ensure node exists
}

std::vector<std::string> TypeHierarchy::ExpandClass(
    const std::string& iri) const {
  std::vector<std::string> out = {iri};
  std::set<std::string> seen = {iri};
  // BFS over direct subclasses; deterministic because sets are ordered.
  for (size_t i = 0; i < out.size(); ++i) {
    auto it = direct_subs_.find(out[i]);
    if (it == direct_subs_.end()) continue;
    for (const auto& sub : it->second) {
      if (seen.insert(sub).second) out.push_back(sub);
    }
  }
  return out;
}

bool TypeHierarchy::HasSubclasses(const std::string& iri) const {
  return ExpandClass(iri).size() > 1;
}

namespace {

/// Recursively rewrites type triples under \p node; counts expansions.
void ExpandPattern(const TypeHierarchy& h, Pattern* node, int* expanded) {
  if (node->kind == PatternKind::kTriple) return;  // handled by the parent
  for (auto& child : node->children) {
    if (child->kind != PatternKind::kTriple) {
      ExpandPattern(h, child.get(), expanded);
      continue;
    }
    const TriplePattern& t = child->triple;
    if (t.predicate.is_var || !t.predicate.term.is_iri() ||
        t.predicate.term.lexical() != kRdfType) {
      continue;
    }
    if (t.object.is_var || !t.object.term.is_iri()) continue;
    std::vector<std::string> classes =
        h.ExpandClass(t.object.term.lexical());
    if (classes.size() <= 1) continue;

    // Build { t(C) } UNION { t(C1) } UNION ...
    auto orp = std::make_unique<Pattern>();
    orp->kind = PatternKind::kOr;
    for (const auto& cls : classes) {
      TriplePattern tp = t;  // same subject/predicate, new class object
      tp.object = TermOrVar::Of(rdf::Term::Iri(cls));
      orp->children.push_back(MakeTriplePattern(std::move(tp)));
    }
    child = std::move(orp);
    ++*expanded;
  }
}

/// Renumbers triple ids in parse order after rewriting.
void Renumber(Pattern* node, int* next) {
  if (node->kind == PatternKind::kTriple) {
    node->triple.id = (*next)++;
    return;
  }
  for (auto& c : node->children) Renumber(c.get(), next);
}

}  // namespace

Result<int> ExpandTypeQuery(const TypeHierarchy& hierarchy, Query* query) {
  if (query->where == nullptr) {
    return Status::InvalidArgument("query has no pattern");
  }
  int expanded = 0;
  // The root itself may be a bare type triple.
  if (query->where->kind == PatternKind::kTriple) {
    auto group = std::make_unique<Pattern>();
    group->kind = PatternKind::kAnd;
    group->children.push_back(std::move(query->where));
    query->where = std::move(group);
  }
  ExpandPattern(hierarchy, query->where.get(), &expanded);
  int next = 1;
  Renumber(query->where.get(), &next);
  query->num_triples = next - 1;
  return expanded;
}

}  // namespace rdfrel::sparql
