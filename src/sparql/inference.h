#ifndef RDFREL_SPARQL_INFERENCE_H_
#define RDFREL_SPARQL_INFERENCE_H_

/// \file inference.h
/// Subclass-inference query expansion (paper §4.1): systems without OWL
/// inference can still answer type queries by rewriting `?x rdf:type C`
/// into a UNION over C and its subclasses — exactly the manual expansion
/// the paper applied to the LUBM workload ("?x rdf:type Student" becomes
/// "... Student UNION ... GraduateStudent"). This module automates it from
/// a set of rdfs:subClassOf axioms.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "rdf/term.h"
#include "sparql/ast.h"
#include "util/status.h"

namespace rdfrel::sparql {

/// A transitively-closed subclass hierarchy.
class TypeHierarchy {
 public:
  TypeHierarchy() = default;

  /// Declares `sub rdfs:subClassOf super` (IRIs). Cycles are tolerated
  /// (members of a cycle become mutual subclasses).
  void AddSubclass(const std::string& sub_iri, const std::string& super_iri);

  /// The class plus all (transitive) subclasses, deterministic order.
  std::vector<std::string> ExpandClass(const std::string& iri) const;

  /// True if \p iri has at least one proper subclass.
  bool HasSubclasses(const std::string& iri) const;

  size_t num_classes() const { return direct_subs_.size(); }

 private:
  std::map<std::string, std::set<std::string>> direct_subs_;
};

/// Rewrites \p query in place: every triple pattern `?x rdf:type <C>` (or
/// with a constant subject) whose class C has subclasses becomes a UNION of
/// one pattern per class in ExpandClass(C). Triple ids are renumbered.
/// Returns the number of expanded patterns.
Result<int> ExpandTypeQuery(const TypeHierarchy& hierarchy, Query* query);

}  // namespace rdfrel::sparql

#endif  // RDFREL_SPARQL_INFERENCE_H_
