#include "sparql/ast.h"

#include <algorithm>
#include <unordered_set>

namespace rdfrel::sparql {

std::vector<std::string> TriplePattern::Variables() const {
  std::vector<std::string> out;
  auto add = [&](const TermOrVar& t) {
    if (t.is_var &&
        std::find(out.begin(), out.end(), t.var) == out.end()) {
      out.push_back(t.var);
    }
  };
  add(subject);
  add(predicate);
  add(object);
  return out;
}

std::string FilterExpr::ToString() const {
  switch (op) {
    case FilterOp::kVar: return "?" + var;
    case FilterOp::kTerm: return term.ToNTriples();
    case FilterOp::kBound: return "BOUND(?" + var + ")";
    case FilterOp::kRegex:
      return "REGEX(" + lhs->ToString() + ", \"" + pattern + "\")";
    case FilterOp::kNot: return "(!" + lhs->ToString() + ")";
    case FilterOp::kAnd:
      return "(" + lhs->ToString() + " && " + rhs->ToString() + ")";
    case FilterOp::kOr:
      return "(" + lhs->ToString() + " || " + rhs->ToString() + ")";
    case FilterOp::kEq:
      return "(" + lhs->ToString() + " = " + rhs->ToString() + ")";
    case FilterOp::kNe:
      return "(" + lhs->ToString() + " != " + rhs->ToString() + ")";
    case FilterOp::kLt:
      return "(" + lhs->ToString() + " < " + rhs->ToString() + ")";
    case FilterOp::kLe:
      return "(" + lhs->ToString() + " <= " + rhs->ToString() + ")";
    case FilterOp::kGt:
      return "(" + lhs->ToString() + " > " + rhs->ToString() + ")";
    case FilterOp::kGe:
      return "(" + lhs->ToString() + " >= " + rhs->ToString() + ")";
  }
  return "?";
}

void Pattern::CollectTriples(
    std::vector<const TriplePattern*>* out) const {
  if (kind == PatternKind::kTriple) {
    out->push_back(&triple);
    return;
  }
  for (const auto& c : children) c->CollectTriples(out);
}

void Pattern::CollectVariables(std::vector<std::string>* out) const {
  std::vector<const TriplePattern*> triples;
  CollectTriples(&triples);
  std::unordered_set<std::string> seen(out->begin(), out->end());
  for (const auto* t : triples) {
    for (const auto& v : t->Variables()) {
      if (seen.insert(v).second) out->push_back(v);
    }
  }
}

std::string Pattern::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (kind) {
    case PatternKind::kTriple:
      return pad + "t" + std::to_string(triple.id) + ": " +
             triple.ToString() + "\n";
    case PatternKind::kAnd:
    case PatternKind::kOr:
    case PatternKind::kOptional: {
      std::string name = kind == PatternKind::kAnd
                             ? "AND"
                             : (kind == PatternKind::kOr ? "OR" : "OPTIONAL");
      std::string out = pad + name + "\n";
      for (const auto& c : children) out += c->ToString(indent + 1);
      for (const auto& f : filters) {
        out += pad + "  FILTER " + f->ToString() + "\n";
      }
      return out;
    }
  }
  return "";
}

PatternPtr MakeTriplePattern(TriplePattern t) {
  auto p = std::make_unique<Pattern>();
  p->kind = PatternKind::kTriple;
  p->triple = std::move(t);
  return p;
}

PatternPtr MakeGroup(std::vector<PatternPtr> children) {
  auto p = std::make_unique<Pattern>();
  p->kind = PatternKind::kAnd;
  p->children = std::move(children);
  return p;
}

std::vector<std::string> Query::EffectiveSelectVars() const {
  if (HasAggregates()) {
    std::vector<std::string> out;
    for (const auto& pr : projection) out.push_back(pr.OutputName());
    return out;
  }
  if (!select_vars.empty()) return select_vars;
  std::vector<std::string> all;
  if (where) where->CollectVariables(&all);
  return all;
}

}  // namespace rdfrel::sparql
