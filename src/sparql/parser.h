#ifndef RDFREL_SPARQL_PARSER_H_
#define RDFREL_SPARQL_PARSER_H_

/// \file parser.h
/// Recursive-descent SPARQL parser. Subset: PREFIX prologue, SELECT
/// [DISTINCT] (vars | *), group graph patterns with '.'-separated triple
/// blocks (';' predicate lists, ',' object lists, 'a' for rdf:type), nested
/// groups, UNION, OPTIONAL, FILTER, ORDER BY [ASC|DESC], LIMIT, OFFSET.

#include <string_view>

#include "sparql/ast.h"
#include "util/status.h"

namespace rdfrel::sparql {

/// Parses a SELECT query.
Result<Query> ParseQuery(std::string_view sparql);

}  // namespace rdfrel::sparql

#endif  // RDFREL_SPARQL_PARSER_H_
