#include "lexer.h"

#include <cctype>

namespace rdfrel_lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

LexedFile Lex(const std::string& source) {
  LexedFile out;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;

  auto peek = [&](size_t k) -> char {
    return i + k < n ? source[i + k] : '\0';
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      size_t start = i + 2;
      size_t end = start;
      while (end < n && source[end] != '\n') ++end;
      out.comments.push_back({line, source.substr(start, end - start)});
      i = end;
      continue;
    }
    // Block comment (may span lines).
    if (c == '/' && peek(1) == '*') {
      int start_line = line;
      size_t start = i + 2;
      size_t end = start;
      while (end + 1 < n && !(source[end] == '*' && source[end + 1] == '/')) {
        if (source[end] == '\n') ++line;
        ++end;
      }
      out.comments.push_back({start_line, source.substr(start, end - start)});
      i = end + 2 <= n ? end + 2 : n;
      continue;
    }
    // Preprocessor directive: consume to end of line, honoring backslash
    // continuations (their content never matters to the rules).
    if (c == '#') {
      while (i < n && source[i] != '\n') {
        if (source[i] == '\\' && peek(1) == '\n') {
          ++line;
          ++i;  // skip the backslash; the loop ++ skips the newline
        }
        ++i;
      }
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && source[j] != '(') delim += source[j++];
      std::string closer = ")" + delim + "\"";
      size_t close = source.find(closer, j);
      int start_line = line;
      size_t end = close == std::string::npos ? n : close + closer.size();
      for (size_t k = i; k < end; ++k) {
        if (source[k] == '\n') ++line;
      }
      out.tokens.push_back({TokenKind::kString, "", start_line});
      i = end;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t j = i + 1;
      while (j < n && source[j] != quote) {
        if (source[j] == '\\' && j + 1 < n) ++j;
        if (source[j] == '\n') ++line;  // unterminated; keep lines honest
        ++j;
      }
      out.tokens.push_back({TokenKind::kString, "", line});
      i = j < n ? j + 1 : n;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(source[j])) ++j;
      out.tokens.push_back({TokenKind::kIdent, source.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      // Good enough for stream integrity: digits, dots, exponents, suffixes,
      // hex. A number never matters to the rules beyond occupying a slot.
      while (j < n && (IsIdentChar(source[j]) || source[j] == '.' ||
                       ((source[j] == '+' || source[j] == '-') && j > i &&
                        (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                         source[j - 1] == 'p' || source[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({TokenKind::kNumber, source.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuators. Multi-char ones the engine matches on.
    if (c == ':' && peek(1) == ':') {
      out.tokens.push_back({TokenKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      out.tokens.push_back({TokenKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokenKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace rdfrel_lint
