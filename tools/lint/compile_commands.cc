#include "compile_commands.h"

#include <cctype>

namespace rdfrel_lint {

namespace {

/// Scans a JSON string literal starting at the opening quote; returns the
/// decoded text and leaves \p i one past the closing quote.
std::string ScanString(const std::string& s, size_t* i) {
  std::string out;
  size_t j = *i + 1;  // past the opening quote
  while (j < s.size() && s[j] != '"') {
    char c = s[j];
    if (c == '\\' && j + 1 < s.size()) {
      char e = s[j + 1];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u':
          // Paths in compile databases are ASCII in practice; keep the
          // low byte so the entry stays usable either way.
          if (j + 5 < s.size()) {
            out += static_cast<char>(
                std::stoi(s.substr(j + 2, 4), nullptr, 16) & 0xff);
            j += 4;
          }
          break;
        default: out += e; break;
      }
      j += 2;
      continue;
    }
    out += c;
    ++j;
  }
  *i = j < s.size() ? j + 1 : j;
  return out;
}

void SkipWs(const std::string& s, size_t* i) {
  while (*i < s.size() && std::isspace(static_cast<unsigned char>(s[*i]))) {
    ++*i;
  }
}

}  // namespace

std::vector<CompileEntry> ParseCompileCommands(const std::string& json,
                                               std::string* error) {
  std::vector<CompileEntry> out;
  size_t i = 0;
  SkipWs(json, &i);
  if (i >= json.size() || json[i] != '[') {
    *error = "compile_commands.json: expected a top-level array";
    return out;
  }
  ++i;
  while (i < json.size()) {
    SkipWs(json, &i);
    if (i < json.size() && json[i] == ']') break;
    if (i < json.size() && json[i] == ',') {
      ++i;
      continue;
    }
    if (i >= json.size() || json[i] != '{') {
      *error = "compile_commands.json: expected an object";
      return out;
    }
    ++i;
    CompileEntry entry;
    // Scan one object: a flat sequence of "key": value pairs where value is
    // a string or an array of strings ("arguments").
    while (i < json.size() && json[i] != '}') {
      SkipWs(json, &i);
      if (i < json.size() && json[i] == ',') {
        ++i;
        continue;
      }
      if (i < json.size() && json[i] == '}') break;
      if (i >= json.size() || json[i] != '"') {
        *error = "compile_commands.json: expected a key string";
        return out;
      }
      std::string key = ScanString(json, &i);
      SkipWs(json, &i);
      if (i >= json.size() || json[i] != ':') {
        *error = "compile_commands.json: expected ':' after key";
        return out;
      }
      ++i;
      SkipWs(json, &i);
      if (i < json.size() && json[i] == '"') {
        std::string value = ScanString(json, &i);
        if (key == "file") entry.file = value;
        if (key == "directory") entry.directory = value;
      } else if (i < json.size() && json[i] == '[') {
        ++i;  // "arguments": skip the array, we only need file+directory
        while (i < json.size() && json[i] != ']') {
          SkipWs(json, &i);
          if (i < json.size() && json[i] == '"') {
            ScanString(json, &i);
          } else if (i < json.size() && json[i] != ']') {
            ++i;
          }
        }
        if (i < json.size()) ++i;
      } else {
        // Non-string scalar; skip to the next delimiter.
        while (i < json.size() && json[i] != ',' && json[i] != '}') ++i;
      }
    }
    if (i < json.size()) ++i;  // past '}'
    if (!entry.file.empty()) {
      if (entry.file[0] != '/' && !entry.directory.empty()) {
        entry.file = entry.directory + "/" + entry.file;
      }
      out.push_back(std::move(entry));
    }
  }
  return out;
}

}  // namespace rdfrel_lint
