#ifndef RDFREL_TOOLS_LINT_FRONTEND_CLANG_H_
#define RDFREL_TOOLS_LINT_FRONTEND_CLANG_H_

/// \file frontend_clang.h
/// Optional Clang libTooling frontend. Compiled only when CMake finds the
/// Clang development libraries (RDFREL_LINT_HAVE_CLANG); otherwise a stub
/// reports the engine unavailable and the driver falls back to the lexical
/// engine. The libTooling pass re-implements the assignment-shaped rules
/// (arena-escape, borrowed-batch, status-discipline) on the AST, where
/// member resolution and types are exact; blocking-under-lock stays with
/// the lexical engine in both modes because its release-around-I/O idiom
/// is a statement-order property the token walk models directly.

#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace rdfrel_lint {

/// True when this binary was built against the Clang libraries.
bool ClangEngineAvailable();

/// Runs the libTooling pass for \p rules over \p files using the compile
/// database at \p build_path (a directory containing compile_commands.json).
/// Returns false (with \p error set) on tooling failure. Unavailable stub
/// always returns false.
bool RunClangEngine(const std::vector<std::string>& files,
                    const std::string& build_path,
                    const std::set<std::string>& rules,
                    const MarkerIndex& markers,
                    std::vector<Diagnostic>* out, std::string* error);

}  // namespace rdfrel_lint

#endif  // RDFREL_TOOLS_LINT_FRONTEND_CLANG_H_
