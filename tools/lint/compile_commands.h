#ifndef RDFREL_TOOLS_LINT_COMPILE_COMMANDS_H_
#define RDFREL_TOOLS_LINT_COMPILE_COMMANDS_H_

/// \file compile_commands.h
/// Just enough JSON to read a CMake-exported compile_commands.json: an
/// array of objects with string values for "file", "directory" and
/// "command"/"arguments". No third-party JSON dependency — the whole
/// grammar this tool needs fits in a page.

#include <string>
#include <vector>

namespace rdfrel_lint {

struct CompileEntry {
  std::string file;       ///< as written (possibly relative)
  std::string directory;  ///< build dir the command runs in
};

/// Parses \p json (the content of compile_commands.json). Returns entries
/// with "file" resolved against "directory" when relative. On malformed
/// input, returns what was parsed so far and sets \p error.
std::vector<CompileEntry> ParseCompileCommands(const std::string& json,
                                               std::string* error);

}  // namespace rdfrel_lint

#endif  // RDFREL_TOOLS_LINT_COMPILE_COMMANDS_H_
