/// rdfrel-lint driver (DESIGN.md §15).
///
///   rdfrel-lint -p build [--rules=a,b] [--scope=src/] [files...]
///
/// With -p, every compile_commands.json entry under --scope is analyzed,
/// plus every header under the scope directories (inline code in headers is
/// just as able to violate an invariant). Positional files override the
/// database and are analyzed as-is. Exit 0 = clean, 1 = diagnostics,
/// 2 = usage or I/O error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "compile_commands.h"
#include "frontend_clang.h"
#include "lint.h"

namespace {

namespace fs = std::filesystem;
using rdfrel_lint::Diagnostic;
using rdfrel_lint::MarkerIndex;

struct Options {
  std::string build_path;           // -p
  std::vector<std::string> scopes;  // --scope= (default: src/)
  std::set<std::string> rules;      // --rules= (default: all)
  std::string engine = "auto";      // --engine=auto|lite|clang
  bool no_suppress = false;         // --no-suppress
  bool verbose = false;             // --verbose
  std::vector<std::string> files;   // positional
};

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [-p <build-dir>] [--rules=r1,r2] [--scope=prefix/]...\n"
         "       [--engine=auto|lite|clang] [--no-suppress] [--verbose]\n"
         "       [--list-rules] [files...]\n\n"
         "Enforces the rdfrel project invariants (DESIGN.md '15. Project "
         "lint').\nWith -p, analyzes every compile_commands.json entry "
         "whose path falls\nunder a --scope prefix (default src/), plus "
         "headers under those\ndirectories. Positional files are analyzed "
         "unconditionally.\n";
  return 2;
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Repo-relative normalization: diagnostics print paths relative to the
/// current directory when possible so fixture expectations stay stable.
std::string DisplayPath(const std::string& path) {
  std::error_code ec;
  fs::path p = fs::weakly_canonical(path, ec);
  if (ec) return path;
  fs::path cwd = fs::current_path(ec);
  if (ec) return p.string();
  auto rel = fs::relative(p, cwd, ec);
  if (ec || rel.empty() || rel.string().rfind("..", 0) == 0) {
    return p.string();
  }
  return rel.string();
}

bool InScope(const std::string& display_path,
             const std::vector<std::string>& scopes) {
  for (const auto& s : scopes) {
    if (display_path.rfind(s, 0) == 0) return true;
    if (display_path.find("/" + s) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (const std::string& rule : rdfrel_lint::AllRules()) {
    opt.rules.insert(rule);
  }

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-p") {
      if (++i >= argc) return Usage(argv[0]);
      opt.build_path = argv[i];
    } else if (arg.rfind("-p=", 0) == 0) {
      opt.build_path = arg.substr(3);
    } else if (arg.rfind("--rules=", 0) == 0) {
      opt.rules.clear();
      std::stringstream ss(arg.substr(8));
      std::string rule;
      std::vector<std::string> all = rdfrel_lint::AllRules();
      while (std::getline(ss, rule, ',')) {
        if (std::find(all.begin(), all.end(), rule) == all.end()) {
          std::cerr << argv[0] << ": unknown rule '" << rule
                    << "' (see --list-rules)\n";
          return 2;
        }
        opt.rules.insert(rule);
      }
      if (opt.rules.empty()) return Usage(argv[0]);
    } else if (arg.rfind("--scope=", 0) == 0) {
      opt.scopes.push_back(arg.substr(8));
    } else if (arg.rfind("--engine=", 0) == 0) {
      opt.engine = arg.substr(9);
      if (opt.engine != "auto" && opt.engine != "lite" &&
          opt.engine != "clang") {
        return Usage(argv[0]);
      }
    } else if (arg == "--no-suppress") {
      opt.no_suppress = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--list-rules") {
      for (const std::string& rule : rdfrel_lint::AllRules()) {
        std::cout << rule << "\n";
      }
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      opt.files.push_back(arg);
    }
  }
  if (opt.scopes.empty()) opt.scopes.push_back("src/");

  // ------------------------------------------------------ collect file set
  std::vector<std::string> files;  // display paths, deduped, ordered
  std::set<std::string> seen;
  auto add_file = [&](const std::string& path) {
    std::string display = DisplayPath(path);
    if (seen.insert(display).second) files.push_back(display);
  };

  for (const auto& f : opt.files) add_file(f);

  if (!opt.build_path.empty()) {
    fs::path db = opt.build_path;
    if (fs::is_directory(db)) db /= "compile_commands.json";
    std::string json;
    if (!ReadFileToString(db.string(), &json)) {
      std::cerr << argv[0] << ": cannot read " << db.string() << "\n";
      return 2;
    }
    std::string error;
    auto entries = rdfrel_lint::ParseCompileCommands(json, &error);
    if (!error.empty()) {
      std::cerr << argv[0] << ": " << error << "\n";
      return 2;
    }
    std::vector<std::string> db_files;
    for (const auto& e : entries) {
      std::string display = DisplayPath(e.file);
      if (InScope(display, opt.scopes)) db_files.push_back(display);
    }
    std::sort(db_files.begin(), db_files.end());
    for (const auto& f : db_files) add_file(f);
    // Headers under the scope directories of the database entries: inline
    // code lives there too, and the marker pre-pass needs them regardless.
    std::set<std::string> scope_dirs;
    for (const auto& f : db_files) {
      scope_dirs.insert(fs::path(f).begin()->string());
    }
    std::vector<std::string> headers;
    for (const auto& dir : scope_dirs) {
      std::error_code ec;
      for (fs::recursive_directory_iterator it(dir, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && it->path().extension() == ".h") {
          headers.push_back(it->path().string());
        }
      }
    }
    std::sort(headers.begin(), headers.end());
    for (const auto& h : headers) add_file(h);
  }

  if (files.empty()) {
    std::cerr << argv[0]
              << ": nothing to analyze (no -p database and no files)\n";
    return 2;
  }

  // ------------------------------------------------- load + marker pre-pass
  std::vector<std::pair<std::string, std::string>> contents;  // path, text
  MarkerIndex markers;
  for (const auto& f : files) {
    std::string text;
    if (!ReadFileToString(f, &text)) {
      std::cerr << argv[0] << ": cannot read " << f << "\n";
      return 2;
    }
    rdfrel_lint::CollectMarkers(text, &markers);
    contents.emplace_back(f, std::move(text));
  }

  // ------------------------------------------------------------ run engines
  bool use_clang = false;
  if (opt.engine == "clang") {
    if (!rdfrel_lint::ClangEngineAvailable()) {
      std::cerr << argv[0]
                << ": --engine=clang requested but this binary was built "
                   "without the Clang libTooling engine\n";
      return 2;
    }
    use_clang = true;
  } else if (opt.engine == "auto") {
    use_clang = rdfrel_lint::ClangEngineAvailable();
    if (!use_clang && opt.verbose) {
      std::cerr << "rdfrel-lint: notice: Clang libTooling engine "
                   "unavailable; using the built-in lexical engine\n";
    }
  }

  // Rules the AST engine owns when active; blocking-under-lock is always
  // lexical (see frontend_clang.h).
  std::set<std::string> clang_rules;
  std::set<std::string> lexical_rules = opt.rules;
  if (use_clang) {
    for (const char* rule :
         {rdfrel_lint::kRuleArenaEscape, rdfrel_lint::kRuleBorrowedBatch,
          rdfrel_lint::kRuleStatusDiscipline}) {
      if (opt.rules.count(rule) > 0) {
        clang_rules.insert(rule);
        lexical_rules.erase(rule);
      }
    }
  }

  std::vector<Diagnostic> diags;
  for (const auto& [path, text] : contents) {
    rdfrel_lint::AnalyzeFileLexical(path, text, markers, lexical_rules,
                                    &diags);
  }
  if (!clang_rules.empty()) {
    // Headers are analyzed through the TUs that include them; feed the
    // tool only real database entries (.cc) to avoid double reports.
    std::vector<std::string> tu_files;
    for (const auto& [path, text] : contents) {
      if (path.size() > 3 && path.substr(path.size() - 3) == ".cc") {
        tu_files.push_back(path);
      }
    }
    std::string error;
    if (!rdfrel_lint::RunClangEngine(tu_files, opt.build_path, clang_rules,
                                     markers, &diags, &error)) {
      std::cerr << argv[0] << ": " << error << "\n";
      return 2;
    }
  }

  // ------------------------------------------- suppressions + presentation
  size_t suppressed = 0;
  if (!opt.no_suppress) {
    for (const auto& [path, text] : contents) {
      suppressed += rdfrel_lint::ApplySuppressions(text, path, &diags);
    }
  }
  std::sort(diags.begin(), diags.end());
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return a.file == b.file && a.line == b.line &&
                                   a.rule == b.rule;
                          }),
              diags.end());

  for (const auto& d : diags) {
    std::cout << rdfrel_lint::FormatDiagnostic(d) << "\n";
  }
  if (opt.verbose) {
    std::cerr << "rdfrel-lint: " << files.size() << " files, "
              << diags.size() << " diagnostics, " << suppressed
              << " suppressed (engine: " << (use_clang ? "clang" : "lexical")
              << ")\n";
  }
  return diags.empty() ? 0 : 1;
}
