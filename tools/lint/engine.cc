#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace rdfrel_lint {

namespace {

// ---------------------------------------------------------------- helpers

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// True for identifiers that look arena-backed by project convention:
/// QueryArena, ArenaAllocator, ArenaRows, arena_, query_arena, ...
bool IsArenaIsh(const std::string& ident) {
  return Contains(ident, "Arena") || Contains(ident, "arena");
}

/// Member access by project naming convention: trailing underscore.
bool IsMemberName(const std::string& ident) {
  return ident.size() >= 2 && ident.back() == '_';
}

const std::set<std::string>& BlockingCallNames() {
  // Env / WritableFile I/O plus pool hand-off. `Append` and `Close` are
  // deliberately absent: the names are too generic to match lexically
  // without drowning real diagnostics in noise (DESIGN.md §15).
  static const std::set<std::string> kNames = {
      "fsync",          "fdatasync",  "NewWritableFile",
      "ReadFile",       "FileSize",   "ListDir",
      "CreateDirIfMissing",           "RemoveFile",
      "RenameFile",     "TruncateFile",
      "Submit",         "Sync",
  };
  return kNames;
}

const std::set<std::string>& ContainerInsertNames() {
  static const std::set<std::string> kNames = {
      "push_back", "emplace_back", "emplace", "insert", "push_front",
      "assign",
  };
  return kNames;
}

struct ScopedName {
  std::string name;
  int depth;     ///< brace depth the declaration is live at
  bool pointer;  ///< declared `T*` (batch vars only; others leave it false)
};

struct LockRecord {
  std::string name;    ///< RAII variable name
  std::string mutex;   ///< normalized text of the mutex argument
  int depth;
  bool locked;
};

/// Walk state shared by every rule; one pass per file.
class Analyzer {
 public:
  Analyzer(const std::string& path, const LexedFile& lexed,
           const MarkerIndex& markers, const std::set<std::string>& rules,
           std::vector<Diagnostic>* out)
      : path_(path),
        t_(lexed.tokens),
        markers_(markers),
        rules_(rules),
        out_(out) {}

  void Run();

 private:
  bool RuleOn(const char* rule) const { return rules_.count(rule) > 0; }

  void Diag(const char* rule, int line, std::string message) {
    out_->push_back({path_, line, rule, std::move(message)});
  }

  const Token& Tok(size_t k) const {
    static const Token kEof{TokenKind::kPunct, "", 0};
    return k < t_.size() ? t_[k] : kEof;
  }
  bool IsPunct(size_t k, const char* text) const {
    return Tok(k).kind == TokenKind::kPunct && Tok(k).text == text;
  }
  bool IsIdent(size_t k) const { return Tok(k).kind == TokenKind::kIdent; }
  bool IsIdent(size_t k, const char* text) const {
    return IsIdent(k) && Tok(k).text == text;
  }

  /// Index of the token after the `)` matching the `(` at \p open.
  size_t AfterMatchingParen(size_t open) const;
  /// Normalized text of the argument starting at \p k (after `(` or `,`):
  /// concatenated tokens up to the next top-level `,` or `)`, `&` dropped.
  std::string NormalizedArg(size_t k) const;
  /// Collects statement-end index: first `;` at the current paren level.
  size_t StatementEnd(size_t k) const;

  int DeclDepth() const { return paren_depth_ > 0 ? depth_ + 1 : depth_; }

  template <typename Rec>
  static void Purge(std::vector<Rec>* v, int depth) {
    v->erase(std::remove_if(v->begin(), v->end(),
                            [depth](const Rec& r) { return r.depth > depth; }),
             v->end());
  }

  bool IsLiveIn(const std::vector<ScopedName>& v, const std::string& n) const {
    for (const auto& r : v) {
      if (r.name == n) return true;
    }
    return false;
  }

  std::string EnclosingClass() const {
    if (fn_active_) return fn_class_;
    if (!class_stack_.empty()) return class_stack_.back().name;
    return "";
  }
  bool EnclosingClassIsQueryScoped() const {
    const std::string cls = EnclosingClass();
    return !cls.empty() && markers_.query_scoped_classes.count(cls) > 0;
  }

  // Sub-handlers, each invoked from the main token loop.
  void HandleOpenBrace();
  void HandleCloseBrace();
  void HandleClassDecl(size_t k);
  void HandleMethodQualifier(size_t k);
  void HandleLockDecl(size_t k);
  void HandleLockToggle(size_t k);
  void HandleBlockingCall(size_t k);
  void HandleWaitCall(size_t k);
  void HandleVoidCast(size_t k);
  void HandleDeclOrAssign(size_t k);
  void HandleContainerInsert(size_t k);

  /// True when the RHS token range [begin, end) derives from an arena:
  /// mentions a tainted local or calls Allocate on an arena-ish receiver.
  bool RhsIsArenaDerived(size_t begin, size_t end) const;
  /// True when [begin, end) captures borrowed RowBatch storage: `&batch`,
  /// `batch.RowAt/Active/ActiveIndex/selection`, or the bare batch name.
  bool RhsCapturesBatch(size_t begin, size_t end,
                        std::string* which_batch) const;

  const std::string& path_;
  const std::vector<Token>& t_;
  const MarkerIndex& markers_;
  const std::set<std::string>& rules_;
  std::vector<Diagnostic>* out_;

  int depth_ = 0;        ///< brace depth
  int paren_depth_ = 0;  ///< open parens

  struct ClassCtx {
    std::string name;
    int depth;  ///< depth inside the class body
  };
  std::vector<ClassCtx> class_stack_;

  // Out-of-line method tracking: `Foo::Bar(...) ... {` makes Foo the
  // enclosing class until the body closes.
  bool fn_candidate_ = false;
  std::string fn_candidate_class_;
  bool fn_active_ = false;
  std::string fn_class_;
  int fn_entry_depth_ = 0;

  std::vector<LockRecord> locks_;
  std::vector<ScopedName> arena_tainted_;
  std::vector<ScopedName> batch_vars_;
  std::vector<ScopedName> status_vars_;
};

size_t Analyzer::AfterMatchingParen(size_t open) const {
  int level = 0;
  for (size_t k = open; k < t_.size(); ++k) {
    if (IsPunct(k, "(")) ++level;
    if (IsPunct(k, ")")) {
      --level;
      if (level == 0) return k + 1;
    }
  }
  return t_.size();
}

std::string Analyzer::NormalizedArg(size_t k) const {
  std::string out;
  int paren = 0;
  for (; k < t_.size(); ++k) {
    if (IsPunct(k, "(")) ++paren;
    if (IsPunct(k, ")")) {
      if (paren == 0) break;
      --paren;
    }
    if (paren == 0 && IsPunct(k, ",")) break;
    if (IsPunct(k, "&")) continue;  // address-of is lock-decl noise
    out += Tok(k).text;
  }
  return out;
}

size_t Analyzer::StatementEnd(size_t k) const {
  int paren = 0;
  int brace = 0;
  for (; k < t_.size(); ++k) {
    if (IsPunct(k, "(")) ++paren;
    if (IsPunct(k, ")")) {
      if (paren == 0) break;  // left our expression (e.g. inside `for`)
      --paren;
    }
    if (IsPunct(k, "{")) ++brace;  // braced init / lambda body
    if (IsPunct(k, "}")) {
      if (brace == 0) break;
      --brace;
    }
    if (paren == 0 && brace == 0 && IsPunct(k, ";")) return k;
  }
  return k;
}

void Analyzer::HandleOpenBrace() {
  ++depth_;
  if (fn_candidate_ && !fn_active_) {
    fn_active_ = true;
    fn_class_ = fn_candidate_class_;
    fn_entry_depth_ = depth_ - 1;
    fn_candidate_ = false;
  }
}

void Analyzer::HandleCloseBrace() {
  --depth_;
  if (depth_ < 0) depth_ = 0;
  Purge(&locks_, depth_);
  Purge(&arena_tainted_, depth_);
  Purge(&batch_vars_, depth_);
  Purge(&status_vars_, depth_);
  while (!class_stack_.empty() && class_stack_.back().depth > depth_) {
    class_stack_.pop_back();
  }
  if (fn_active_ && depth_ <= fn_entry_depth_) {
    fn_active_ = false;
    fn_class_.clear();
  }
}

void Analyzer::HandleClassDecl(size_t k) {
  // `class [macros...] Name [final] [: bases] {` — pushes a class context.
  // `enum class` and forward declarations are skipped.
  if (IsIdent(k - 1, "enum")) return;
  std::string name;
  for (size_t j = k + 1; j < t_.size() && j < k + 12; ++j) {
    if (IsPunct(j, ";")) return;  // forward declaration
    if (IsPunct(j, "{") || IsPunct(j, ":")) break;
    if (IsIdent(j) && Tok(j).text != "final" &&
        Tok(j).text != "RDFREL_QUERY_SCOPED" && Tok(j).text != "alignas") {
      name = Tok(j).text;
    }
  }
  if (name.empty()) return;
  // Find the `{` (or give up at `;` — a declaration).
  for (size_t j = k + 1; j < t_.size(); ++j) {
    if (IsPunct(j, ";")) return;
    if (IsPunct(j, "{")) {
      class_stack_.push_back({name, depth_ + 1});
      return;
    }
  }
}

void Analyzer::HandleMethodQualifier(size_t k) {
  // `A::B(` outside any function body: B is a method of A being defined
  // out of line (constructors included). The last qualifier before the
  // function name wins: `ns::Class::Method(` -> Class.
  if (fn_active_ || paren_depth_ > 0) return;
  if (!(IsIdent(k) && IsPunct(k + 1, "::") && IsIdent(k + 2) &&
        IsPunct(k + 3, "("))) {
    return;
  }
  fn_candidate_ = true;
  fn_candidate_class_ = Tok(k).text;
}

void Analyzer::HandleLockDecl(size_t k) {
  // `MutexLock name(&mu);` / `ReaderLock` / `WriterLock`.
  const std::string& ty = Tok(k).text;
  if (ty != "MutexLock" && ty != "ReaderLock" && ty != "WriterLock") return;
  if (!(IsIdent(k + 1) && IsPunct(k + 2, "("))) return;
  locks_.push_back(
      {Tok(k + 1).text, NormalizedArg(k + 3), DeclDepth(), true});
}

void Analyzer::HandleLockToggle(size_t k) {
  // `name.Unlock()` / `name.Lock()` on a live relockable MutexLock.
  if (!(IsIdent(k) && IsPunct(k + 1, ".") &&
        (IsIdent(k + 2, "Unlock") || IsIdent(k + 2, "Lock")) &&
        IsPunct(k + 3, "("))) {
    return;
  }
  for (auto& l : locks_) {
    if (l.name == Tok(k).text) l.locked = IsIdent(k + 2, "Lock");
  }
}

void Analyzer::HandleBlockingCall(size_t k) {
  if (!RuleOn(kRuleBlockingUnderLock)) return;
  if (!IsIdent(k) || !IsPunct(k + 1, "(")) return;
  const std::string& name = Tok(k).text;
  if (name == "Wait" || name == "WaitFor") {
    HandleWaitCall(k);
    return;
  }
  if (BlockingCallNames().count(name) == 0) return;
  // Skip definitions/declarations: `Status Foo::Sync() {` or `... Sync();`
  // at class scope — a definition's close paren is followed by a body or
  // qualifiers, a call's never is.
  size_t after = AfterMatchingParen(k + 1);
  if (IsPunct(after, "{") || IsIdent(after, "const") ||
      IsIdent(after, "noexcept") || IsIdent(after, "override") ||
      IsIdent(after, "final") || IsIdent(after, "RDFREL_EXCLUDES") ||
      IsIdent(after, "RDFREL_REQUIRES")) {
    return;
  }
  for (const auto& l : locks_) {
    if (!l.locked) continue;
    Diag(kRuleBlockingUnderLock, Tok(k).line,
         "blocking call " + name + "() while holding lock '" + l.name +
             "' on " + l.mutex +
             "; release around the call (relockable MutexLock idiom, see "
             "persist/wal.cc FlusherLoop) or move the I/O out of the "
             "critical section");
    return;  // one diagnostic per call site is enough
  }
}

void Analyzer::HandleWaitCall(size_t k) {
  // `cv.Wait(mu)` / `cv.WaitFor(mu, t)`: waiting is legitimate only on the
  // mutex of a held lock, and only when no *other* mutex is held — waiting
  // while holding a second lock blocks everyone queued on it.
  if (!(IsPunct(k - 1, ".") || IsPunct(k - 1, "->"))) return;
  const std::string arg = NormalizedArg(k + 2);
  for (const auto& l : locks_) {
    if (!l.locked) continue;
    if (l.mutex == arg) continue;
    Diag(kRuleBlockingUnderLock, Tok(k).line,
         "CondVar::" + Tok(k).text + "(" + arg + ") while holding lock '" +
             l.name + "' on a different mutex (" + l.mutex +
             "); waiting parks the thread with that mutex still held");
    return;
  }
}

void Analyzer::HandleVoidCast(size_t k) {
  if (!RuleOn(kRuleStatusDiscipline)) return;
  // `(void)expr;` — flag call-expression drops and Status-variable drops.
  if (!(IsPunct(k, "(") && IsIdent(k + 1, "void") && IsPunct(k + 2, ")"))) {
    return;
  }
  size_t expr = k + 3;
  if (Tok(expr).kind == TokenKind::kPunct) return;  // `(void)` param list etc.
  size_t end = StatementEnd(expr);
  bool has_call = false;
  for (size_t j = expr; j < end; ++j) {
    if (IsPunct(j, "(")) {
      has_call = true;
      break;
    }
  }
  if (has_call) {
    Diag(kRuleStatusDiscipline, Tok(k).line,
         "(void)-cast call drops its result; if it returns Status/Result "
         "use rdfrel::IgnoreError(expr, \"reason\"), otherwise call it "
         "without the cast");
    return;
  }
  // Single identifier: flag only variables declared as Status/Result.
  if (IsIdent(expr) && end == expr + 1 &&
      IsLiveIn(status_vars_, Tok(expr).text)) {
    Diag(kRuleStatusDiscipline, Tok(k).line,
         "(void) discards Status variable '" + Tok(expr).text +
             "'; use rdfrel::IgnoreError(" + Tok(expr).text +
             ", \"reason\") so the swallowed error stays greppable");
  }
}

bool Analyzer::RhsIsArenaDerived(size_t begin, size_t end) const {
  for (size_t j = begin; j < end; ++j) {
    if (!IsIdent(j)) continue;
    const std::string& id = Tok(j).text;
    if (IsLiveIn(arena_tainted_, id)) return true;
    if (IsArenaIsh(id) && (IsPunct(j + 1, ".") || IsPunct(j + 1, "->")) &&
        IsIdent(j + 2, "Allocate")) {
      return true;
    }
    // ArenaAllocator<T>(&arena) constructions taint whatever they feed.
    if (id == "ArenaAllocator") return true;
  }
  return false;
}

bool Analyzer::RhsCapturesBatch(size_t begin, size_t end,
                                std::string* which_batch) const {
  // Copying a Row or an index *value* out of a batch is always safe; the
  // hazard is address-shaped: `&batch`, `&batch.RowAt(i)`, retaining a
  // RowBatch* variable, or copying the whole selection vector (indices
  // that only mean something against this batch's storage).
  for (size_t j = begin; j < end; ++j) {
    if (!IsIdent(j)) continue;
    const std::string& id = Tok(j).text;
    const ScopedName* var = nullptr;
    for (const auto& r : batch_vars_) {
      if (r.name == id) var = &r;
    }
    if (var == nullptr) continue;
    *which_batch = id;
    // `&batch` / `&batch.RowAt(i)` — taking an address into batch storage.
    if (IsPunct(j - 1, "&")) return true;
    // `member_ = out;` where out is RowBatch* — retaining the pointer.
    if (var->pointer && end == begin + 1) return true;
    // `member_ = batch.selection();` — wholesale selection copy.
    if ((IsPunct(j + 1, ".") || IsPunct(j + 1, "->")) &&
        IsIdent(j + 2, "selection")) {
      return true;
    }
  }
  return false;
}

void Analyzer::HandleDeclOrAssign(size_t k) {
  // Declarations first: they feed the taint/type maps used by assignments.
  if (IsIdent(k)) {
    const std::string& id = Tok(k).text;
    // `RowBatch [*&] name` — remember batch-typed locals and parameters.
    if (id == "RowBatch") {
      size_t j = k + 1;
      bool pointer = false;
      while (IsPunct(j, "*") || IsPunct(j, "&") || IsIdent(j, "const")) {
        if (IsPunct(j, "*")) pointer = true;
        ++j;
      }
      if (IsIdent(j) && !IsPunct(j + 1, "::") &&
          RuleOn(kRuleBorrowedBatch)) {
        batch_vars_.push_back({Tok(j).text, DeclDepth(), pointer});
      }
    }
    // `Status name` / `Result<T> name` — remember status-typed locals.
    if (id == "Status" || id == "Result") {
      size_t j = k + 1;
      if (IsPunct(j, "<")) {  // skip template argument list
        int angle = 0;
        for (; j < t_.size(); ++j) {
          if (IsPunct(j, "<")) ++angle;
          if (IsPunct(j, ">")) {
            --angle;
            if (angle == 0) {
              ++j;
              break;
            }
          }
        }
      }
      if (IsIdent(j) && !IsPunct(j + 1, "::") && !IsPunct(j + 1, "(") &&
          RuleOn(kRuleStatusDiscipline)) {
        status_vars_.push_back({Tok(j).text, DeclDepth()});
      }
    }
    // Arena-typed declarations (`ArenaRows rows{...}`, `QueryArena* a`)
    // taint the declared name even without `=`.
    if (IsArenaIsh(id) && id != "RDFREL_QUERY_SCOPED") {
      size_t j = k + 1;
      while (IsPunct(j, "*") || IsPunct(j, "&") || IsIdent(j, "const")) ++j;
      if (IsIdent(j) && !IsPunct(j + 1, "::") && !IsPunct(j + 1, ".") &&
          !IsPunct(j + 1, "->") &&
          (IsPunct(j + 1, "{") || IsPunct(j + 1, "=") || IsPunct(j + 1, ";") ||
           IsPunct(j + 1, "(")) &&
          RuleOn(kRuleArenaEscape)) {
        arena_tainted_.push_back({Tok(j).text, DeclDepth()});
      }
    }
  }

  // Assignment statements: `lhs = rhs ;` at paren level 0. `==`, `<=`, etc.
  // never match because the lexer emits one punct per char and we check the
  // neighbors.
  if (!IsPunct(k, "=") || paren_depth_ > 0) return;
  if (IsPunct(k - 1, "=") || IsPunct(k + 1, "=") || IsPunct(k - 1, "<") ||
      IsPunct(k - 1, ">") || IsPunct(k - 1, "!") || IsPunct(k - 1, "+") ||
      IsPunct(k - 1, "-") || IsPunct(k - 1, "*") || IsPunct(k - 1, "/") ||
      IsPunct(k - 1, "%") || IsPunct(k - 1, "&") || IsPunct(k - 1, "|") ||
      IsPunct(k - 1, "^")) {
    return;
  }

  const size_t rhs_begin = k + 1;
  const size_t rhs_end = StatementEnd(rhs_begin);

  // Classify the LHS.
  bool member_store = false;
  bool static_store = false;
  bool is_decl = false;
  std::string lhs_name;
  if (IsIdent(k - 1)) {
    lhs_name = Tok(k - 1).text;
    // Preceded by a type-ish token => declaration with initializer.
    if (IsIdent(k - 2) || IsPunct(k - 2, "*") || IsPunct(k - 2, "&") ||
        IsPunct(k - 2, ">")) {
      is_decl = true;
      // `static T name = ...` — scan the declaration head for `static`.
      for (size_t j = k; j-- > 0;) {
        if (IsPunct(j, ";") || IsPunct(j, "{") || IsPunct(j, "}")) break;
        if (IsIdent(j, "static")) {
          static_store = true;
          break;
        }
      }
    } else if (IsMemberName(lhs_name)) {
      member_store = IsPunct(k - 2, ";") || IsPunct(k - 2, "{") ||
                     IsPunct(k - 2, "}") || IsPunct(k - 2, ")") ||
                     k - 1 == 0;
    } else if (IsPunct(k - 2, "->") && IsIdent(k - 3, "this")) {
      member_store = true;
      lhs_name = Tok(k - 1).text;
    }
  }

  if (is_decl && !static_store) {
    // Declaration with an arena-derived initializer taints the new name.
    if (RuleOn(kRuleArenaEscape) && RhsIsArenaDerived(rhs_begin, rhs_end)) {
      arena_tainted_.push_back({lhs_name, DeclDepth(), false});
    }
    return;
  }
  if (!member_store && !static_store) return;

  if (RuleOn(kRuleArenaEscape) && RhsIsArenaDerived(rhs_begin, rhs_end)) {
    if (static_store) {
      Diag(kRuleArenaEscape, Tok(k).line,
           "arena-backed pointer stored into a static; the QueryArena dies "
           "with the query but the static outlives it");
    } else if (!EnclosingClassIsQueryScoped()) {
      Diag(kRuleArenaEscape, Tok(k).line,
           "arena-backed pointer stored into member '" + lhs_name +
               "' of " + (EnclosingClass().empty() ? std::string("a type")
                                                   : EnclosingClass()) +
               " which is not marked RDFREL_QUERY_SCOPED; the pointer "
               "dangles when the QueryArena drops at query end");
    }
  }

  std::string batch;
  if (RuleOn(kRuleBorrowedBatch) &&
      RhsCapturesBatch(rhs_begin, rhs_end, &batch)) {
    Diag(kRuleBorrowedBatch, Tok(k).line,
         "borrowed RowBatch state from '" + batch + "' stored into " +
             (static_store ? "a static" : "member '" + lhs_name + "'") +
             "; batch storage and selection are only valid until the "
             "producing operator's next NextBatch call");
  }
}

void Analyzer::HandleContainerInsert(size_t k) {
  // `member_.push_back(tainted)` / `this->member.emplace(..., tainted)` —
  // moving arena-backed or batch-borrowed state into a member container.
  if (!(IsIdent(k) && IsPunct(k + 1, ".") && IsIdent(k + 2) &&
        IsPunct(k + 3, "(") &&
        ContainerInsertNames().count(Tok(k + 2).text) > 0)) {
    return;
  }
  bool member = IsMemberName(Tok(k).text) ||
                (IsPunct(k - 1, "->") && IsIdent(k - 2, "this"));
  if (!member) return;
  const size_t args_begin = k + 4;
  const size_t args_end = AfterMatchingParen(k + 3);

  if (RuleOn(kRuleArenaEscape) && !EnclosingClassIsQueryScoped() &&
      RhsIsArenaDerived(args_begin, args_end)) {
    Diag(kRuleArenaEscape, Tok(k).line,
         "arena-backed value inserted into member container '" +
             Tok(k).text + "' of " +
             (EnclosingClass().empty() ? std::string("a type")
                                       : EnclosingClass()) +
             " which is not marked RDFREL_QUERY_SCOPED");
  }
  std::string batch;
  if (RuleOn(kRuleBorrowedBatch) &&
      RhsCapturesBatch(args_begin, args_end, &batch)) {
    Diag(kRuleBorrowedBatch, Tok(k).line,
         "borrowed RowBatch state from '" + batch +
             "' inserted into member container '" + Tok(k).text +
             "'; it is only valid until the next NextBatch call");
  }
}

void Analyzer::Run() {
  for (size_t k = 0; k < t_.size(); ++k) {
    const Token& tok = t_[k];
    if (tok.kind == TokenKind::kPunct) {
      if (tok.text == "{") {
        HandleOpenBrace();
        continue;
      }
      if (tok.text == "}") {
        HandleCloseBrace();
        continue;
      }
      if (tok.text == "(") {
        HandleVoidCast(k);
        ++paren_depth_;
        continue;
      }
      if (tok.text == ")") {
        if (paren_depth_ > 0) --paren_depth_;
        continue;
      }
      if (tok.text == ";") {
        fn_candidate_ = false;  // was a declaration, not a definition
        continue;
      }
      if (tok.text == "=") {
        HandleDeclOrAssign(k);
        continue;
      }
      continue;
    }
    if (tok.kind != TokenKind::kIdent) continue;

    if (tok.text == "class" || tok.text == "struct") {
      HandleClassDecl(k);
      continue;
    }
    HandleMethodQualifier(k);
    HandleLockDecl(k);
    HandleLockToggle(k);
    HandleBlockingCall(k);
    HandleDeclOrAssign(k);  // declarations without `=` (brace init, params)
    HandleContainerInsert(k);
  }
}

}  // namespace

std::vector<std::string> AllRules() {
  return {kRuleArenaEscape, kRuleBlockingUnderLock, kRuleBorrowedBatch,
          kRuleStatusDiscipline};
}

std::string FormatDiagnostic(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": error: [" + d.rule +
         "] " + d.message;
}

void CollectMarkers(const std::string& source, MarkerIndex* index) {
  LexedFile lexed = Lex(source);
  const auto& t = lexed.tokens;
  for (size_t k = 0; k + 2 < t.size(); ++k) {
    if (t[k].kind != TokenKind::kIdent ||
        (t[k].text != "class" && t[k].text != "struct")) {
      continue;
    }
    // `class RDFREL_QUERY_SCOPED Name ...` — the marker precedes the name.
    bool marked = false;
    std::string name;
    for (size_t j = k + 1; j < t.size() && j < k + 12; ++j) {
      if (t[j].kind == TokenKind::kPunct &&
          (t[j].text == "{" || t[j].text == ";" || t[j].text == ":")) {
        break;
      }
      if (t[j].kind != TokenKind::kIdent) continue;
      if (t[j].text == "RDFREL_QUERY_SCOPED") {
        marked = true;
      } else if (t[j].text != "final" && t[j].text != "alignas") {
        name = t[j].text;
      }
    }
    if (marked && !name.empty()) index->query_scoped_classes.insert(name);
  }
}

void AnalyzeFileLexical(const std::string& path, const std::string& source,
                        const MarkerIndex& markers,
                        const std::set<std::string>& rules,
                        std::vector<Diagnostic>* out) {
  LexedFile lexed = Lex(source);
  Analyzer(path, lexed, markers, rules, out).Run();
}

std::map<std::string, std::set<int>> SuppressionLines(
    const std::string& source) {
  std::map<std::string, std::set<int>> out;
  LexedFile lexed = Lex(source);
  std::set<int> comment_lines;
  for (const auto& c : lexed.comments) comment_lines.insert(c.line);
  for (const auto& c : lexed.comments) {
    const std::string& text = c.text;
    size_t pos = text.find("rdfrel-lint:");
    if (pos == std::string::npos) continue;
    size_t allow = text.find("allow(", pos);
    if (allow == std::string::npos) continue;
    size_t close = text.find(')', allow);
    if (close == std::string::npos) continue;
    std::string rule = text.substr(allow + 6, close - (allow + 6));
    // The reason after `):` is mandatory: an unexplained suppression is
    // itself a violation of the discipline.
    size_t colon = text.find(':', close);
    bool has_reason = false;
    if (colon != std::string::npos) {
      for (size_t i = colon + 1; i < text.size(); ++i) {
        if (!std::isspace(static_cast<unsigned char>(text[i]))) {
          has_reason = true;
          break;
        }
      }
    }
    if (!has_reason) continue;
    // The reason may continue over following comment lines; the suppression
    // rides the whole block and lands on the first code line after it.
    out[rule].insert(c.line);
    int last = c.line;
    while (comment_lines.count(last + 1) > 0) ++last;
    out[rule].insert(last);
  }
  return out;
}

size_t ApplySuppressions(const std::string& source, const std::string& path,
                         std::vector<Diagnostic>* diags) {
  std::map<std::string, std::set<int>> lines = SuppressionLines(source);
  if (lines.empty()) return 0;
  size_t before = diags->size();
  diags->erase(
      std::remove_if(diags->begin(), diags->end(),
                     [&](const Diagnostic& d) {
                       if (d.file != path) return false;
                       auto it = lines.find(d.rule);
                       if (it == lines.end()) return false;
                       return it->second.count(d.line) > 0 ||
                              it->second.count(d.line - 1) > 0;
                     }),
      diags->end());
  return before - diags->size();
}

}  // namespace rdfrel_lint
