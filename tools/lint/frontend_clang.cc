// Clang libTooling frontend for rdfrel-lint (see frontend_clang.h for the
// engine split). Compiled only when CMake finds ClangConfig.cmake; the CI
// lint job pins the LLVM version it builds against (.github/workflows).
//
// The AST pass owns the assignment-shaped rules, where semantic facts make
// the checks exact:
//   - arena-escape: "derives from QueryArena::Allocate" is a real dataflow
//     fact, and RDFREL_QUERY_SCOPED is a [[clang::annotate]] attribute on
//     the record, visible however the class was spelled;
//   - borrowed-batch: RowBatch-typed decls are found by type, not name;
//   - status-discipline: the cast's operand type is known, so only genuine
//     Status/Result drops fire.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/ArgumentsAdjusters.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/Path.h"

#include "frontend_clang.h"
#include "lint.h"

namespace rdfrel_lint {

namespace {

constexpr const char* kQueryScopedAnnotation = "rdfrel-query-scoped";

struct Context {
  const std::set<std::string>* rules;
  std::vector<Diagnostic>* out;
  std::string cwd;
};

std::string DisplayPath(const Context& ctx, llvm::StringRef file) {
  llvm::SmallString<256> abs(file);
  llvm::sys::path::remove_dots(abs, /*remove_dot_dot=*/true);
  std::string path = std::string(abs.str());
  if (!ctx.cwd.empty() && path.rfind(ctx.cwd + "/", 0) == 0) {
    return path.substr(ctx.cwd.size() + 1);
  }
  return path;
}

bool RecordIsQueryScoped(const clang::CXXRecordDecl* rd) {
  if (rd == nullptr) return false;
  for (const auto* attr : rd->specific_attrs<clang::AnnotateAttr>()) {
    if (attr->getAnnotation() == kQueryScopedAnnotation) return true;
  }
  return false;
}

llvm::StringRef RecordName(clang::QualType type) {
  const clang::CXXRecordDecl* rd =
      type.getNonReferenceType()->getAsCXXRecordDecl();
  return rd != nullptr ? rd->getName() : llvm::StringRef();
}

bool TypeMentionsArena(clang::QualType type) {
  std::string printed =
      type.getNonReferenceType().getCanonicalType().getAsString();
  return printed.find("QueryArena") != std::string::npos ||
         printed.find("ArenaAllocator") != std::string::npos;
}

/// Subtree scan: does \p e derive from a QueryArena (an Allocate call, a
/// tainted variable, or an arena-typed subexpression)?
class ArenaDerivedFinder
    : public clang::RecursiveASTVisitor<ArenaDerivedFinder> {
 public:
  explicit ArenaDerivedFinder(const std::set<const clang::VarDecl*>& tainted)
      : tainted_(tainted) {}

  bool found() const { return found_; }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* call) {
    const clang::CXXMethodDecl* method = call->getMethodDecl();
    if (method != nullptr && method->getName() == "Allocate" &&
        method->getParent() != nullptr &&
        method->getParent()->getName() == "QueryArena") {
      found_ = true;
    }
    return !found_;
  }

  bool VisitDeclRefExpr(clang::DeclRefExpr* ref) {
    const auto* var = llvm::dyn_cast<clang::VarDecl>(ref->getDecl());
    if (var != nullptr &&
        (tainted_.count(var) > 0 || TypeMentionsArena(var->getType()))) {
      found_ = true;
    }
    return !found_;
  }

 private:
  const std::set<const clang::VarDecl*>& tainted_;
  bool found_ = false;
};

/// Subtree scan: does \p e capture borrowed RowBatch storage?
class BatchCaptureFinder
    : public clang::RecursiveASTVisitor<BatchCaptureFinder> {
 public:
  bool found() const { return found_; }
  const std::string& batch_name() const { return batch_name_; }

  bool VisitDeclRefExpr(clang::DeclRefExpr* ref) {
    const auto* var = llvm::dyn_cast<clang::VarDecl>(ref->getDecl());
    if (var == nullptr) return true;
    if (RecordName(var->getType()) == "RowBatch") {
      found_ = true;
      batch_name_ = var->getNameAsString();
    }
    return !found_;
  }

 private:
  bool found_ = false;
  std::string batch_name_;
};

class Visitor : public clang::RecursiveASTVisitor<Visitor> {
 public:
  Visitor(Context* ctx, clang::ASTContext* ast) : ctx_(ctx), ast_(ast) {}

  bool shouldVisitTemplateInstantiations() const { return false; }

  bool RuleOn(const char* rule) const { return ctx_->rules->count(rule) > 0; }

  void Diag(const char* rule, clang::SourceLocation loc,
            std::string message) {
    const clang::SourceManager& sm = ast_->getSourceManager();
    clang::SourceLocation expansion = sm.getExpansionLoc(loc);
    std::string file = DisplayPath(*ctx_, sm.getFilename(expansion));
    // Only first-party code: anything resolved outside the working tree
    // (system headers, toolchain) is out of scope.
    if (file.empty() || file[0] == '/') return;
    ctx_->out->push_back({file,
                          static_cast<int>(sm.getExpansionLineNumber(loc)),
                          rule, std::move(message)});
  }

  // ------------------------------------------------------ status-discipline
  bool VisitCStyleCastExpr(clang::CStyleCastExpr* cast) {
    if (!RuleOn(kRuleStatusDiscipline)) return true;
    if (!cast->getTypeAsWritten()->isVoidType()) return true;
    clang::QualType sub =
        cast->getSubExpr()->IgnoreParenImpCasts()->getType();
    llvm::StringRef name = RecordName(sub);
    if (name == "Status" || name == "Result") {
      Diag(kRuleStatusDiscipline, cast->getBeginLoc(),
           "(void) discards a " + name.str() +
               "; use rdfrel::IgnoreError(expr, \"reason\") so the "
               "swallowed error stays greppable");
    }
    return true;
  }

  // -------------------------------------------------- taint: arena locals
  bool VisitVarDecl(clang::VarDecl* var) {
    if (!var->hasLocalStorage()) return true;
    if (TypeMentionsArena(var->getType())) {
      tainted_.insert(var);
      return true;
    }
    if (var->hasInit()) {
      ArenaDerivedFinder finder(tainted_);
      finder.TraverseStmt(var->getInit());
      if (finder.found()) tainted_.insert(var);
    }
    return true;
  }

  // ------------------------------------- stores: plain and operator= forms
  bool VisitBinaryOperator(clang::BinaryOperator* op) {
    if (op->getOpcode() != clang::BO_Assign) return true;
    CheckStore(op->getLHS(), op->getRHS(), op->getOperatorLoc());
    return true;
  }

  bool VisitCXXOperatorCallExpr(clang::CXXOperatorCallExpr* call) {
    if (call->getOperator() != clang::OO_Equal || call->getNumArgs() != 2) {
      return true;
    }
    CheckStore(call->getArg(0), call->getArg(1), call->getOperatorLoc());
    return true;
  }

  // --------------------------------------- member-container insert stores
  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* call) {
    static const std::set<std::string> kInserts = {
        "push_back", "emplace_back", "emplace", "insert", "push_front",
        "assign"};
    const clang::CXXMethodDecl* method = call->getMethodDecl();
    if (method == nullptr ||
        kInserts.count(method->getNameAsString()) == 0) {
      return true;
    }
    const auto* object = llvm::dyn_cast<clang::MemberExpr>(
        call->getImplicitObjectArgument()->IgnoreParenImpCasts());
    if (object == nullptr) return true;  // not a member container
    const auto* field =
        llvm::dyn_cast<clang::FieldDecl>(object->getMemberDecl());
    if (field == nullptr) return true;
    for (const clang::Expr* arg : call->arguments()) {
      CheckValueFlow(field, const_cast<clang::Expr*>(arg),
                     call->getExprLoc(),
                     "inserted into member container '" +
                         field->getNameAsString() + "'");
    }
    return true;
  }

 private:
  void CheckStore(clang::Expr* lhs, clang::Expr* rhs,
                  clang::SourceLocation loc) {
    lhs = lhs->IgnoreParenImpCasts();
    if (const auto* member = llvm::dyn_cast<clang::MemberExpr>(lhs)) {
      if (const auto* field =
              llvm::dyn_cast<clang::FieldDecl>(member->getMemberDecl())) {
        CheckValueFlow(field, rhs, loc,
                       "stored into member '" + field->getNameAsString() +
                           "'");
      }
      return;
    }
    if (const auto* ref = llvm::dyn_cast<clang::DeclRefExpr>(lhs)) {
      const auto* var = llvm::dyn_cast<clang::VarDecl>(ref->getDecl());
      if (var != nullptr && var->hasGlobalStorage()) {
        CheckValueFlow(nullptr, rhs, loc, "stored into a static");
      }
    }
  }

  /// Shared arena/batch flow check for a value reaching member or static
  /// storage. \p field null means static storage (never exempt).
  void CheckValueFlow(const clang::FieldDecl* field, clang::Expr* rhs,
                      clang::SourceLocation loc, const std::string& sink) {
    if (RuleOn(kRuleArenaEscape)) {
      ArenaDerivedFinder finder(tainted_);
      finder.TraverseStmt(rhs);
      if (finder.found()) {
        const clang::CXXRecordDecl* parent =
            field != nullptr
                ? llvm::dyn_cast<clang::CXXRecordDecl>(field->getParent())
                : nullptr;
        if (field == nullptr || !RecordIsQueryScoped(parent)) {
          Diag(kRuleArenaEscape, loc,
               "arena-backed value " + sink +
                   (field != nullptr
                        ? " of " + parent->getNameAsString() +
                              " which is not marked RDFREL_QUERY_SCOPED; "
                              "the storage dies with the QueryArena at "
                              "query end"
                        : "; the storage dies with the QueryArena at "
                          "query end"));
        }
      }
    }
    if (RuleOn(kRuleBorrowedBatch)) {
      // Copying a Row or index value out of a batch is safe; the hazard is
      // address-shaped. Flag: (a) taking an address into batch storage,
      // (b) retaining a RowBatch* into a pointer/reference sink, (c) a
      // wholesale selection() copy (indices only valid for this batch).
      class BatchHazardFinder
          : public clang::RecursiveASTVisitor<BatchHazardFinder> {
       public:
        bool found = false;
        std::string batch_name;

        bool VisitUnaryOperator(clang::UnaryOperator* op) {
          if (op->getOpcode() != clang::UO_AddrOf) return true;
          BatchCaptureFinder inner;
          inner.TraverseStmt(op->getSubExpr());
          if (inner.found()) {
            found = true;
            batch_name = inner.batch_name();
          }
          return !found;
        }
        bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* c) {
          const clang::CXXMethodDecl* m = c->getMethodDecl();
          if (m != nullptr && m->getName() == "selection" &&
              m->getParent() != nullptr &&
              m->getParent()->getName() == "RowBatch") {
            found = true;
            BatchCaptureFinder inner;
            inner.TraverseStmt(c->getImplicitObjectArgument());
            if (inner.found()) batch_name = inner.batch_name();
          }
          return !found;
        }
      } hazard;
      hazard.TraverseStmt(rhs);
      if (!hazard.found) {
        // (b): a bare RowBatch* flowing into a pointer/reference sink.
        clang::QualType sink_type =
            field != nullptr ? field->getType() : clang::QualType();
        bool pointerish =
            !sink_type.isNull() &&
            (sink_type->isPointerType() || sink_type->isReferenceType());
        if (field == nullptr || pointerish) {
          const auto* ref = llvm::dyn_cast<clang::DeclRefExpr>(
              rhs->IgnoreParenImpCasts());
          const auto* var =
              ref != nullptr
                  ? llvm::dyn_cast<clang::VarDecl>(ref->getDecl())
                  : nullptr;
          if (var != nullptr && var->getType()->isPointerType() &&
              RecordName(var->getType()->getPointeeType()) == "RowBatch") {
            hazard.found = true;
            hazard.batch_name = var->getNameAsString();
          }
        }
      }
      if (hazard.found) {
        Diag(kRuleBorrowedBatch, loc,
             "borrowed RowBatch state from '" + hazard.batch_name + "' " +
                 sink +
                 "; batch storage and selection are only valid until the "
                 "producing operator's next NextBatch call");
      }
    }
  }

  Context* ctx_;
  clang::ASTContext* ast_;
  std::set<const clang::VarDecl*> tainted_;
};

class Consumer : public clang::ASTConsumer {
 public:
  explicit Consumer(Context* ctx) : ctx_(ctx) {}
  void HandleTranslationUnit(clang::ASTContext& ast) override {
    Visitor visitor(ctx_, &ast);
    visitor.TraverseDecl(ast.getTranslationUnitDecl());
  }

 private:
  Context* ctx_;
};

class Action : public clang::ASTFrontendAction {
 public:
  explicit Action(Context* ctx) : ctx_(ctx) {}
  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance&, llvm::StringRef) override {
    return std::make_unique<Consumer>(ctx_);
  }

 private:
  Context* ctx_;
};

class Factory : public clang::tooling::FrontendActionFactory {
 public:
  explicit Factory(Context* ctx) : ctx_(ctx) {}
  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<Action>(ctx_);
  }

 private:
  Context* ctx_;
};

}  // namespace

bool ClangEngineAvailable() { return true; }

bool RunClangEngine(const std::vector<std::string>& files,
                    const std::string& build_path,
                    const std::set<std::string>& rules,
                    const MarkerIndex& /*markers: the AST reads the
                                          attribute directly*/,
                    std::vector<Diagnostic>* out, std::string* error) {
  std::unique_ptr<clang::tooling::CompilationDatabase> db;
  if (!build_path.empty()) {
    std::string load_error;
    db = clang::tooling::CompilationDatabase::loadFromDirectory(build_path,
                                                                load_error);
    if (db == nullptr) {
      *error = "cannot load compilation database from " + build_path +
               ": " + load_error;
      return false;
    }
  } else {
    db = std::make_unique<clang::tooling::FixedCompilationDatabase>(
        ".", std::vector<std::string>{"-std=c++20", "-Isrc"});
  }

  clang::tooling::ClangTool tool(*db, files);
  tool.appendArgumentsAdjuster(clang::tooling::getInsertArgumentAdjuster(
      "-Wno-everything", clang::tooling::ArgumentInsertPosition::END));

  Context ctx;
  ctx.rules = &rules;
  ctx.out = out;
  llvm::SmallString<256> cwd;
  if (!llvm::sys::fs::current_path(cwd)) ctx.cwd = std::string(cwd.str());

  Factory factory(&ctx);
  if (tool.run(&factory) != 0) {
    *error = "clang tooling reported errors (see output above)";
    return false;
  }
  return true;
}

}  // namespace rdfrel_lint
