#include "frontend_clang.h"

// Built when the Clang development libraries are absent: the libTooling
// engine reports itself unavailable and rdfrel-lint runs every rule on the
// lexical engine instead (scripts/lint.sh prints the notice).

namespace rdfrel_lint {

bool ClangEngineAvailable() { return false; }

bool RunClangEngine(const std::vector<std::string>&, const std::string&,
                    const std::set<std::string>&, const MarkerIndex&,
                    std::vector<Diagnostic>*, std::string* error) {
  *error =
      "rdfrel-lint was built without the Clang libTooling engine "
      "(LLVM/Clang development libraries were not found at configure time)";
  return false;
}

}  // namespace rdfrel_lint
