#ifndef RDFREL_TOOLS_LINT_LEXER_H_
#define RDFREL_TOOLS_LINT_LEXER_H_

/// \file lexer.h
/// A minimal C++ surface lexer for the lexical lint engine. It does not
/// preprocess: macros stay as identifier tokens (which is exactly what the
/// engine wants — RDFREL_QUERY_SCOPED is matched by name), #include lines
/// are skipped, comments and string/char literals are consumed without
/// producing tokens. Comment text is kept separately, keyed by line, for
/// suppression lookup.

#include <string>
#include <vector>

namespace rdfrel_lint {

enum class TokenKind {
  kIdent,   ///< identifiers and keywords (macros included)
  kNumber,  ///< numeric literal (value unused; kept for stream integrity)
  kString,  ///< string or char literal (text dropped)
  kPunct,   ///< one token per punctuator character: { } ( ) ; : , . etc.
};

struct Token {
  TokenKind kind;
  std::string text;  ///< punctuators may be multi-char: :: -> . etc.
  int line;          ///< 1-based
};

struct Comment {
  int line;          ///< line the comment starts on
  std::string text;  ///< without the // or /* */ markers
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes \p source. Never fails: unknown bytes are skipped. Multi-char
/// punctuators recognized: `::`, `->`. Everything else is one char per
/// token. Preprocessor directives are consumed to end of line (respecting
/// backslash continuations).
LexedFile Lex(const std::string& source);

}  // namespace rdfrel_lint

#endif  // RDFREL_TOOLS_LINT_LEXER_H_
