#ifndef RDFREL_TOOLS_LINT_LINT_H_
#define RDFREL_TOOLS_LINT_LINT_H_

/// \file lint.h
/// rdfrel-lint: project-invariant checks that the compiler cannot express
/// (DESIGN.md §15). Four rules, each a named, suppressible diagnostic:
///
///   arena-escape        a pointer or container backed by a QueryArena is
///                       stored into state that outlives the query (a member
///                       of a type not marked RDFREL_QUERY_SCOPED, or a
///                       static), so it dangles when the arena drops.
///   blocking-under-lock a blocking call (Env I/O, fsync, WritableFile::Sync,
///                       ThreadPool::Submit, CondVar::Wait on a foreign
///                       mutex) is made while a MutexLock/ReaderLock/
///                       WriterLock is held — unless the site releases around
///                       the call (the relockable idiom from persist/wal.cc).
///   borrowed-batch      a borrowed RowBatch, a pointer into its rows, or a
///                       copy of its selection vector is stored into state
///                       that survives the producing NextBatch call.
///   status-discipline   a Status/Result is swallowed with a bare `(void)`
///                       cast instead of rdfrel::IgnoreError(expr, "reason"),
///                       so silenced errors stay greppable.
///
/// Suppression: `// rdfrel-lint: allow(<rule-id>): <reason>` on the flagged
/// line or the line above. The reason is mandatory.
///
/// Two engines share this interface: the always-available lexical engine
/// (lexer.h + engine.cc, no dependencies beyond the standard library) and an
/// optional Clang libTooling frontend (frontend_clang.cc, compiled when LLVM
/// dev libraries are found) that re-implements the assignment-shaped rules
/// on the AST. Diagnostics from either engine are filtered through the same
/// suppression comments and printed in the same format.

#include <map>
#include <set>
#include <string>
#include <vector>

namespace rdfrel_lint {

/// Stable rule identifiers; these strings are the public contract (they
/// appear in diagnostics, suppression comments, and fixture expectations).
inline const char* const kRuleArenaEscape = "arena-escape";
inline const char* const kRuleBlockingUnderLock = "blocking-under-lock";
inline const char* const kRuleBorrowedBatch = "borrowed-batch";
inline const char* const kRuleStatusDiscipline = "status-discipline";

/// All rule ids in canonical order.
std::vector<std::string> AllRules();

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
};

/// Formats one diagnostic the way the driver prints it:
/// `<file>:<line>: error: [<rule>] <message>`.
std::string FormatDiagnostic(const Diagnostic& d);

/// Project facts shared by every file analysis: which class names carry the
/// RDFREL_QUERY_SCOPED marker. Collected by a pre-pass over every file in
/// scope (sources and headers), so a class annotated in a header exempts
/// member stores in any .cc.
struct MarkerIndex {
  std::set<std::string> query_scoped_classes;
};

/// Scans \p source (file content) for `class/struct RDFREL_QUERY_SCOPED X`
/// markers and merges them into \p index.
void CollectMarkers(const std::string& source, MarkerIndex* index);

/// Runs the lexical engine's \p rules over one file's content. Diagnostics
/// are appended unfiltered; the caller applies suppressions.
void AnalyzeFileLexical(const std::string& path, const std::string& source,
                        const MarkerIndex& markers,
                        const std::set<std::string>& rules,
                        std::vector<Diagnostic>* out);

/// Returns the set of lines of \p source carrying a well-formed suppression
/// comment for \p rule (`// rdfrel-lint: allow(<rule>): <reason>` with a
/// non-empty reason). A diagnostic at line L is suppressed when L or L-1 is
/// in the set for its rule.
std::map<std::string, std::set<int>> SuppressionLines(
    const std::string& source);

/// Drops diagnostics whose line (or the line above) carries a matching
/// suppression comment in \p source. Returns the number dropped.
size_t ApplySuppressions(const std::string& source,
                         const std::string& path,
                         std::vector<Diagnostic>* diags);

}  // namespace rdfrel_lint

#endif  // RDFREL_TOOLS_LINT_LINT_H_
