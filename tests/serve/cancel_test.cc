/// Deadline and cancellation semantics of the query surface: expired
/// deadlines surface as kDeadlineExceeded, cancel tokens as kCancelled
/// (winning over a deadline), both take effect at executor batch
/// boundaries mid-stream, and neither participates in plan-cache identity.

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/graph.h"
#include "store/rdf_store.h"
#include "store/row_sink.h"

namespace rdfrel::store {
namespace {

/// ~5 executor batches of results for one scan query.
constexpr int kBigRows = 5000;
constexpr const char* kScan = "SELECT ?s ?o WHERE { ?s <http://c/p> ?o }";

std::unique_ptr<RdfStore> BigStore() {
  rdf::Graph g;
  for (int i = 0; i < kBigRows; ++i) {
    g.Add({rdf::Term::Iri("http://c/s" + std::to_string(i)),
           rdf::Term::Iri("http://c/p"),
           rdf::Term::Literal("v" + std::to_string(i))});
  }
  auto store = RdfStore::Load(std::move(g));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(*store);
}

/// Counts streamed rows; optionally cancels (via return value or an
/// external token) once the first block has arrived.
class CountingSink final : public RowSink {
 public:
  Status Begin(const std::vector<std::string>&) override {
    return Status::OK();
  }
  Status OnRows(std::vector<Binding>&& rows) override {
    rows_seen += rows.size();
    ++blocks_seen;
    if (flip_token != nullptr) {
      flip_token->store(true, std::memory_order_relaxed);
    }
    if (cancel_after_first_block) {
      return Status::Cancelled("sink has seen enough");
    }
    return Status::OK();
  }
  Status End() override {
    ended = true;
    return Status::OK();
  }

  size_t rows_seen = 0;
  size_t blocks_seen = 0;
  bool ended = false;
  bool cancel_after_first_block = false;
  std::atomic<bool>* flip_token = nullptr;
};

TEST(ServeCancelTest, ExpiredDeadlineSurfacesAsDeadlineExceeded) {
  auto store = BigStore();
  QueryOptions opts;
  opts.deadline = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1);
  auto result = store->QueryWith(kScan, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

TEST(ServeCancelTest, PreSetCancelTokenSurfacesAsCancelled) {
  auto store = BigStore();
  std::atomic<bool> cancel{true};
  QueryOptions opts;
  opts.cancel = &cancel;
  auto result = store->QueryWith(kScan, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

TEST(ServeCancelTest, CancelWinsOverExpiredDeadline) {
  auto store = BigStore();
  std::atomic<bool> cancel{true};
  QueryOptions opts;
  opts.deadline = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1);
  opts.cancel = &cancel;
  auto result = store->QueryWith(kScan, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

TEST(ServeCancelTest, SinkErrorStopsStreamAtBatchBoundary) {
  auto store = BigStore();
  CountingSink sink;
  sink.cancel_after_first_block = true;
  Status st = store->QueryWith(kScan, QueryOptions{}, sink);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  // Exactly the first block was delivered — a partial result, well short
  // of the full scan — and End() never ran.
  EXPECT_EQ(sink.blocks_seen, 1u);
  EXPECT_GT(sink.rows_seen, 0u);
  EXPECT_LT(sink.rows_seen, static_cast<size_t>(kBigRows));
  EXPECT_FALSE(sink.ended);
}

TEST(ServeCancelTest, TokenFlippedMidStreamCancelsNextBatch) {
  auto store = BigStore();
  std::atomic<bool> cancel{false};
  CountingSink sink;
  sink.flip_token = &cancel;  // flips during the first OnRows
  QueryOptions opts;
  opts.cancel = &cancel;
  Status st = store->QueryWith(kScan, opts, sink);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  EXPECT_GT(sink.rows_seen, 0u);
  EXPECT_LT(sink.rows_seen, static_cast<size_t>(kBigRows));
  EXPECT_FALSE(sink.ended);
}

TEST(ServeCancelTest, UncancelledStreamDeliversEverything) {
  auto store = BigStore();
  CountingSink sink;
  Status st = store->QueryWith(kScan, QueryOptions{}, sink);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(sink.rows_seen, static_cast<size_t>(kBigRows));
  EXPECT_GE(sink.blocks_seen, 4u);  // multiple executor batches
  EXPECT_TRUE(sink.ended);
}

TEST(ServeCancelTest, ExecutionOnlyFieldsAreNotPlanIdentity) {
  QueryOptions a;
  QueryOptions b;
  std::atomic<bool> token{false};
  b.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  b.cancel = &token;
  EXPECT_TRUE(a == b) << "deadline/cancel must not affect plan identity";
  b.merging = !b.merging;
  EXPECT_FALSE(a == b);
}

TEST(ServeCancelTest, DifferentDeadlinesShareOneCachedPlan) {
  auto store = BigStore();
  QueryOptions first;
  first.WithTimeout(std::chrono::hours(1));
  ASSERT_TRUE(store->QueryWith(kScan, first).ok());
  uint64_t hits_before = store->plan_cache_stats().hits;

  QueryOptions second;
  second.WithTimeout(std::chrono::minutes(5));
  ASSERT_TRUE(store->QueryWith(kScan, second).ok());
  EXPECT_EQ(store->plan_cache_stats().hits, hits_before + 1)
      << "a different deadline must reuse the cached plan";
}

}  // namespace
}  // namespace rdfrel::store
