/// Differential tests of the streaming query surface:
///
///  1. On every workload's full query mix, the streamed result (collected
///     block-by-block through a RowSink) must equal the materialized
///     `QueryWith` result, and the streamed JSON/TSV serialization
///     (produced incrementally, one writer call per OnRows block) must be
///     byte-identical to serializing the materialized ResultSet in one go —
///     proving the wire bytes are independent of executor batch boundaries.
///  2. The micro mix additionally runs on all three backends, pinning the
///     streaming primitive across every QueryWith implementation.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchdata/dbpedia.h"
#include "benchdata/lubm.h"
#include "benchdata/micro.h"
#include "benchdata/prbench.h"
#include "benchdata/sp2bench.h"
#include "serve/result_writer.h"
#include "store/predicate_store_backend.h"
#include "store/rdf_store.h"
#include "store/triple_store_backend.h"

namespace rdfrel::serve {
namespace {

benchdata::Workload LoadWorkload(const std::string& name) {
  if (name == "micro") return benchdata::MakeMicro(400, 7);
  if (name == "lubm") return benchdata::MakeLubm(2, 7);
  if (name == "sp2bench") return benchdata::MakeSp2Bench(4, 7);
  if (name == "dbpedia") return benchdata::MakeDbpedia(400, 300, 7);
  return benchdata::MakePrbench(2, 7);
}

/// Collects rows like CollectingSink but additionally serializes each block
/// incrementally with a streaming writer — exactly what the HTTP sink does.
class SerializingSink final : public store::RowSink {
 public:
  explicit SerializingSink(const char* format)
      : writer_(MakeResultWriter(format)) {}

  Status Begin(const std::vector<std::string>& vars) override {
    result_.vars = vars;
    writer_->Begin(vars, &bytes_);
    return Status::OK();
  }
  Status OnRows(std::vector<store::Binding>&& rows) override {
    ++blocks_;
    writer_->AppendRows(rows, &bytes_);
    result_.rows.insert(result_.rows.end(),
                        std::make_move_iterator(rows.begin()),
                        std::make_move_iterator(rows.end()));
    return Status::OK();
  }
  Status End() override {
    writer_->End(&bytes_);
    return Status::OK();
  }

  const store::ResultSet& result() const { return result_; }
  const std::string& bytes() const { return bytes_; }
  size_t blocks() const { return blocks_; }

 private:
  std::unique_ptr<ResultWriter> writer_;
  store::ResultSet result_;
  std::string bytes_;
  size_t blocks_ = 0;
};

void ExpectStreamedMatchesMaterialized(store::SparqlStore* store,
                                       const benchdata::Workload& workload) {
  for (const auto& q : workload.queries) {
    auto materialized = store->QueryWith(q.sparql, {});
    ASSERT_TRUE(materialized.ok())
        << workload.name << "/" << q.id << ": "
        << materialized.status().ToString();

    for (const char* format : {"json", "tsv"}) {
      SerializingSink sink(format);
      Status st = store->QueryWith(q.sparql, {}, sink);
      ASSERT_TRUE(st.ok()) << workload.name << "/" << q.id << ": "
                           << st.ToString();
      EXPECT_EQ(sink.result().vars, materialized->vars)
          << workload.name << "/" << q.id;
      EXPECT_EQ(sink.result().rows, materialized->rows)
          << workload.name << "/" << q.id << " (" << format << ")";
      EXPECT_EQ(sink.bytes(), SerializeResultSet(*materialized, format))
          << workload.name << "/" << q.id << " (" << format << ")";
    }
  }
}

class ServeStreamDifferentialTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ServeStreamDifferentialTest, Db2RdfStreamEqualsMaterialized) {
  auto workload = LoadWorkload(GetParam());
  auto store = store::RdfStore::Load(std::move(workload.graph));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ExpectStreamedMatchesMaterialized(store->get(), workload);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ServeStreamDifferentialTest,
                         ::testing::Values("micro", "lubm", "sp2bench",
                                           "dbpedia", "prbench"),
                         [](const auto& test_info) {
                           return std::string(test_info.param);
                         });

TEST(ServeStreamBackendsTest, MicroStreamsOnAllBackends) {
  auto workload = LoadWorkload("micro");
  {
    auto g = workload.graph;
    auto s = store::RdfStore::Load(std::move(g));
    ASSERT_TRUE(s.ok());
    ExpectStreamedMatchesMaterialized(s->get(), workload);
  }
  {
    auto g = workload.graph;
    auto s = store::TripleStoreBackend::Load(std::move(g));
    ASSERT_TRUE(s.ok());
    ExpectStreamedMatchesMaterialized(s->get(), workload);
  }
  {
    auto g = workload.graph;
    auto s = store::PredicateStoreBackend::Load(std::move(g));
    ASSERT_TRUE(s.ok());
    ExpectStreamedMatchesMaterialized(s->get(), workload);
  }
}

TEST(ServeStreamBackendsTest, MultiBatchResultsArriveInBlocks) {
  // > 4 executor batches worth of rows, to prove streaming really chunks.
  rdf::Graph g;
  for (int i = 0; i < 5000; ++i) {
    g.Add({rdf::Term::Iri("http://b/s" + std::to_string(i)),
           rdf::Term::Iri("http://b/p"),
           rdf::Term::Literal("v" + std::to_string(i))});
  }
  auto store = store::RdfStore::Load(std::move(g));
  ASSERT_TRUE(store.ok());
  SerializingSink sink("json");
  Status st = (*store)->QueryWith(
      "SELECT ?s ?o WHERE { ?s <http://b/p> ?o }", {}, sink);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(sink.result().size(), 5000u);
  EXPECT_GE(sink.blocks(), 4u);  // vectorized batches are 1024 rows
}

}  // namespace
}  // namespace rdfrel::serve
