/// Unit tests for the HTTP message layer: the incremental request parser
/// (including the malformed-request negatives the server answers with
/// specific 4xx/5xx codes), URL/query decoding, the streaming result
/// writers' batch-boundary independence, and the latency histogram.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/term.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "serve/result_writer.h"

namespace rdfrel::serve {
namespace {

// --- Parser: well-formed requests ---

TEST(ServeHttpTest, ParsesSimpleGet) {
  HttpParser p;
  std::string req =
      "GET /sparql?query=SELECT%20*&format=json HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Accept: application/sparql-results+json\r\n"
      "\r\n";
  auto consumed = p.Feed(req);
  ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
  EXPECT_EQ(*consumed, req.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().path, "/sparql");
  EXPECT_EQ(p.request().QueryParam("query").value_or(""), "SELECT *");
  EXPECT_EQ(p.request().QueryParam("format").value_or(""), "json");
  EXPECT_EQ(p.request().Header("host").value_or(""), "localhost");
  EXPECT_TRUE(p.request().KeepAlive());
}

TEST(ServeHttpTest, ParsesByteAtATime) {
  HttpParser p;
  std::string req =
      "POST /sparql HTTP/1.1\r\nContent-Length: 11\r\n\r\nquery=hello";
  for (char c : req) {
    auto consumed = p.Feed(std::string_view(&c, 1));
    ASSERT_TRUE(consumed.ok());
    ASSERT_EQ(*consumed, 1u);
  }
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().method, "POST");
  EXPECT_EQ(p.request().body, "query=hello");
}

TEST(ServeHttpTest, LeavesPipelinedBytesUnconsumed) {
  HttpParser p;
  std::string two =
      "GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n";
  auto consumed = p.Feed(two);
  ASSERT_TRUE(consumed.ok());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().path, "/healthz");
  // The second request's bytes must be left for the next parse.
  EXPECT_LT(*consumed, two.size());
  p.Reset();
  auto consumed2 = p.Feed(std::string_view(two).substr(*consumed));
  ASSERT_TRUE(consumed2.ok());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().path, "/stats");
}

TEST(ServeHttpTest, KeepAliveRules) {
  auto parse = [](const std::string& req) {
    HttpParser p;
    auto c = p.Feed(req);
    EXPECT_TRUE(c.ok() && p.complete()) << req;
    return p.request().KeepAlive();
  };
  // 1.1 defaults to keep-alive; explicit close wins.
  EXPECT_TRUE(parse("GET / HTTP/1.1\r\n\r\n"));
  EXPECT_FALSE(parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
  // 1.0 defaults to close; explicit keep-alive wins.
  EXPECT_FALSE(parse("GET / HTTP/1.0\r\n\r\n"));
  EXPECT_TRUE(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
}

TEST(ServeHttpTest, ToleratesBareLfAndLeadingBlankLines) {
  HttpParser p;
  auto consumed = p.Feed("\r\n\r\nGET /x HTTP/1.1\nHost: h\n\n");
  ASSERT_TRUE(consumed.ok());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().path, "/x");
  EXPECT_EQ(p.request().Header("host").value_or(""), "h");
}

// --- Parser: malformed-request negatives (the codes the server sends) ---

int FeedExpectError(const std::string& req) {
  HttpParser p;
  auto consumed = p.Feed(req);
  EXPECT_FALSE(consumed.ok()) << "parsed unexpectedly: " << req;
  return p.http_error_code();
}

TEST(ServeHttpTest, RejectsMalformedRequestLine) {
  EXPECT_EQ(FeedExpectError("GET\r\n\r\n"), 400);
  EXPECT_EQ(FeedExpectError("GET /\r\n\r\n"), 400);          // no version
  EXPECT_EQ(FeedExpectError("G@T / HTTP/1.1\r\n\r\n"), 400);  // bad method
  EXPECT_EQ(FeedExpectError("GET no-slash HTTP/1.1\r\n\r\n"), 400);
}

TEST(ServeHttpTest, RejectsUnsupportedVersion) {
  EXPECT_EQ(FeedExpectError("GET / HTTP/2.0\r\n\r\n"), 505);
  EXPECT_EQ(FeedExpectError("GET / FTP/1.1\r\n\r\n"), 400);
}

TEST(ServeHttpTest, RejectsMalformedHeader) {
  EXPECT_EQ(FeedExpectError("GET / HTTP/1.1\r\nno colon here\r\n\r\n"), 400);
  EXPECT_EQ(FeedExpectError("GET / HTTP/1.1\r\n: empty-name\r\n\r\n"), 400);
  EXPECT_EQ(
      FeedExpectError("GET / HTTP/1.1\r\nBad Name: x\r\n\r\n"), 400);
}

TEST(ServeHttpTest, RejectsMalformedContentLength) {
  EXPECT_EQ(
      FeedExpectError("POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"),
      400);
  EXPECT_EQ(
      FeedExpectError("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),
      400);
}

TEST(ServeHttpTest, RejectsChunkedRequestsWith501) {
  EXPECT_EQ(FeedExpectError(
                "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            501);
}

TEST(ServeHttpTest, EnforcesSizeLimits) {
  HttpLimits tight;
  tight.max_request_line = 64;
  tight.max_header_bytes = 128;
  tight.max_body_bytes = 16;
  {
    HttpParser p(tight);
    std::string long_target(200, 'a');
    auto c = p.Feed("GET /" + long_target + " HTTP/1.1\r\n\r\n");
    EXPECT_FALSE(c.ok());
    EXPECT_EQ(p.http_error_code(), 414);
  }
  {
    HttpParser p(tight);
    std::string big_header(300, 'v');
    auto c = p.Feed("GET / HTTP/1.1\r\nX-Big: " + big_header + "\r\n\r\n");
    EXPECT_FALSE(c.ok());
    EXPECT_EQ(p.http_error_code(), 431);
  }
  {
    HttpParser p(tight);
    auto c = p.Feed("POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n");
    EXPECT_FALSE(c.ok());
    EXPECT_EQ(p.http_error_code(), 413);
  }
}

TEST(ServeHttpTest, ErrorsAreSticky) {
  HttpParser p;
  EXPECT_FALSE(p.Feed("BROKEN\r\n\r\n").ok());
  EXPECT_FALSE(p.Feed("GET / HTTP/1.1\r\n\r\n").ok());
  p.Reset();
  EXPECT_TRUE(p.Feed("GET / HTTP/1.1\r\n\r\n").ok());
  EXPECT_TRUE(p.complete());
}

// --- URL / query-string decoding ---

TEST(ServeHttpTest, UrlDecodeAndQueryString) {
  EXPECT_EQ(UrlDecode("a%20b%2Fc", false), "a b/c");
  EXPECT_EQ(UrlDecode("a+b", true), "a b");
  EXPECT_EQ(UrlDecode("a+b", false), "a+b");
  EXPECT_EQ(UrlDecode("bad%zzescape", true), "bad%zzescape");

  auto params = ParseQueryString("query=SELECT+%3Fs&timeout=100&flag");
  EXPECT_EQ(params.find("query")->second, "SELECT ?s");
  EXPECT_EQ(params.find("timeout")->second, "100");
  EXPECT_EQ(params.find("flag")->second, "");

  // Round-trip through encode.
  std::string nasty = "SELECT ?s WHERE { ?s <http://x/p> \"a b&c=d\" }";
  auto round = ParseQueryString("q=" + UrlEncode(nasty));
  EXPECT_EQ(round.find("q")->second, nasty);
}

TEST(ServeHttpTest, JsonEscapeControlsAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

// --- Result writers: output must not depend on batch boundaries ---

std::vector<store::Binding> MakeRows() {
  using rdf::Term;
  std::vector<store::Binding> rows;
  rows.push_back({Term::Iri("http://x/s1"), Term::Literal("v1")});
  rows.push_back({Term::Iri("http://x/s2"), std::nullopt});  // unbound
  rows.push_back(
      {Term::TypedLiteral("ch\"ars",
                          "http://www.w3.org/2001/XMLSchema#string"),
       Term::LangLiteral("fr-val", "fr")});
  return rows;
}

TEST(ServeHttpTest, WritersAreBatchBoundaryIndependent) {
  std::vector<std::string> vars = {"s", "o"};
  auto rows = MakeRows();
  for (const char* format : {"json", "tsv"}) {
    // Reference: everything in one AppendRows call.
    auto one = MakeResultWriter(format);
    std::string whole;
    one->Begin(vars, &whole);
    one->AppendRows(rows, &whole);
    one->End(&whole);

    // Candidate: one row per call, plus empty blocks sprinkled in.
    auto many = MakeResultWriter(format);
    std::string split;
    many->Begin(vars, &split);
    many->AppendRows({}, &split);
    for (const auto& row : rows) {
      many->AppendRows({row}, &split);
      many->AppendRows({}, &split);
    }
    many->End(&split);

    EXPECT_EQ(whole, split) << format;
  }
}

TEST(ServeHttpTest, JsonWriterShape) {
  store::ResultSet rs;
  rs.vars = {"s", "o"};
  rs.rows = MakeRows();
  std::string json = SerializeResultSet(rs, "json");
  EXPECT_NE(json.find("{\"head\":{\"vars\":[\"s\",\"o\"]}"),
            std::string::npos);
  EXPECT_NE(json.find("\"results\":{\"bindings\":["), std::string::npos);
  EXPECT_NE(json.find("{\"type\":\"uri\",\"value\":\"http://x/s1\"}"),
            std::string::npos);
  // Unbound variables are omitted from the binding object.
  EXPECT_NE(json.find("{\"s\":{\"type\":\"uri\",\"value\":\"http://x/s2\"}}"),
            std::string::npos);
  // Language tag and escaped quote in a literal.
  EXPECT_NE(json.find("\"xml:lang\":\"fr\""), std::string::npos);
  EXPECT_NE(json.find("ch\\\"ars"), std::string::npos);
}

TEST(ServeHttpTest, TsvWriterShape) {
  store::ResultSet rs;
  rs.vars = {"s", "o"};
  rs.rows = MakeRows();
  std::string tsv = SerializeResultSet(rs, "tsv");
  ASSERT_FALSE(tsv.empty());
  EXPECT_EQ(tsv.substr(0, tsv.find('\n')), "?s\t?o");
  // Unbound cell serializes as empty between tabs.
  EXPECT_NE(tsv.find("<http://x/s2>\t\n"), std::string::npos);
}

TEST(ServeHttpTest, UnknownFormatRejected) {
  EXPECT_EQ(MakeResultWriter("xml"), nullptr);
}

// --- Latency histogram ---

TEST(ServeHttpTest, HistogramQuantilesApproximate) {
  LatencyHistogram h;
  EXPECT_EQ(h.Quantile(0.5), 0);
  for (uint64_t us = 1; us <= 10'000; ++us) h.Record(us);
  EXPECT_EQ(h.count(), 10'000u);
  // The scheme guarantees <= ~19% relative error per bucket.
  EXPECT_NEAR(h.Quantile(0.50), 5'000, 5'000 * 0.25);
  EXPECT_NEAR(h.Quantile(0.99), 9'900, 9'900 * 0.25);
  EXPECT_NEAR(h.Mean(), 5'000.5, 1.0);
}

TEST(ServeHttpTest, HistogramOrdering) {
  LatencyHistogram h;
  for (int i = 0; i < 900; ++i) h.Record(100);
  for (int i = 0; i < 100; ++i) h.Record(50'000);
  EXPECT_LT(h.Quantile(0.5), 200);
  EXPECT_GT(h.Quantile(0.95), 10'000);
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.99));
}

}  // namespace
}  // namespace rdfrel::serve
