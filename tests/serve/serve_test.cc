/// End-to-end tests of the SPARQL HTTP endpoint over real localhost
/// sockets: protocol conformance (keep-alive, formats, error codes),
/// streamed-vs-materialized body equivalence, deadline-driven 504s, and
/// overload shedding under a saturated worker pool.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "benchdata/micro.h"
#include "rdf/graph.h"
#include "serve/client.h"
#include "serve/result_writer.h"
#include "serve/server.h"
#include "store/rdf_store.h"

namespace rdfrel::serve {
namespace {

constexpr const char* kSmallQuery =
    "PREFIX : <http://micro/> SELECT ?s WHERE { ?s :SV5 ?o }";
constexpr const char* kStarQuery =
    "PREFIX : <http://micro/> SELECT ?s WHERE { "
    "?s :SV1 ?a . ?s :SV2 ?b . ?s :SV3 ?c . ?s :SV4 ?d }";

/// Forwards everything to an inner store; decorators below perturb
/// QueryWith only.
class DelegatingStore : public store::SparqlStore {
 public:
  explicit DelegatingStore(store::SparqlStore* inner) : inner_(inner) {}

  using store::SparqlStore::QueryWith;
  Status QueryWith(std::string_view sparql, const store::QueryOptions& opts,
                   store::RowSink& sink) override {
    return inner_->QueryWith(sparql, opts, sink);
  }
  Result<std::string> TranslateWith(
      std::string_view sparql, const store::QueryOptions& opts) override {
    return inner_->TranslateWith(sparql, opts);
  }
  Result<Explanation> Explain(std::string_view sparql,
                              const store::QueryOptions& opts) override {
    return inner_->Explain(sparql, opts);
  }
  util::CacheStats plan_cache_stats() const override {
    return inner_->plan_cache_stats();
  }
  util::CacheStats page_cache_stats() const override {
    return inner_->page_cache_stats();
  }
  persist::PersistStats persist_stats() const override {
    return inner_->persist_stats();
  }
  std::string name() const override { return inner_->name(); }
  const rdf::Dictionary& dictionary() const override {
    return inner_->dictionary();
  }

 protected:
  store::SparqlStore* inner_;
};

/// Burns wall-clock before delegating, so a short ?timeout= deadline is
/// already expired when the executor makes its first batch-boundary check —
/// a deterministic 504.
class SlowStore final : public DelegatingStore {
 public:
  using DelegatingStore::DelegatingStore;
  using store::SparqlStore::QueryWith;
  Status QueryWith(std::string_view sparql, const store::QueryOptions& opts,
                   store::RowSink& sink) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return DelegatingStore::QueryWith(sparql, opts, sink);
  }
};

/// Parks every query on a latch, so the test can saturate the worker pool
/// deterministically.
class BlockingStore final : public DelegatingStore {
 public:
  using DelegatingStore::DelegatingStore;
  using store::SparqlStore::QueryWith;
  Status QueryWith(std::string_view sparql, const store::QueryOptions& opts,
                   store::RowSink& sink) override {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return released_; });
    lock.unlock();
    return DelegatingStore::QueryWith(sparql, opts, sink);
  }

  void WaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_ >= n; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool released_ = false;
};

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto workload = benchdata::MakeMicro(400, /*seed=*/7);
    auto st = store::RdfStore::Load(std::move(workload.graph));
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    micro_store_ = std::move(*st).release();

    // A single wide scan whose JSON body far exceeds the 32 KiB streaming
    // threshold, to force the chunked path.
    rdf::Graph big;
    for (int i = 0; i < 4000; ++i) {
      big.Add({rdf::Term::Iri("http://big/subject-number-" +
                              std::to_string(i)),
               rdf::Term::Iri("http://big/p"),
               rdf::Term::Literal("object-value-" + std::to_string(i))});
    }
    auto bt = store::RdfStore::Load(std::move(big));
    ASSERT_TRUE(bt.ok()) << bt.status().ToString();
    big_store_ = std::move(*bt).release();
  }
  static void TearDownTestSuite() {
    delete micro_store_;
    micro_store_ = nullptr;
    delete big_store_;
    big_store_ = nullptr;
  }

  /// Starts a server over \p store and returns a connected client.
  std::unique_ptr<SparqlServer> StartServer(store::SparqlStore* store,
                                            ServerOptions opts = {}) {
    auto server = std::make_unique<SparqlServer>(store, std::move(opts));
    Status st = server->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return server;
  }
  HttpClient ClientFor(const SparqlServer& server) {
    HttpClient c("127.0.0.1", server.port());
    c.set_timeout_ms(10'000);
    return c;
  }

  static store::RdfStore* micro_store_;
  static store::RdfStore* big_store_;
};

store::RdfStore* ServeTest::micro_store_ = nullptr;
store::RdfStore* ServeTest::big_store_ = nullptr;

TEST_F(ServeTest, GetQueryMatchesMaterializedJson) {
  auto server = StartServer(micro_store_);
  auto client = ClientFor(*server);
  auto resp = client.Get("/sparql?query=" + UrlEncode(kStarQuery));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->headers["content-type"], "application/sparql-results+json");

  auto rs = micro_store_->Query(kStarQuery);
  ASSERT_TRUE(rs.ok());
  EXPECT_GT(rs->size(), 0u);
  EXPECT_EQ(resp->body, SerializeResultSet(*rs, "json"));
}

TEST_F(ServeTest, FormatParamAndAcceptHeaderPickTsv) {
  auto server = StartServer(micro_store_);
  auto client = ClientFor(*server);
  std::string target = "/sparql?query=" + UrlEncode(kSmallQuery);

  auto rs = micro_store_->Query(kSmallQuery);
  ASSERT_TRUE(rs.ok());
  std::string want = SerializeResultSet(*rs, "tsv");

  auto by_param = client.Get(target + "&format=tsv");
  ASSERT_TRUE(by_param.ok()) << by_param.status().ToString();
  EXPECT_EQ(by_param->status, 200);
  EXPECT_EQ(by_param->headers["content-type"], "text/tab-separated-values");
  EXPECT_EQ(by_param->body, want);

  auto by_accept = client.Roundtrip(
      "GET " + target + " HTTP/1.1\r\nHost: t\r\n"
      "Accept: text/tab-separated-values\r\n\r\n");
  ASSERT_TRUE(by_accept.ok()) << by_accept.status().ToString();
  EXPECT_EQ(by_accept->body, want);
}

TEST_F(ServeTest, PostFormAndRawSparqlBodies) {
  auto server = StartServer(micro_store_);
  auto client = ClientFor(*server);
  auto rs = micro_store_->Query(kSmallQuery);
  ASSERT_TRUE(rs.ok());
  std::string want = SerializeResultSet(*rs, "json");

  auto form = client.Post("/sparql", "application/x-www-form-urlencoded",
                          "query=" + UrlEncode(kSmallQuery));
  ASSERT_TRUE(form.ok()) << form.status().ToString();
  EXPECT_EQ(form->status, 200);
  EXPECT_EQ(form->body, want);

  auto raw = client.Post("/sparql", "application/sparql-query", kSmallQuery);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(raw->status, 200);
  EXPECT_EQ(raw->body, want);

  auto bad = client.Post("/sparql", "text/weird", "body");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 415);
}

TEST_F(ServeTest, KeepAliveServesManyRequestsOnOneConnection) {
  auto server = StartServer(micro_store_);
  auto client = ClientFor(*server);
  for (int i = 0; i < 5; ++i) {
    auto resp = client.Get("/sparql?query=" + UrlEncode(kSmallQuery));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->status, 200);
    EXPECT_EQ(resp->headers["connection"], "keep-alive");
  }
  EXPECT_EQ(
      server->metrics().connections_accepted.load(std::memory_order_relaxed),
      1u);
  EXPECT_EQ(server->metrics().sparql.requests.load(std::memory_order_relaxed),
            5u);
}

TEST_F(ServeTest, PipelinedRequestsAnswerInOrder) {
  auto server = StartServer(micro_store_);
  auto client = ClientFor(*server);
  std::string one = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
  // Both requests in one write; Roundtrip("") reads the second response
  // without sending anything further.
  auto first = client.Roundtrip(one + one);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status, 200);
  auto second = client.Roundtrip("");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->status, 200);
  EXPECT_EQ(second->body, "ok\n");
}

TEST_F(ServeTest, ErrorCodes) {
  auto server = StartServer(micro_store_);
  auto client = ClientFor(*server);

  auto not_found = client.Get("/nope");
  ASSERT_TRUE(not_found.ok());
  EXPECT_EQ(not_found->status, 404);

  auto bad_method = client.Roundtrip(
      "DELETE /sparql HTTP/1.1\r\nHost: t\r\n\r\n");
  ASSERT_TRUE(bad_method.ok());
  EXPECT_EQ(bad_method->status, 405);
  EXPECT_EQ(bad_method->headers["allow"], "GET, POST");

  auto missing = client.Get("/sparql");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 400);

  auto unparsable = client.Get("/sparql?query=" + UrlEncode("NOT SPARQL ("));
  ASSERT_TRUE(unparsable.ok());
  EXPECT_EQ(unparsable->status, 400);

  auto bad_format = client.Get(
      "/sparql?query=" + UrlEncode(kSmallQuery) + "&format=xml");
  ASSERT_TRUE(bad_format.ok());
  EXPECT_EQ(bad_format->status, 400);

  auto bad_timeout = client.Get(
      "/sparql?query=" + UrlEncode(kSmallQuery) + "&timeout=soon");
  ASSERT_TRUE(bad_timeout.ok());
  EXPECT_EQ(bad_timeout->status, 400);

  // 4xx answers keep the connection usable.
  auto after = client.Get("/healthz");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->status, 200);
  EXPECT_EQ(
      server->metrics().connections_accepted.load(std::memory_order_relaxed),
      1u);
}

TEST_F(ServeTest, MalformedRequestGets400AndClose) {
  auto server = StartServer(micro_store_);
  auto client = ClientFor(*server);
  auto resp = client.Roundtrip("THIS IS NOT HTTP\r\n\r\n");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 400);
  EXPECT_EQ(resp->headers["connection"], "close");

  auto chunked = client.Roundtrip(
      "POST /sparql HTTP/1.1\r\nHost: t\r\n"
      "Transfer-Encoding: chunked\r\n\r\n");
  ASSERT_TRUE(chunked.ok());
  EXPECT_EQ(chunked->status, 501);
  EXPECT_GE(
      server->metrics().requests_bad.load(std::memory_order_relaxed), 2u);
}

TEST_F(ServeTest, LargeResultStreamsChunkedAndMatchesMaterialized) {
  auto server = StartServer(big_store_);
  auto client = ClientFor(*server);
  const std::string query =
      "SELECT ?s ?o WHERE { ?s <http://big/p> ?o }";
  auto resp = client.Get("/sparql?query=" + UrlEncode(query));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  // Big bodies must take the chunked streaming path.
  EXPECT_EQ(resp->headers.count("transfer-encoding"), 1u);
  EXPECT_EQ(resp->headers["transfer-encoding"], "chunked");

  auto rs = big_store_->Query(query);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->size(), 4000u);
  EXPECT_EQ(resp->body, SerializeResultSet(*rs, "json"));

  // Small results on the same server use Content-Length framing instead.
  auto small = client.Get(
      "/sparql?query=" +
      UrlEncode("SELECT ?o WHERE { <http://big/subject-number-1> "
                "<http://big/p> ?o }"));
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->status, 200);
  EXPECT_EQ(small->headers.count("transfer-encoding"), 0u);
  EXPECT_EQ(small->headers.count("content-length"), 1u);
}

TEST_F(ServeTest, HealthzAndStats) {
  auto server = StartServer(micro_store_);
  auto client = ClientFor(*server);

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  auto warm = client.Get("/sparql?query=" + UrlEncode(kSmallQuery));
  ASSERT_TRUE(warm.ok());

  auto stats = client.Get("/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, 200);
  EXPECT_EQ(stats->headers["content-type"], "application/json");
  for (const char* key :
       {"\"plan_cache\"", "\"page_cache\"", "\"persist\"", "\"server\"",
        "\"endpoints\"", "\"sparql\"", "\"p99_us\"", "\"uptime_s\"",
        "\"connections_shed\"", "\"executor\"", "\"pool\"", "\"parallel\"",
        "\"queries\"", "\"morsels\"", "\"arena_bytes_peak\""}) {
    EXPECT_NE(stats->body.find(key), std::string::npos) << key;
  }
  // The earlier query is visible in the endpoint counters.
  EXPECT_NE(stats->body.find("\"requests\":1"), std::string::npos)
      << stats->body;
}

TEST_F(ServeTest, ThreadsParamValidatedAndAccepted) {
  auto server = StartServer(micro_store_);
  auto client = ClientFor(*server);

  // A valid per-request parallelism degree executes normally (results are
  // identical to serial by the exchange's determinism contract).
  auto serial = client.Get("/sparql?query=" + UrlEncode(kSmallQuery));
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->status, 200);
  auto par = client.Get("/sparql?query=" + UrlEncode(kSmallQuery) +
                        "&threads=4");
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par->status, 200);
  EXPECT_EQ(par->body, serial->body);

  // Out-of-range or malformed degrees are 400s, not silent clamps.
  for (const char* bad : {"0", "-1", "9999", "abc"}) {
    auto resp = client.Get("/sparql?query=" + UrlEncode(kSmallQuery) +
                           "&threads=" + bad);
    ASSERT_TRUE(resp.ok()) << bad;
    EXPECT_EQ(resp->status, 400) << bad;
  }
}

TEST_F(ServeTest, ExpiredDeadlineAnswers504) {
  SlowStore slow(micro_store_);
  auto server = StartServer(&slow);
  auto client = ClientFor(*server);
  auto resp = client.Get("/sparql?query=" + UrlEncode(kStarQuery) +
                         "&timeout=1");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 504);
  EXPECT_EQ(
      server->metrics().deadline_exceeded.load(std::memory_order_relaxed),
      1u);

  // Without the tight deadline the same query succeeds.
  auto fine = client.Get("/sparql?query=" + UrlEncode(kStarQuery));
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(fine->status, 200);
}

TEST_F(ServeTest, OverloadShedsWith503) {
  BlockingStore blocking(micro_store_);
  ServerOptions opts;
  opts.workers = 1;
  opts.max_pending = 1;
  auto server = StartServer(&blocking, opts);
  std::string target = "/sparql?query=" + UrlEncode(kSmallQuery);

  // First connection occupies the only worker (parked inside the store).
  HttpClient c1 = ClientFor(*server);
  std::thread t1([&] {
    auto resp = c1.Get(target);
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->status, 200);
  });
  blocking.WaitEntered(1);

  // Second connection fills the single pending slot.
  HttpClient c2 = ClientFor(*server);
  ASSERT_TRUE(c2.Connect().ok());
  while (server->metrics().connections_accepted.load(
             std::memory_order_relaxed) < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Third connection finds the queue full and is shed at admission.
  HttpClient c3 = ClientFor(*server);
  auto shed = c3.Get(target);
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status, 503);
  EXPECT_EQ(shed->headers["connection"], "close");
  EXPECT_EQ(
      server->metrics().connections_shed.load(std::memory_order_relaxed),
      1u);

  // Releasing the latch drains the backlog: both queued clients succeed.
  blocking.Release();
  t1.join();
  auto queued = c2.Get(target);
  ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  EXPECT_EQ(queued->status, 200);
}

TEST_F(ServeTest, GracefulStopUnderLoad) {
  auto server = StartServer(big_store_);
  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&] {
      HttpClient c("127.0.0.1", server->port());
      c.set_timeout_ms(2'000);
      while (!done.load(std::memory_order_relaxed)) {
        auto resp = c.Get(
            "/sparql?query=" +
            UrlEncode("SELECT ?s ?o WHERE { ?s <http://big/p> ?o }"));
        // Until shutdown: success. During shutdown: 503 or a dropped
        // connection. All are acceptable; crashes/hangs are not.
        if (!resp.ok()) break;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server->Stop();  // must join cleanly with queries in flight
  done.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  SUCCEED();
}

}  // namespace
}  // namespace rdfrel::serve
