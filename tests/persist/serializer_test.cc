/// Serializer round-trips: the dictionary (the ISSUE's focus: empty store,
/// non-ASCII literals, >64KiB literals, id stability), statistics and the
/// triple-batch WAL payloads.

#include <gtest/gtest.h>

#include <string>

#include "persist/coding.h"
#include "persist/serializer.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace rdfrel::persist {
namespace {

using rdf::Term;

TEST(PersistTestSerializer, EmptyDictionary) {
  rdf::Dictionary dict;
  auto out = DecodeDictionary(EncodeDictionary(dict));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 0u);
}

TEST(PersistTestSerializer, DictionaryIdStability) {
  rdf::Dictionary dict;
  std::vector<Term> terms = {
      Term::Iri("http://x/a"),
      Term::Literal("plain"),
      Term::LangLiteral("bonjour", "fr"),
      Term::TypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"),
      Term::BlankNode("b0"),
  };
  std::vector<uint64_t> ids;
  for (const auto& t : terms) ids.push_back(dict.Encode(t));

  auto out = DecodeDictionary(EncodeDictionary(dict));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), dict.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    // Same id resolves to the same term, and re-encoding is a no-op.
    EXPECT_EQ(out->Decode(ids[i]).value(), terms[i]);
    EXPECT_EQ(out->Lookup(terms[i]), ids[i]);
  }
  // New encodes continue the dense sequence.
  EXPECT_EQ(out->Encode(Term::Iri("http://x/new")), dict.size() + 1);
}

TEST(PersistTestSerializer, NonAsciiLiterals) {
  rdf::Dictionary dict;
  std::vector<Term> terms = {
      Term::Literal("größe éèê"),
      Term::Literal("日本語のテキスト"),
      Term::LangLiteral("Ĝis la revido", "eo"),
      Term::Literal(std::string("embedded\0nul", 12)),
      Term::Literal("emoji \xF0\x9F\x92\xBE"),
  };
  for (const auto& t : terms) dict.Encode(t);
  auto out = DecodeDictionary(EncodeDictionary(dict));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (const auto& t : terms) {
    EXPECT_EQ(out->Lookup(t), dict.Lookup(t)) << t.lexical();
  }
}

TEST(PersistTestSerializer, HugeLiteral) {
  rdf::Dictionary dict;
  std::string big(100 * 1024, 'x');  // > 64 KiB
  for (size_t i = 0; i < big.size(); i += 97) {
    big[i] = static_cast<char>('a' + (i % 26));
  }
  uint64_t id = dict.Encode(Term::Literal(big));
  auto out = DecodeDictionary(EncodeDictionary(dict));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto t = out->Decode(id);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lexical(), big);
}

TEST(PersistTestSerializer, TruncatedDictionaryIsDataLoss) {
  rdf::Dictionary dict;
  dict.Encode(Term::Iri("http://x/a"));
  dict.Encode(Term::Literal("b"));
  std::string bytes = EncodeDictionary(dict);
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto out = DecodeDictionary(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(out.ok()) << "truncation to " << len << " undetected";
  }
}

TEST(PersistTestSerializer, TripleBatchRoundTrip) {
  std::vector<rdf::Triple> batch = {
      {Term::Iri("http://x/s"), Term::Iri("http://x/p"),
       Term::Literal("o")},
      {Term::BlankNode("b1"), Term::Iri("http://x/q"),
       Term::LangLiteral("v", "en")},
  };
  auto out = DecodeTripleBatch(EncodeTripleBatch(batch));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ((*out)[i].subject, batch[i].subject);
    EXPECT_EQ((*out)[i].predicate, batch[i].predicate);
    EXPECT_EQ((*out)[i].object, batch[i].object);
  }
  EXPECT_TRUE(DecodeTripleBatch(EncodeTripleBatch(batch) + "junk")
                  .status()
                  .IsDataLoss());
}

TEST(PersistTestSerializer, StatisticsRoundTrip) {
  rdf::Graph g;
  g.Add({Term::Iri("http://x/a"), Term::Iri("http://x/p"),
         Term::Literal("1")});
  g.Add({Term::Iri("http://x/a"), Term::Iri("http://x/p"),
         Term::Literal("2")});
  g.Add({Term::Iri("http://x/b"), Term::Iri("http://x/q"),
         Term::Literal("1")});
  opt::Statistics stats = opt::Statistics::FromGraph(g, 10);
  auto out = DecodeStatistics(EncodeStatistics(stats));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->total_triples(), stats.total_triples());
  EXPECT_EQ(out->distinct_subjects(), stats.distinct_subjects());
  EXPECT_EQ(out->distinct_objects(), stats.distinct_objects());
  EXPECT_EQ(out->avg_triples_per_subject(), stats.avg_triples_per_subject());
  EXPECT_EQ(out->predicate_count_map(), stats.predicate_count_map());
  EXPECT_EQ(out->top_subject_counts(), stats.top_subject_counts());
  EXPECT_EQ(out->top_object_counts(), stats.top_object_counts());
}

}  // namespace
}  // namespace rdfrel::persist
