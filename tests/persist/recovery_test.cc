/// Crash-recovery tests: clean reopen, kill-at-any-point WAL truncation
/// (every byte offset, differential against a reference store), end-to-end
/// fault injection through FaultInjectionEnv, bit-flip corruption, snapshot
/// fallback, the OpenStore dispatcher and the durability stats surface.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "persist/env.h"
#include "persist/fail_fs.h"
#include "persist/manager.h"
#include "store/open.h"
#include "store/predicate_store_backend.h"
#include "store/rdf_store.h"
#include "store/triple_store_backend.h"

namespace rdfrel::store {
namespace {

using persist::FaultInjectionEnv;
using persist::FaultSpec;
using persist::MemEnv;
using persist::PersistenceManager;
using persist::WalSync;
using rdf::Term;

Term Iri(const std::string& s) { return Term::Iri("http://x/" + s); }

rdf::Graph BaseGraph() {
  rdf::Graph g;
  g.Add({Iri("ibm"), Iri("industry"), Term::Literal("software")});
  g.Add({Iri("ibm"), Iri("hq"), Term::Literal("armonk")});
  g.Add({Iri("sun"), Iri("industry"), Term::Literal("hardware")});
  return g;
}

/// The incremental workload the kill-at-any-point test replays: one WAL
/// record per call.
std::vector<rdf::Triple> WorkloadTriples() {
  std::vector<rdf::Triple> out;
  for (int i = 0; i < 8; ++i) {
    out.push_back({Iri("c" + std::to_string(i)), Iri("industry"),
                   Term::Literal("sector" + std::to_string(i % 3))});
  }
  return out;
}

PersistOptions SyncEveryRecord(persist::Env* env,
                               bool verify_on_recovery = true) {
  PersistOptions o;
  o.env = env;
  o.wal.sync = WalSync::kEveryRecord;
  o.verify_on_recovery = verify_on_recovery;
  return o;
}

using Rows = std::vector<std::vector<std::optional<Term>>>;

/// All rows of `SELECT ?s ?p ?o`, sorted, for differential comparison.
Rows AllTriples(SparqlStore& store) {
  auto r = store.Query("SELECT ?s ?p ?o WHERE { ?s ?p ?o }");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return {};
  auto rows = r->rows;
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(PersistTestRecovery, CleanCloseAndReopen) {
  MemEnv env;
  auto store = RdfStore::Load(BaseGraph()).value();
  ASSERT_TRUE(store->EnablePersistence("db", SyncEveryRecord(&env)).ok());
  EXPECT_TRUE(store->persistent());
  for (const auto& t : WorkloadTriples()) {
    ASSERT_TRUE(store->Insert(t).ok());
  }
  ASSERT_TRUE(store->Delete({Iri("ibm"), Iri("hq"),
                             Term::Literal("armonk")}).ok());
  auto before = AllTriples(*store);
  ASSERT_TRUE(store->Close().ok());

  auto reopened = RdfStore::Open("db", SyncEveryRecord(&env));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(AllTriples(**reopened), before);
  // The WAL was replayed, not lost.
  auto stats = (*reopened)->persist_stats();
  EXPECT_EQ(stats.replayed_records, 9u);  // 8 inserts + 1 delete
  EXPECT_EQ(stats.torn_tail_bytes, 0u);
  // Writes keep working after recovery.
  ASSERT_TRUE((*reopened)->Insert({Iri("post"), Iri("hq"),
                                   Term::Literal("zurich")}).ok());
  EXPECT_EQ(AllTriples(**reopened).size(), before.size() + 1);
}

TEST(PersistTestRecovery, CheckpointTruncatesWalAndReopens) {
  MemEnv env;
  auto store = RdfStore::Load(BaseGraph()).value();
  ASSERT_TRUE(store->EnablePersistence("db", SyncEveryRecord(&env)).ok());
  for (const auto& t : WorkloadTriples()) {
    ASSERT_TRUE(store->Insert(t).ok());
  }
  ASSERT_TRUE(store->Checkpoint().ok());
  auto stats = store->persist_stats();
  EXPECT_EQ(stats.snapshots_written, 2u);  // initial + checkpoint
  EXPECT_GT(stats.last_checkpoint_lsn, 0u);
  // Generation 2 exists, generation 1 is retained as fallback.
  EXPECT_TRUE(env.FileExists(PersistenceManager::SnapshotPath("db", 2)));
  EXPECT_TRUE(env.FileExists(PersistenceManager::SnapshotPath("db", 1)));
  auto before = AllTriples(*store);
  ASSERT_TRUE(store->Close().ok());

  auto reopened = RdfStore::Open("db", SyncEveryRecord(&env));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(AllTriples(**reopened), before);
  // Everything came from the checkpoint snapshot; the WAL was empty.
  EXPECT_EQ((*reopened)->persist_stats().replayed_records, 0u);
}

/// The tentpole acceptance test: for EVERY byte offset of the WAL, crash
/// the store at that offset (bytes >= offset never reach disk) and assert
/// that reopening recovers exactly the committed prefix of the workload.
TEST(PersistTestRecovery, KillAtEveryWalOffset) {
  // One clean instrumented run: capture the disk image right after
  // EnablePersistence and each record's end offset in the WAL.
  MemEnv env;
  const std::string wal_path = PersistenceManager::WalPath("db", 1);
  auto store = RdfStore::Load(BaseGraph()).value();
  ASSERT_TRUE(store->EnablePersistence("db", SyncEveryRecord(&env)).ok());
  auto base_disk = env.CopyFiles();
  const uint64_t header_end = env.FileSize(wal_path).value();

  const std::vector<rdf::Triple> workload = WorkloadTriples();
  std::vector<uint64_t> record_end;  // WAL size after each commit
  std::vector<Rows> expected;        // reference rows per committed prefix
  expected.push_back(AllTriples(*store));
  for (const auto& t : workload) {
    ASSERT_TRUE(store->Insert(t).ok());
    record_end.push_back(env.FileSize(wal_path).value());
    expected.push_back(AllTriples(*store));
  }
  ASSERT_TRUE(store->Close().ok());
  const std::string full_wal = env.ReadFile(wal_path).value();
  ASSERT_EQ(record_end.back(), full_wal.size());
  store.reset();

  // Crash at offset == truncate the WAL there: the kTruncateAfter fault
  // swallows every byte at logical offset >= the crash point (the
  // end-to-end equivalence is asserted in FaultInjectionEndToEnd below).
  size_t full_differentials = 0;
  for (uint64_t off = 0; off <= full_wal.size(); ++off) {
    env.RestoreFiles(base_disk);
    env.SetFile(wal_path, full_wal.substr(0, off));

    // Committed prefix: every record that fully landed before the cut.
    size_t committed = 0;
    while (committed < record_end.size() && record_end[committed] <= off) {
      ++committed;
    }
    const bool boundary =
        off == header_end ||
        std::find(record_end.begin(), record_end.end(), off) !=
            record_end.end();

    // Run the expensive verified probe only at record boundaries; every
    // offset still checks the recovered triple count.
    auto reopened =
        RdfStore::Open("db", SyncEveryRecord(&env, /*verify=*/boundary));
    if (off < header_end) {
      // The WAL header itself is torn. Recovery must still succeed from
      // the snapshot (the file is untrusted in its entirety).
      ASSERT_TRUE(reopened.ok())
          << "offset " << off << ": " << reopened.status().ToString();
      EXPECT_EQ(AllTriples(**reopened), expected[0]) << "offset " << off;
      continue;
    }
    ASSERT_TRUE(reopened.ok())
        << "offset " << off << ": " << reopened.status().ToString();
    auto stats = (*reopened)->persist_stats();
    EXPECT_EQ(stats.replayed_records, committed) << "offset " << off;
    if (boundary) {
      EXPECT_EQ(stats.torn_tail_bytes, 0u) << "offset " << off;
    } else {
      EXPECT_EQ(stats.torn_tail_bytes,
                off - (committed == 0 ? header_end
                                      : record_end[committed - 1]))
          << "offset " << off;
    }
    // Differential vs the reference prefix at boundaries and just around
    // them; cheap count check everywhere else.
    if (boundary || off % 37 == 0) {
      EXPECT_EQ(AllTriples(**reopened), expected[committed])
          << "offset " << off;
      ++full_differentials;
    } else {
      auto r = (*reopened)->Query("SELECT ?s ?p ?o WHERE { ?s ?p ?o }");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r->size(), expected[committed].size()) << "offset " << off;
    }
  }
  EXPECT_GT(full_differentials, workload.size());
}

/// Drives the same crash through the real FaultInjectionEnv during the
/// workload (not post-hoc truncation) at every record boundary and its
/// neighbors, asserting byte-identical disk state and identical recovery.
TEST(PersistTestRecovery, FaultInjectionEndToEnd) {
  // Clean run to learn the record boundaries.
  std::vector<uint64_t> record_end;
  const std::string wal_path = PersistenceManager::WalPath("db", 1);
  {
    MemEnv env;
    auto store = RdfStore::Load(BaseGraph()).value();
    ASSERT_TRUE(store->EnablePersistence("db", SyncEveryRecord(&env)).ok());
    for (const auto& t : WorkloadTriples()) {
      ASSERT_TRUE(store->Insert(t).ok());
      record_end.push_back(env.FileSize(wal_path).value());
    }
    ASSERT_TRUE(store->Close().ok());
  }

  std::vector<uint64_t> offsets;
  for (uint64_t end : record_end) {
    offsets.push_back(end - 1);
    offsets.push_back(end);
    offsets.push_back(end + 1);
  }
  const std::vector<rdf::Triple> workload = WorkloadTriples();
  for (uint64_t off : offsets) {
    MemEnv mem;
    FaultInjectionEnv fenv(&mem);
    auto store = RdfStore::Load(BaseGraph()).value();
    ASSERT_TRUE(store->EnablePersistence("db", SyncEveryRecord(&fenv)).ok());
    FaultSpec spec;
    spec.mode = FaultSpec::Mode::kTruncateAfter;
    spec.path_substr = "wal-";
    spec.offset = off;
    fenv.set_fault(spec);
    size_t applied = 0;
    for (const auto& t : workload) {
      // The writer believes every append succeeded (a crash is silent).
      ASSERT_TRUE(store->Insert(t).ok());
      ++applied;
    }
    ASSERT_EQ(applied, workload.size());
    store.reset();  // the crash: in-memory state is gone

    size_t committed = 0;
    while (committed < record_end.size() && record_end[committed] <= off) {
      ++committed;
    }
    auto reopened = RdfStore::Open("db", SyncEveryRecord(&mem));
    ASSERT_TRUE(reopened.ok())
        << "offset " << off << ": " << reopened.status().ToString();
    EXPECT_EQ((*reopened)->persist_stats().replayed_records, committed)
        << "offset " << off;

    // Reference store: base graph + the committed prefix, built in memory.
    auto ref = RdfStore::Load(BaseGraph()).value();
    for (size_t i = 0; i < committed; ++i) {
      ASSERT_TRUE(ref->Insert(workload[i]).ok());
    }
    EXPECT_EQ(AllTriples(**reopened), AllTriples(*ref)) << "offset " << off;
  }
}

TEST(PersistTestRecovery, BitFlipInWalTruncatesAtCorruption) {
  MemEnv env;
  const std::string wal_path = PersistenceManager::WalPath("db", 1);
  auto store = RdfStore::Load(BaseGraph()).value();
  ASSERT_TRUE(store->EnablePersistence("db", SyncEveryRecord(&env)).ok());
  std::vector<uint64_t> record_end;
  for (const auto& t : WorkloadTriples()) {
    ASSERT_TRUE(store->Insert(t).ok());
    record_end.push_back(env.FileSize(wal_path).value());
  }
  ASSERT_TRUE(store->Close().ok());
  store.reset();
  auto disk = env.CopyFiles();
  const std::string full_wal = env.ReadFile(wal_path).value();

  // Flip one bit inside a sample of offsets across the record area.
  for (uint64_t off = record_end[0] - 3; off < full_wal.size();
       off += 41) {
    env.RestoreFiles(disk);
    std::string bad = full_wal;
    bad[off] ^= 0x10;
    env.SetFile(wal_path, bad);
    auto reopened = RdfStore::Open("db", SyncEveryRecord(&env));
    ASSERT_TRUE(reopened.ok())
        << "flip at " << off << ": " << reopened.status().ToString();
    // Recovery keeps exactly the records before the corrupted one.
    size_t committed = 0;
    while (committed < record_end.size() && record_end[committed] <= off) {
      ++committed;
    }
    EXPECT_EQ((*reopened)->persist_stats().replayed_records, committed)
        << "flip at " << off;
  }
}

TEST(PersistTestRecovery, CorruptSnapshotFallsBackToPreviousGeneration) {
  MemEnv env;
  auto store = RdfStore::Load(BaseGraph()).value();
  ASSERT_TRUE(store->EnablePersistence("db", SyncEveryRecord(&env)).ok());
  for (const auto& t : WorkloadTriples()) {
    ASSERT_TRUE(store->Insert(t).ok());
  }
  ASSERT_TRUE(store->Checkpoint().ok());
  auto before = AllTriples(*store);
  ASSERT_TRUE(store->Close().ok());
  store.reset();

  // Corrupt the newest snapshot: recovery must fall back to generation 1
  // and rebuild the same state from its WAL.
  const std::string snap2 = PersistenceManager::SnapshotPath("db", 2);
  std::string bytes = env.ReadFile(snap2).value();
  bytes[bytes.size() / 2] ^= 0x01;
  env.SetFile(snap2, bytes);

  auto reopened = RdfStore::Open("db", SyncEveryRecord(&env));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(AllTriples(**reopened), before);
  EXPECT_EQ((*reopened)->persist_stats().replayed_records,
            WorkloadTriples().size());
  ASSERT_TRUE((*reopened)->Close().ok());
  reopened->reset();

  // Both generations corrupt: a clear kDataLoss error, not a crash.
  MemEnv env2;
  auto store2 = RdfStore::Load(BaseGraph()).value();
  ASSERT_TRUE(store2->EnablePersistence("db", SyncEveryRecord(&env2)).ok());
  ASSERT_TRUE(store2->Checkpoint().ok());
  ASSERT_TRUE(store2->Close().ok());
  for (uint64_t gen : {1u, 2u}) {
    const std::string p = PersistenceManager::SnapshotPath("db", gen);
    std::string b = env2.ReadFile(p).value();
    b[b.size() / 2] ^= 0x01;
    env2.SetFile(p, b);
  }
  auto failed = RdfStore::Open("db", SyncEveryRecord(&env2));
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsDataLoss()) << failed.status().ToString();
}

TEST(PersistTestRecovery, GroupCommitConcurrentInsertsAreDurable) {
  MemEnv mem;
  FaultInjectionEnv fenv(&mem);
  PersistOptions opts;
  opts.env = &fenv;
  opts.wal.sync = WalSync::kGroupCommit;
  opts.wal.group_commit_interval_ms = 1;
  auto store = RdfStore::Load(BaseGraph()).value();
  ASSERT_TRUE(store->EnablePersistence("db", opts).ok());
  const uint64_t base_syncs = fenv.sync_count();

  constexpr int kThreads = 4, kPerThread = 10;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rdf::Triple triple{Iri("t" + std::to_string(t)),
                           Iri("n" + std::to_string(i)),
                           Term::Literal("v")};
        ASSERT_TRUE(store->Insert(triple).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  auto stats = store->persist_stats();
  EXPECT_EQ(stats.wal_records, kThreads * kPerThread);
  EXPECT_GT(stats.wal_bytes, 0u);
  EXPECT_GT(stats.group_commit_batches, 0u);
  EXPECT_GE(stats.avg_group_commit_batch, 1.0);
  // Group commit shares fsyncs across committers, so the sync count can
  // never exceed one per record; strict amortization (< one per record)
  // depends on two inserts landing in the same flush window, which thread
  // scheduling cannot guarantee, so only the upper bound is asserted.
  EXPECT_LE(fenv.sync_count() - base_syncs,
            static_cast<uint64_t>(kThreads * kPerThread));
  auto before = AllTriples(*store);
  ASSERT_TRUE(store->Close().ok());
  store.reset();

  auto reopened = RdfStore::Open("db", SyncEveryRecord(&mem));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(AllTriples(**reopened), before);
}

TEST(PersistTestRecovery, TripleBackendSnapshotReopen) {
  MemEnv env;
  auto store = TripleStoreBackend::Load(BaseGraph()).value();
  PersistOptions opts = SyncEveryRecord(&env);
  ASSERT_TRUE(store->EnablePersistence("ts", opts).ok());
  auto before = AllTriples(*store);
  ASSERT_TRUE(store->Close().ok());
  auto reopened = TripleStoreBackend::Open("ts", opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(AllTriples(**reopened), before);
}

TEST(PersistTestRecovery, PredicateBackendSnapshotReopen) {
  MemEnv env;
  auto store = PredicateStoreBackend::Load(BaseGraph()).value();
  PersistOptions opts = SyncEveryRecord(&env);
  ASSERT_TRUE(store->EnablePersistence("ps", opts).ok());
  auto before = AllTriples(*store);
  ASSERT_TRUE(store->Close().ok());
  auto reopened = PredicateStoreBackend::Open("ps", opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(AllTriples(**reopened), before);
  EXPECT_EQ((*reopened)->num_predicate_tables(),
            store->num_predicate_tables());
}

TEST(PersistTestRecovery, OpenStoreDispatchesOnBackendKind) {
  MemEnv env;
  PersistOptions opts = SyncEveryRecord(&env);
  {
    auto a = RdfStore::Load(BaseGraph()).value();
    ASSERT_TRUE(a->EnablePersistence("d1", opts).ok());
    ASSERT_TRUE(a->Close().ok());
    auto b = TripleStoreBackend::Load(BaseGraph()).value();
    ASSERT_TRUE(b->EnablePersistence("d2", opts).ok());
    ASSERT_TRUE(b->Close().ok());
    auto c = PredicateStoreBackend::Load(BaseGraph()).value();
    ASSERT_TRUE(c->EnablePersistence("d3", opts).ok());
    ASSERT_TRUE(c->Close().ok());
  }
  auto s1 = OpenStore("d1", opts);
  ASSERT_TRUE(s1.ok()) << s1.status().ToString();
  EXPECT_EQ((*s1)->name(), "DB2RDF");
  auto s2 = OpenStore("d2", opts);
  ASSERT_TRUE(s2.ok()) << s2.status().ToString();
  EXPECT_EQ((*s2)->name(), "Triple-store");
  auto s3 = OpenStore("d3", opts);
  ASSERT_TRUE(s3.ok()) << s3.status().ToString();
  EXPECT_EQ((*s3)->name(), "Predicate-oriented");
  // Query through the backend-agnostic handle.
  EXPECT_EQ(AllTriples(**s1), AllTriples(**s2));
  // A kind mismatch is an explicit error.
  auto wrong = TripleStoreBackend::Open("d1", opts);
  EXPECT_FALSE(wrong.ok());
}

TEST(PersistTestRecovery, PageCacheStatsExposed) {
  auto store = RdfStore::Load(BaseGraph()).value();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        store->Query("SELECT ?s WHERE { ?s <http://x/industry> ?o }").ok());
  }
  auto stats = store->page_cache_stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  // A write invalidates decoded pages: evictions surface in the counters.
  ASSERT_TRUE(
      store->Insert({Iri("n"), Iri("industry"), Term::Literal("x")}).ok());
  ASSERT_TRUE(
      store->Query("SELECT ?s WHERE { ?s <http://x/industry> ?o }").ok());
  auto after = store->page_cache_stats();
  EXPECT_GE(after.misses, stats.misses);
}

TEST(PersistTestRecovery, UnpersistedStoreDurabilitySurface) {
  auto store = RdfStore::Load(BaseGraph()).value();
  EXPECT_FALSE(store->persistent());
  EXPECT_TRUE(store->Checkpoint().IsUnsupported());
  EXPECT_TRUE(store->Flush().ok());
  EXPECT_TRUE(store->Close().ok());
  EXPECT_EQ(store->persist_stats().wal_records, 0u);
}

}  // namespace
}  // namespace rdfrel::store
