/// Unit tests for the persistence building blocks: CRC32C, the binary
/// coding helpers, the snapshot format, the WAL (framing, LSN continuity,
/// torn tails, group commit) and the fault-injection env.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "persist/coding.h"
#include "persist/crc32c.h"
#include "persist/env.h"
#include "persist/fail_fs.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace rdfrel::persist {
namespace {

TEST(PersistTestCrc, KnownValuesAndMasking) {
  // CRC32C("123456789") is the classic check value.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  uint32_t c = Crc32c("some payload");
  EXPECT_NE(MaskCrc(c), c);
  EXPECT_EQ(UnmaskCrc(MaskCrc(c)), c);
}

TEST(PersistTestCrc, Incremental) {
  EXPECT_EQ(Crc32c("6789", Crc32c("12345")), Crc32c("123456789"));
}

TEST(PersistTestCoding, RoundTrip) {
  std::string buf;
  PutU8(&buf, 0xAB);
  PutU32(&buf, 0xDEADBEEF);
  PutU64(&buf, 0x0123456789ABCDEFull);
  PutI64(&buf, -42);
  PutDouble(&buf, 2.5);
  PutString(&buf, "hello");
  PutString(&buf, "");

  ByteReader r(buf);
  EXPECT_EQ(r.ReadU8().value(), 0xAB);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.ReadI64().value(), -42);
  EXPECT_EQ(r.ReadDouble().value(), 2.5);
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_EQ(r.ReadString().value(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(PersistTestCoding, TruncationIsDataLoss) {
  std::string buf;
  PutString(&buf, "hello");
  ByteReader r(buf.substr(0, buf.size() - 1));
  EXPECT_TRUE(r.ReadString().status().IsDataLoss());
  ByteReader r2(buf.substr(0, 2));
  EXPECT_TRUE(r2.ReadString().status().IsDataLoss());
  ByteReader r3("");
  EXPECT_TRUE(r3.ReadU64().status().IsDataLoss());
}

TEST(PersistTestSnapshot, RoundTrip) {
  SnapshotSections in;
  in[1] = "meta-bytes";
  in[2] = std::string("\x00\x01\x02", 3);
  in[7] = "";
  std::string file = EncodeSnapshot(in);
  auto out = DecodeSnapshot(file);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, in);
}

TEST(PersistTestSnapshot, EveryCorruptedByteIsDetected) {
  SnapshotSections in;
  in[1] = "meta";
  in[2] = "payload-payload-payload";
  std::string file = EncodeSnapshot(in);
  // Flip one bit at every offset: decode must fail (or, for bits inside
  // unused padding — there is none in this format — still match).
  for (size_t i = 0; i < file.size(); ++i) {
    std::string bad = file;
    bad[i] ^= 1;
    auto out = DecodeSnapshot(bad);
    EXPECT_FALSE(out.ok()) << "flip at offset " << i << " undetected";
    if (!out.ok()) {
      EXPECT_TRUE(out.status().IsDataLoss()) << out.status().ToString();
    }
  }
  // Truncation at every length.
  for (size_t len = 0; len < file.size(); ++len) {
    auto out = DecodeSnapshot(std::string_view(file).substr(0, len));
    EXPECT_FALSE(out.ok()) << "truncation to " << len << " undetected";
  }
}

TEST(PersistTestSnapshot, FileRoundTripThroughEnv) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing("d").ok());
  SnapshotSections in;
  in[4] = "catalog";
  ASSERT_TRUE(WriteSnapshotFile(&env, "d/snapshot-1.snap", in).ok());
  // The tmp file must not linger.
  auto names = env.ListDir("d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
  auto out = ReadSnapshotFile(&env, "d/snapshot-1.snap");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, in);
}

TEST(PersistTestWal, AppendAndReplay) {
  MemEnv env;
  WalOptions opts;
  opts.sync = WalSync::kEveryRecord;
  auto w = WalWriter::Create(&env, "wal-1.log", 10, opts);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ((*w)->Append(1, "first").value(), 10u);
  EXPECT_EQ((*w)->Append(2, "second").value(), 11u);
  EXPECT_EQ((*w)->Append(1, "").value(), 12u);
  ASSERT_TRUE((*w)->Close().ok());

  auto replay = ReadWalFile(&env, "wal-1.log", 10);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->torn);
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[0].lsn, 10u);
  EXPECT_EQ(replay->records[0].type, 1);
  EXPECT_EQ(replay->records[0].payload, "first");
  EXPECT_EQ(replay->records[2].lsn, 12u);
  EXPECT_EQ(replay->valid_bytes, replay->file_bytes);
}

TEST(PersistTestWal, TornTailAtEveryTruncationPoint) {
  MemEnv env;
  WalOptions opts;
  opts.sync = WalSync::kEveryRecord;
  auto w = WalWriter::Create(&env, "wal-1.log", 1, opts).value();
  const uint64_t header_end = env.FileSize("wal-1.log").value();
  std::vector<uint64_t> clean_sizes;  // file size after each append
  ASSERT_TRUE(w->Append(1, "alpha").ok());
  clean_sizes.push_back(env.FileSize("wal-1.log").value());
  ASSERT_TRUE(w->Append(1, "beta").ok());
  clean_sizes.push_back(env.FileSize("wal-1.log").value());
  ASSERT_TRUE(w->Append(1, "gamma").ok());
  ASSERT_TRUE(w->Close().ok());
  const std::string full = env.ReadFile("wal-1.log").value();

  for (uint64_t len = 0; len <= full.size(); ++len) {
    env.SetFile("wal-1.log", full.substr(0, len));
    auto replay = ReadWalFile(&env, "wal-1.log", 1);
    if (len < header_end) {
      // The header itself may be cut: that is an error, not a torn tail.
      if (!replay.ok()) continue;
    }
    ASSERT_TRUE(replay.ok()) << "len=" << len;
    // The number of recovered records equals the number of fully
    // contained appends.
    size_t want = 0;
    while (want < clean_sizes.size() && clean_sizes[want] <= len) ++want;
    if (len == full.size()) want = 3;
    EXPECT_EQ(replay->records.size(), want) << "len=" << len;
    // A cut exactly at a record boundary is indistinguishable from a
    // clean shorter log, so only mid-record cuts report a torn tail.
    const bool at_boundary =
        len == full.size() || len == header_end ||
        std::find(clean_sizes.begin(), clean_sizes.end(), len) !=
            clean_sizes.end();
    EXPECT_EQ(replay->torn, !at_boundary) << "len=" << len;
    // Trust must end exactly at the last clean boundary.
    if (replay->torn) {
      uint64_t boundary =
          want == 0 ? replay->valid_bytes : clean_sizes[want - 1];
      EXPECT_EQ(replay->valid_bytes, boundary) << "len=" << len;
    }
  }
}

TEST(PersistTestWal, CorruptMiddleRecordEndsTrustBeforeIt) {
  MemEnv env;
  WalOptions opts;
  opts.sync = WalSync::kEveryRecord;
  auto w = WalWriter::Create(&env, "wal-1.log", 1, opts).value();
  ASSERT_TRUE(w->Append(1, "alpha").ok());
  uint64_t first_end = env.FileSize("wal-1.log").value();
  ASSERT_TRUE(w->Append(1, "beta").ok());
  ASSERT_TRUE(w->Close().ok());
  std::string bytes = env.ReadFile("wal-1.log").value();
  bytes[first_end + 9] ^= 0x40;  // inside the second record
  env.SetFile("wal-1.log", bytes);

  auto replay = ReadWalFile(&env, "wal-1.log", 1);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->torn);
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].payload, "alpha");
  EXPECT_EQ(replay->valid_bytes, first_end);
}

TEST(PersistTestWal, LsnGapStopsReplay) {
  // A reader expecting LSN 5 must not accept a file starting at 7.
  MemEnv env;
  WalOptions opts;
  opts.sync = WalSync::kEveryRecord;
  auto w = WalWriter::Create(&env, "wal-1.log", 7, opts).value();
  ASSERT_TRUE(w->Append(1, "x").ok());
  ASSERT_TRUE(w->Close().ok());
  auto replay = ReadWalFile(&env, "wal-1.log", 5);
  ASSERT_FALSE(replay.ok());
  EXPECT_TRUE(replay.status().IsDataLoss()) << replay.status().ToString();
}

TEST(PersistTestWal, GroupCommitDurabilityAndStats) {
  MemEnv mem;
  FaultInjectionEnv env(&mem);  // counters only, no fault
  WalOptions opts;
  opts.sync = WalSync::kGroupCommit;
  opts.group_commit_interval_ms = 1;
  auto w = WalWriter::Create(&env, "wal-1.log", 1, opts).value();
  uint64_t header_syncs = env.sync_count();

  constexpr int kThreads = 4, kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&w, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto lsn = w->Append(1, "t" + std::to_string(t));
        ASSERT_TRUE(lsn.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(w->Close().ok());

  EXPECT_EQ(w->appended_records(), kThreads * kPerThread);
  // Group commit must have amortized fsyncs below one per record.
  EXPECT_LT(env.sync_count() - header_syncs,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GT(w->group_commit_batches(), 0u);
  EXPECT_EQ(w->group_commit_records(), w->appended_records());

  auto replay = ReadWalFile(&env, "wal-1.log", 1);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->torn);
  EXPECT_EQ(replay->records.size(),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST(PersistTestFaultEnv, TruncateAfterOffset) {
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  FaultSpec spec;
  spec.mode = FaultSpec::Mode::kTruncateAfter;
  spec.path_substr = "victim";
  spec.offset = 6;
  env.set_fault(spec);

  auto f = env.NewWritableFile("victim.log", true).value();
  ASSERT_TRUE(f->Append("0123").ok());   // fully below the offset
  ASSERT_TRUE(f->Append("4567").ok());   // straddles: only "45" lands
  ASSERT_TRUE(f->Append("89").ok());     // fully beyond: dropped
  ASSERT_TRUE(f->Close().ok());
  EXPECT_EQ(mem.ReadFile("victim.log").value(), "012345");
  EXPECT_GE(env.faults_injected(), 2u);

  // Non-matching paths are untouched.
  auto g = env.NewWritableFile("other.log", true).value();
  ASSERT_TRUE(g->Append("0123456789").ok());
  ASSERT_TRUE(g->Close().ok());
  EXPECT_EQ(mem.ReadFile("other.log").value(), "0123456789");
}

TEST(PersistTestFaultEnv, DropWriteAndBitFlip) {
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  FaultSpec spec;
  spec.mode = FaultSpec::Mode::kDropWrite;
  spec.offset = 5;
  env.set_fault(spec);
  auto f = env.NewWritableFile("a", true).value();
  ASSERT_TRUE(f->Append("0123").ok());
  ASSERT_TRUE(f->Append("45").ok());  // covers offset 5: dropped
  ASSERT_TRUE(f->Append("67").ok());
  ASSERT_TRUE(f->Close().ok());
  EXPECT_EQ(mem.ReadFile("a").value(), "012367");

  FaultSpec flip;
  flip.mode = FaultSpec::Mode::kBitFlip;
  flip.offset = 2;
  env.set_fault(flip);
  auto h = env.NewWritableFile("b", true).value();
  ASSERT_TRUE(h->Append("AAAA").ok());
  ASSERT_TRUE(h->Close().ok());
  EXPECT_EQ(mem.ReadFile("b").value(), std::string("AA") + char('A' ^ 1) +
                                           "A");
  EXPECT_EQ(env.faults_injected(), 2u);
}

}  // namespace
}  // namespace rdfrel::persist
