#include "util/status.h"

#include <gtest/gtest.h>

namespace rdfrel {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token at line 3");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsParseError());
  EXPECT_EQ(s.message(), "bad token at line 3");
  EXPECT_EQ(s.ToString(), "ParseError: bad token at line 3");
}

TEST(StatusTest, EachFactoryMapsToItsCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ExecutionError("x").IsExecutionError());
  EXPECT_TRUE(Status::CapacityExceeded("x").IsCapacityExceeded());
  EXPECT_TRUE(Status::InvalidQuery("x").IsInvalidQuery());
}

TEST(StatusTest, InvalidQueryHasStableName) {
  Status s = Status::InvalidQuery("undeclared prefix");
  EXPECT_EQ(s.code(), StatusCode::kInvalidQuery);
  EXPECT_EQ(s.ToString(), "InvalidQuery: undeclared prefix");
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(b.IsInternal());
}

TEST(StatusTest, OkCodeDegradesToOk) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  RDFREL_ASSIGN_OR_RETURN(int h, HalveEven(x));
  RDFREL_ASSIGN_OR_RETURN(int q, HalveEven(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> err = QuarterEven(6);  // 6/2=3 is odd
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("neg");
  return Status::OK();
}

Status CheckAll(int a, int b) {
  RDFREL_RETURN_NOT_OK(FailIfNegative(a));
  RDFREL_RETURN_NOT_OK(FailIfNegative(b));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(CheckAll(1, 2).ok());
  EXPECT_TRUE(CheckAll(1, -2).IsOutOfRange());
}

// IgnoreError is the sanctioned way to drop a [[nodiscard]] Status/Result:
// unlike `(void)expr` it leaves a greppable reason and satisfies
// rdfrel-lint's status-discipline rule. It must accept temporaries and
// lvalues of both types without consuming them.
TEST(StatusTest, IgnoreErrorAcceptsStatusAndResult) {
  IgnoreError(Status::NotFound("gone"), "test: drop a temporary");

  Status s = Status::Internal("boom");
  IgnoreError(s, "test: drop an lvalue");
  EXPECT_TRUE(s.IsInternal());  // the status is untouched, not moved from

  IgnoreError(Result<int>(Status::OutOfRange("neg")),
              "test: drop a Result temporary");
  Result<int> r = 41;
  IgnoreError(r, "test: drop a Result lvalue");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 41);
}

}  // namespace
}  // namespace rdfrel
