#include "util/hash.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace rdfrel {
namespace {

TEST(HashTest, Fnv1aIsStable) {
  // Known FNV-1a vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(HashTest, Mix64Bijective) {
  // Distinct inputs must stay distinct (sanity over a small set).
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(Mix64(i)).second);
  }
}

TEST(SeededHashTest, DifferentSeedsDecorrelate) {
  SeededHash h1(1), h2(2);
  int agree = 0;
  const int kTrials = 1000;
  for (int i = 0; i < kTrials; ++i) {
    std::string key = "predicate_" + std::to_string(i);
    if (h1.Bucket(key, 16) == h2.Bucket(key, 16)) ++agree;
  }
  // Independent functions agree ~1/16 of the time; allow generous slack.
  EXPECT_LT(agree, kTrials / 4);
  EXPECT_GT(agree, 0);
}

TEST(SeededHashTest, BucketInRange) {
  SeededHash h(7);
  for (int i = 0; i < 1000; ++i) {
    uint32_t b = h.Bucket("k" + std::to_string(i), 13);
    EXPECT_LT(b, 13u);
  }
}

TEST(SeededHashTest, DeterministicAcrossInstances) {
  SeededHash a(99), b(99);
  EXPECT_EQ(a.Hash("hello"), b.Hash("hello"));
  EXPECT_EQ(a.Bucket("hello", 64), b.Bucket("hello", 64));
}

TEST(SeededHashTest, BucketsRoughlyUniform) {
  SeededHash h(5);
  const uint32_t kRange = 8;
  std::vector<int> counts(kRange, 0);
  const int kTrials = 8000;
  for (int i = 0; i < kTrials; ++i) {
    counts[h.Bucket("uri:" + std::to_string(i), kRange)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, kTrials / kRange / 2);
    EXPECT_LT(c, kTrials / kRange * 2);
  }
}

TEST(HashTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace rdfrel
