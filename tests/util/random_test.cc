#include "util/random.h"

#include <map>

#include <gtest/gtest.h>

namespace rdfrel {
namespace {

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, UniformInBound) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.Uniform(17), 17u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(ZipfTest, RanksInRange) {
  Random r(3);
  ZipfSampler z(100, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.Sample(r), 100u);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Random r(5);
  ZipfSampler z(1000, 1.2);
  std::map<uint64_t, int> counts;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) counts[z.Sample(r)]++;
  // Rank 0 should dominate rank 100 by a wide margin under s=1.2.
  EXPECT_GT(counts[0], counts[100] * 5);
}

TEST(ZipfTest, UniformWhenExponentZero) {
  Random r(13);
  ZipfSampler z(10, 0.0);
  std::map<uint64_t, int> counts;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) counts[z.Sample(r)]++;
  for (auto& [rank, c] : counts) {
    EXPECT_GT(c, kTrials / 10 / 2) << "rank " << rank;
    EXPECT_LT(c, kTrials / 10 * 2) << "rank " << rank;
  }
}

}  // namespace
}  // namespace rdfrel
