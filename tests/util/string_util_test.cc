#include "util/string_util.h"

#include <gtest/gtest.h>

namespace rdfrel {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitNoSeparator) {
  auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("nt", ".nt"));
}

TEST(StringUtilTest, CaseFolding) {
  EXPECT_EQ(ToLowerAscii("SeLeCt"), "select");
  EXPECT_EQ(ToUpperAscii("SeLeCt"), "SELECT");
  EXPECT_TRUE(EqualsIgnoreCaseAscii("union", "UNION"));
  EXPECT_FALSE(EqualsIgnoreCaseAscii("union", "unions"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"x"}, ","), "x");
}

TEST(StringUtilTest, SqlQuoteDoublesQuotes) {
  EXPECT_EQ(SqlQuote("O'Brien"), "'O''Brien'");
  EXPECT_EQ(SqlQuote(""), "''");
}

TEST(StringUtilTest, NtEscape) {
  EXPECT_EQ(NtEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(NtEscape("plain"), "plain");
}

}  // namespace
}  // namespace rdfrel
