// rdfrel-lint self-test: drives the real binary over the fixture pairs in
// tests/compilefail/ and asserts the EXACT diagnostic set — rule IDs and
// line numbers — against the `// lint-expect: <rule>` comments embedded in
// each violation fixture. Asserting exact lines (not just exit codes) is
// what pins the public contract: a rule that fires one line off, under a
// different ID, or twice per site would still flip the exit code but break
// every suppression comment and CI annotation users have written against
// it.
//
// The binary path and fixture directory arrive via compile definitions
// (RDFREL_LINT_BIN, RDFREL_LINT_FIXTURE_DIR) from tests/CMakeLists.txt.
// All runs force --engine=lite: the lexical engine ships in every build,
// so the assertions hold on toolchains with and without libclang.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string stdout_text;
};

RunResult RunLint(const std::string& args) {
  RunResult r;
  std::string cmd = std::string(RDFREL_LINT_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    r.stdout_text.append(buf, n);
  }
  int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

std::string FixturePath(const std::string& name) {
  return std::string(RDFREL_LINT_FIXTURE_DIR) + "/" + name;
}

/// (line, rule) pairs expected for a fixture, read from its own
/// `// lint-expect: <rule>` comments.
std::set<std::pair<int, std::string>> ExpectedDiags(const std::string& path) {
  std::set<std::pair<int, std::string>> out;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open fixture " << path;
  std::string line;
  int lineno = 0;
  const std::string marker = "// lint-expect: ";
  while (std::getline(in, line)) {
    ++lineno;
    size_t pos = line.find(marker);
    if (pos == std::string::npos) continue;
    std::string rule = line.substr(pos + marker.size());
    while (!rule.empty() && (rule.back() == ' ' || rule.back() == '\r')) {
      rule.pop_back();
    }
    out.insert({lineno, rule});
  }
  return out;
}

/// (line, rule) pairs the tool actually reported, parsed from
/// `<file>:<line>: error: [<rule>] <message>` output lines.
std::set<std::pair<int, std::string>> ReportedDiags(const std::string& text) {
  std::set<std::pair<int, std::string>> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    size_t colon1 = line.find(':');
    if (colon1 == std::string::npos) continue;
    size_t colon2 = line.find(':', colon1 + 1);
    if (colon2 == std::string::npos) continue;
    int lineno = std::atoi(line.substr(colon1 + 1, colon2 - colon1 - 1).c_str());
    size_t open = line.find('[', colon2);
    size_t close = line.find(']', open);
    if (open == std::string::npos || close == std::string::npos) continue;
    out.insert({lineno, line.substr(open + 1, close - open - 1)});
  }
  return out;
}

void ExpectExactDiagnostics(const std::string& fixture) {
  const std::string path = FixturePath(fixture);
  auto expected = ExpectedDiags(path);
  ASSERT_FALSE(expected.empty())
      << fixture << " carries no lint-expect comments";
  RunResult r = RunLint("--engine=lite " + path);
  EXPECT_EQ(r.exit_code, 1) << fixture << " must make the lint exit 1";
  auto reported = ReportedDiags(r.stdout_text);
  EXPECT_EQ(reported, expected)
      << "diagnostic set mismatch for " << fixture << "\noutput:\n"
      << r.stdout_text;
}

void ExpectClean(const std::string& fixture) {
  RunResult r = RunLint("--engine=lite " + FixturePath(fixture));
  EXPECT_EQ(r.exit_code, 0) << fixture << " must be clean\noutput:\n"
                            << r.stdout_text;
  EXPECT_TRUE(r.stdout_text.empty()) << r.stdout_text;
}

TEST(LintFixtureTest, ArenaEscapeViolationsExactLines) {
  ExpectExactDiagnostics("arena_escape_violation.cc");
}
TEST(LintFixtureTest, ArenaEscapeCleanTwin) {
  ExpectClean("arena_escape_clean.cc");
}

TEST(LintFixtureTest, BlockingUnderLockViolationsExactLines) {
  ExpectExactDiagnostics("blocking_under_lock_violation.cc");
}
TEST(LintFixtureTest, BlockingUnderLockCleanTwin) {
  ExpectClean("blocking_under_lock_clean.cc");
}

TEST(LintFixtureTest, BorrowedBatchViolationsExactLines) {
  ExpectExactDiagnostics("borrowed_batch_violation.cc");
}
TEST(LintFixtureTest, BorrowedBatchCleanTwin) {
  ExpectClean("borrowed_batch_clean.cc");
}

TEST(LintFixtureTest, StatusDisciplineViolationsExactLines) {
  ExpectExactDiagnostics("status_discipline_violation.cc");
}
TEST(LintFixtureTest, StatusDisciplineCleanTwin) {
  ExpectClean("status_discipline_clean.cc");
}

TEST(LintFixtureTest, ListRulesNamesAllFour) {
  RunResult r = RunLint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  std::istringstream in(r.stdout_text);
  std::set<std::string> rules;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) rules.insert(line);
  }
  EXPECT_EQ(rules,
            (std::set<std::string>{"arena-escape", "blocking-under-lock",
                                   "borrowed-batch", "status-discipline"}));
}

TEST(LintFixtureTest, RulesFlagRestrictsDiagnostics) {
  // With only borrowed-batch on, the status fixture must come back clean.
  RunResult r = RunLint("--engine=lite --rules=borrowed-batch " +
                        FixturePath("status_discipline_violation.cc"));
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text;
}

class SuppressionTest : public ::testing::Test {
 protected:
  std::string path_;

  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }

  void WriteSource(const std::string& text) {
    path_ = ::testing::TempDir() + "/lint_suppression_fixture.cc";
    std::ofstream out(path_);
    ASSERT_TRUE(out.is_open());
    out << text;
  }
};

TEST_F(SuppressionTest, AllowCommentWithReasonSilencesTheLine) {
  WriteSource(
      "void Caller();\n"
      "int Drop() {\n"
      "  // rdfrel-lint: allow(status-discipline): fixture reason\n"
      "  (void)Caller();\n"
      "  return 0;\n"
      "}\n");
  RunResult r = RunLint("--engine=lite " + path_);
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text;

  // --no-suppress reinstates the diagnostic: the comment only hides it.
  RunResult raw = RunLint("--engine=lite --no-suppress " + path_);
  EXPECT_EQ(raw.exit_code, 1);
  auto reported = ReportedDiags(raw.stdout_text);
  EXPECT_EQ(reported,
            (std::set<std::pair<int, std::string>>{{4, "status-discipline"}}));
}

TEST_F(SuppressionTest, AllowCommentWithoutReasonIsIgnored) {
  WriteSource(
      "void Caller();\n"
      "int Drop() {\n"
      "  // rdfrel-lint: allow(status-discipline):\n"
      "  (void)Caller();\n"
      "  return 0;\n"
      "}\n");
  RunResult r = RunLint("--engine=lite " + path_);
  EXPECT_EQ(r.exit_code, 1) << "a reason-less suppression must not count";
}

TEST_F(SuppressionTest, MultiLineReasonCarriesToFirstCodeLine) {
  WriteSource(
      "void Caller();\n"
      "int Drop() {\n"
      "  // rdfrel-lint: allow(status-discipline): the reason starts here\n"
      "  // and keeps going on a continuation comment line\n"
      "  (void)Caller();\n"
      "  return 0;\n"
      "}\n");
  RunResult r = RunLint("--engine=lite " + path_);
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text;
}

}  // namespace
