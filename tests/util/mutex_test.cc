#include "util/mutex.h"

#include <gtest/gtest.h>

#include <thread>

namespace rdfrel::util {
namespace {

// The detector state is a process-wide toggle; save and restore it so these
// tests compose with the rest of the binary in any build type.
class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = LockRankChecksEnabled();
    SetLockRankChecksEnabled(true);
  }
  void TearDown() override { SetLockRankChecksEnabled(was_enabled_); }

  bool was_enabled_ = false;
};

using LockRankDeathTest = LockRankTest;

TEST_F(LockRankTest, HierarchyOrderIsClean) {
  Mutex store("store", lock_rank::kStore);
  Mutex wal("wal", lock_rank::kWal);
  Mutex env("env", lock_rank::kEnv);
  // kStore < kWal < kEnv: the documented nesting acquires in rank order.
  MutexLock a(&store);
  MutexLock b(&wal);
  MutexLock c(&env);
}

TEST_F(LockRankTest, ReleaseReopensTheRank) {
  Mutex store("store", lock_rank::kStore);
  Mutex wal("wal", lock_rank::kWal);
  {
    MutexLock a(&store);
    MutexLock b(&wal);
  }
  // Nothing held anymore: taking the low rank again is fine.
  MutexLock a(&store);
}

TEST_F(LockRankTest, UnrankedNeverChecks) {
  Mutex ranked("wal", lock_rank::kWal);
  Mutex plain;  // kUnranked
  MutexLock a(&ranked);
  MutexLock b(&plain);  // unranked under ranked: allowed
}

TEST_F(LockRankTest, TryLockRecordsButDoesNotCheck) {
  Mutex wal("wal", lock_rank::kWal);
  Mutex store("store", lock_rank::kStore);
  MutexLock a(&wal);
  // TryLock cannot block, so it cannot deadlock: no rank check even though
  // kStore < kWal.
  ASSERT_TRUE(store.TryLock());
  store.Unlock();
}

TEST_F(LockRankTest, DisabledChecksAreSilent) {
  SetLockRankChecksEnabled(false);
  Mutex wal("wal", lock_rank::kWal);
  Mutex store("store", lock_rank::kStore);
  MutexLock a(&wal);
  MutexLock b(&store);  // inverted, but the detector is off
}

TEST_F(LockRankTest, SharedThenDistinctExclusiveIsClean) {
  SharedMutex store("store", lock_rank::kStore);
  Mutex wal("wal", lock_rank::kWal);
  ReaderLock r(&store);
  MutexLock w(&wal);
}

TEST_F(LockRankDeathTest, InversionAborts) {
  Mutex wal("wal", lock_rank::kWal);
  Mutex store("store", lock_rank::kStore);
  EXPECT_DEATH(
      {
        MutexLock outer(&wal);
        MutexLock inner(&store);  // kStore < kWal while kWal held
      },
      "lock-rank inversion detected");
}

TEST_F(LockRankDeathTest, InversionReportsTheCycleEdge) {
  Mutex wal("wal", lock_rank::kWal);
  Mutex store("store", lock_rank::kStore);
  EXPECT_DEATH(
      {
        MutexLock outer(&wal);
        MutexLock inner(&store);
      },
      "inverts the documented order \"store\" -> \"wal\"");
}

TEST_F(LockRankDeathTest, EqualRankAborts) {
  // Equal ranks are an inversion too: the hierarchy is strict, so two
  // same-rank locks may never nest (either order could deadlock).
  Mutex a("env-a", lock_rank::kEnv);
  Mutex b("env-b", lock_rank::kEnv);
  EXPECT_DEATH(
      {
        MutexLock outer(&a);
        MutexLock inner(&b);
      },
      "lock-rank inversion detected");
}

TEST_F(LockRankDeathTest, ReentrantExclusiveAborts) {
  Mutex mu("store", lock_rank::kStore);
  EXPECT_DEATH(
      {
        mu.Lock();
        mu.Lock();  // self-deadlock
      },
      "re-entrant acquisition detected");
}

TEST_F(LockRankDeathTest, ReentrantSharedAborts) {
  // std::shared_mutex makes no recursion guarantee even in shared mode (a
  // waiting writer between the two acquisitions deadlocks), so the
  // detector flags it.
  SharedMutex mu("store", lock_rank::kStore);
  EXPECT_DEATH(
      {
        mu.LockShared();
        mu.LockShared();
      },
      "re-entrant shared acquisition detected");
}

TEST_F(LockRankDeathTest, ReportListsHeldLocks) {
  Mutex pool("pool", lock_rank::kPool);
  Mutex store("store", lock_rank::kStore);
  EXPECT_DEATH(
      {
        MutexLock outer(&pool);
        MutexLock inner(&store);
      },
      "while holding");
}

TEST_F(LockRankTest, HeldStacksArePerThread) {
  // A high rank held on this thread must not poison another thread's
  // acquisitions.
  Mutex wal("wal", lock_rank::kWal);
  Mutex store("store", lock_rank::kStore);
  MutexLock a(&wal);
  std::thread t([&] { MutexLock b(&store); });
  t.join();
}

TEST(MutexTest, CondVarWaitRoundTrip) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread t([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
  }
  t.join();
  EXPECT_TRUE(ready);
}

TEST(MutexTest, RelockableMutexLock) {
  Mutex mu;
  int guarded = 0;
  MutexLock lock(&mu);
  guarded = 1;
  lock.Unlock();
  lock.Lock();
  guarded = 2;
  EXPECT_EQ(guarded, 2);
}

}  // namespace
}  // namespace rdfrel::util
