#include "util/lru_cache.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rdfrel::util {
namespace {

TEST(LruCacheTest, GetReturnsPutValue) {
  ShardedLruCache<std::string, int> cache(16, 4);
  cache.Put("a", 1);
  cache.Put("b", 2);
  auto a = cache.Get("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*cache.Get("b"), 2);
  EXPECT_FALSE(cache.Get("c").has_value());
}

TEST(LruCacheTest, PutOverwritesExistingKey) {
  ShardedLruCache<std::string, int> cache(16, 4);
  cache.Put("a", 1);
  cache.Put("a", 7);
  EXPECT_EQ(*cache.Get("a"), 7);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedWithinShard) {
  // Single shard makes the LRU order fully observable.
  ShardedLruCache<int, int> cache(2, 1);
  cache.Put(1, 1);
  cache.Put(2, 2);
  ASSERT_TRUE(cache.Get(1).has_value());  // refresh 1; 2 is now LRU
  cache.Put(3, 3);                        // evicts 2
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, EraseRemovesOnlyThatKey) {
  ShardedLruCache<int, int> cache(8, 2);
  cache.Put(1, 1);
  cache.Put(2, 2);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(2).has_value());
}

TEST(LruCacheTest, ClearDropsEntriesKeepsCounters) {
  ShardedLruCache<int, int> cache(8, 2);
  cache.Put(1, 1);
  ASSERT_TRUE(cache.Get(1).has_value());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1).has_value());
  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(LruCacheTest, StatsTrackHitsAndMisses) {
  ShardedLruCache<int, int> cache(8, 2);
  cache.Put(1, 1);
  cache.Get(1);
  cache.Get(1);
  cache.Get(99);
  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 2.0 / 3.0);
}

TEST(LruCacheTest, CapacitySplitsAcrossShardsWithMinimumOne) {
  // capacity 1 with 8 shards still admits one entry per shard.
  ShardedLruCache<int, int> cache(1, 8);
  for (int i = 0; i < 64; ++i) cache.Put(i, i);
  EXPECT_GE(cache.size(), 1u);
  EXPECT_LE(cache.size(), 8u);
}

TEST(LruCacheTest, ConcurrentMixedUseKeepsConsistentCounts) {
  ShardedLruCache<int, int> cache(128, 8);
  constexpr int kThreads = 8;
  constexpr int kOps = 1998;  // divisible by 3: exact get/put split below
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        int key = (t * 31 + i) % 200;
        if (i % 3 == 0) {
          cache.Put(key, key * 2);
        } else {
          auto v = cache.Get(key);
          if (v.has_value()) {
            EXPECT_EQ(*v, key * 2);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<uint64_t>(kThreads) * kOps * 2 / 3);
  EXPECT_LE(cache.size(), 128u + 8u);  // per-shard rounding slack
}

}  // namespace
}  // namespace rdfrel::util
