#include "util/scope_markers.h"

#include <gtest/gtest.h>

#include "util/arena.h"

namespace rdfrel {
namespace {

// RDFREL_QUERY_SCOPED is a lifetime contract consumed by rdfrel-lint, not a
// language feature: under Clang it expands to [[clang::annotate]], under
// other compilers to nothing. What a unit test CAN pin down is that the
// marker composes with the class syntaxes the codebase uses — `final`,
// inheritance, templates — and costs nothing at runtime.

class Base {
 public:
  virtual ~Base() = default;
};

class RDFREL_QUERY_SCOPED PlainScoped {
 public:
  int value = 3;
};

class RDFREL_QUERY_SCOPED DerivedScoped final : public Base {};

template <typename T>
class RDFREL_QUERY_SCOPED TemplatedScoped {
 public:
  T held{};
};

TEST(ScopeMarkersTest, MarkerComposesWithClassShapes) {
  PlainScoped plain;
  EXPECT_EQ(plain.value, 3);
  DerivedScoped derived;
  EXPECT_NE(dynamic_cast<Base*>(&derived), nullptr);
  TemplatedScoped<int> templated;
  EXPECT_EQ(templated.held, 0);
}

TEST(ScopeMarkersTest, MarkerIsLayoutNeutral) {
  // The annotation must not perturb object layout — a marked operator is
  // still layout-compatible with its unmarked shape.
  struct Unmarked {
    int value;
  };
  struct RDFREL_QUERY_SCOPED Marked {
    int value;
  };
  EXPECT_EQ(sizeof(Marked), sizeof(Unmarked));
  EXPECT_EQ(alignof(Marked), alignof(Unmarked));
}

TEST(ScopeMarkersTest, ScopedClassMayHoldArenaBackedMembers) {
  // The canonical use: a query-scoped class keeps arena-backed state in a
  // member, and both die together. (rdfrel-lint would reject this exact
  // code on an unmarked class.)
  class RDFREL_QUERY_SCOPED PerQueryRows {
   public:
    void Remember(util::QueryArena* arena) {
      row_ = arena->Allocate(16, alignof(int));
    }
    void* row() const { return row_; }

   private:
    void* row_ = nullptr;
  };

  util::QueryArena arena;
  PerQueryRows rows;
  rows.Remember(&arena);
  EXPECT_NE(rows.row(), nullptr);
}

}  // namespace
}  // namespace rdfrel
