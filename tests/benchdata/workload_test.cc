#include <gtest/gtest.h>

#include "benchdata/dbpedia.h"
#include "benchdata/lubm.h"
#include "benchdata/micro.h"
#include "benchdata/prbench.h"
#include "benchdata/sp2bench.h"
#include "sparql/parser.h"
#include "store/rdf_store.h"
#include "store/triple_store_backend.h"

namespace rdfrel::benchdata {
namespace {

using store::RdfStore;
using store::TripleStoreBackend;

Workload MakeSmall(const std::string& name) {
  if (name == "micro") return MakeMicro(400, 7);
  if (name == "lubm") return MakeLubm(2, 7);
  if (name == "sp2bench") return MakeSp2Bench(4, 7);
  if (name == "dbpedia") return MakeDbpedia(400, 300, 7);
  if (name == "prbench") return MakePrbench(2, 7);
  return {};
}

class WorkloadTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadTest, AllQueriesParseAndAgreeAcrossBackends) {
  Workload w = MakeSmall(GetParam());
  ASSERT_GT(w.graph.size(), 100u) << w.name;
  ASSERT_FALSE(w.queries.empty());

  // Parse check.
  for (const auto& q : w.queries) {
    auto parsed = sparql::ParseQuery(q.sparql);
    ASSERT_TRUE(parsed.ok()) << w.name << "/" << q.id << ": "
                             << parsed.status().ToString() << "\n"
                             << q.sparql;
  }

  // Load both stores from identical data.
  Workload w2 = MakeSmall(GetParam());
  auto db2rdf = RdfStore::Load(std::move(w.graph));
  ASSERT_TRUE(db2rdf.ok()) << db2rdf.status().ToString();
  auto triple = TripleStoreBackend::Load(std::move(w2.graph));
  ASSERT_TRUE(triple.ok()) << triple.status().ToString();

  int non_empty = 0;
  for (const auto& q : w.queries) {
    auto a = (*db2rdf)->Query(q.sparql);
    ASSERT_TRUE(a.ok()) << w.name << "/" << q.id << ": "
                        << a.status().ToString();
    auto b = (*triple)->Query(q.sparql);
    ASSERT_TRUE(b.ok()) << w.name << "/" << q.id << ": "
                        << b.status().ToString();
    EXPECT_EQ(a->size(), b->size())
        << w.name << "/" << q.id << " row-count mismatch\nSQL:\n"
        << (*db2rdf)->TranslateToSql(q.sparql).ValueOr("<err>");
    if (a->size() > 0) ++non_empty;
  }
  // The workloads are designed so most queries return data at small scale.
  EXPECT_GT(non_empty, static_cast<int>(w.queries.size() / 2)) << w.name;
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadTest,
                         ::testing::Values("micro", "lubm", "sp2bench",
                                           "dbpedia", "prbench"),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

TEST(WorkloadDetailTest, MicroClassMixMatchesTable1) {
  Workload w = MakeMicro(1000, 1);
  // Subject classes: 1% + 24% + 25% + 25% + 24% + 1% of 1000.
  // Triples: class1: 10*(4+12)=160; classes 2-5: 980 subjects, 12 triples
  // each (3 SV + 3 MV*3); class 6: 10*4=40.
  EXPECT_EQ(w.graph.size(), 160u + 980u * 12u + 40u);
  EXPECT_EQ(w.queries.size(), 10u);
}

TEST(WorkloadDetailTest, MicroStarSelectivity) {
  Workload w = MakeMicro(1000, 1);
  auto store = RdfStore::Load(std::move(w.graph));
  ASSERT_TRUE(store.ok());
  // Q1 (all four SVs) matches only class 1: 10 subjects.
  auto q1 = (*store)->Query(w.queries[0].sparql);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  EXPECT_EQ(q1->size(), 10u);
  // Q7 (SV5 alone) matches only class 6: 10 subjects.
  auto q7 = (*store)->Query(w.queries[6].sparql);
  ASSERT_TRUE(q7.ok());
  EXPECT_EQ(q7->size(), 10u);
  // Q2 (all four MVs): class 1, but 3^4 = 81 combinations per subject.
  auto q2 = (*store)->Query(w.queries[1].sparql);
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->size(), 10u * 81u);
}

TEST(WorkloadDetailTest, LubmDeterministicAndTyped) {
  Workload a = MakeLubm(2, 42);
  Workload b = MakeLubm(2, 42);
  EXPECT_EQ(a.graph.size(), b.graph.size());
  EXPECT_EQ(a.queries.size(), 12u);
  // Avg out-degree should be modest (LUBM ~6).
  double avg = static_cast<double>(a.graph.size()) /
               static_cast<double>(a.graph.DistinctSubjects().size());
  EXPECT_GT(avg, 3.0);
  EXPECT_LT(avg, 9.0);
}

TEST(WorkloadDetailTest, DbpediaSkewAndPredicates) {
  Workload w = MakeDbpedia(2000, 500, 3);
  EXPECT_EQ(w.queries.size(), 20u);
  EXPECT_GT(w.graph.DistinctPredicates().size(), 100u);
  double avg_out =
      static_cast<double>(w.graph.size()) /
      static_cast<double>(w.graph.DistinctSubjects().size());
  EXPECT_GT(avg_out, 8.0);   // paper: ~14
  EXPECT_LT(avg_out, 25.0);
}

TEST(WorkloadDetailTest, PrbenchWideUnionsAreWide) {
  Workload w = MakePrbench(1, 5);
  EXPECT_EQ(w.queries.size(), 29u);
  const auto& pq28 = w.queries[27];
  EXPECT_EQ(pq28.id, "PQ28");
  size_t unions = 0;
  for (size_t pos = pq28.sparql.find("UNION"); pos != std::string::npos;
       pos = pq28.sparql.find("UNION", pos + 1)) {
    ++unions;
  }
  EXPECT_EQ(unions, 95u);  // 96 branches
  auto parsed = sparql::ParseQuery(pq28.sparql);
  ASSERT_TRUE(parsed.ok());
  EXPECT_GT(parsed->num_triples, 400);  // ~500 triples, as in the paper
}

}  // namespace
}  // namespace rdfrel::benchdata
