/// Unit tests for the sharding subsystem's building blocks: the subject
/// partitioner, the coordinator manifest codec, query decomposition and
/// round-trip re-serialization, the fragment-plan verifier's negative
/// paths, and the coordinator-side binding algebra. Suites are prefixed
/// ShardTest so `ctest -R ShardTest` runs exactly this layer.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "persist/env.h"
#include "shard/binding_ops.h"
#include "shard/fragment.h"
#include "shard/fragment_verifier.h"
#include "shard/manifest.h"
#include "shard/partition.h"
#include "sparql/parser.h"

namespace rdfrel::shard {
namespace {

using rdf::Term;
using store::Binding;
using store::ResultSet;

Term Iri(const std::string& s) { return Term::Iri("http://x/" + s); }

// ------------------------------------------------------------- Partitioner

TEST(ShardTestPartition, PlacementIsDeterministicAcrossInstances) {
  Partitioner a(4, kDefaultPartitionSeed);
  Partitioner b(4, kDefaultPartitionSeed);
  for (int i = 0; i < 200; ++i) {
    const Term s = Iri("subject" + std::to_string(i));
    EXPECT_EQ(a.ShardOf(s), b.ShardOf(s));
    EXPECT_LT(a.ShardOf(s), 4u);
  }
}

TEST(ShardTestPartition, RoutesBySubjectOnly) {
  Partitioner p(7, kDefaultPartitionSeed);
  const Term s = Iri("ibm");
  const uint32_t home = p.ShardOf(s);
  for (int i = 0; i < 20; ++i) {
    rdf::Triple t{s, Iri("p" + std::to_string(i)),
                  Term::Literal("o" + std::to_string(i))};
    EXPECT_EQ(p.ShardOfTriple(t), home);
  }
}

TEST(ShardTestPartition, CoversEveryShard) {
  Partitioner p(7, kDefaultPartitionSeed);
  std::set<uint32_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(p.ShardOf(Iri("s" + std::to_string(i))));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(ShardTestPartition, SeedChangesPlacement) {
  Partitioner a(7, kDefaultPartitionSeed);
  Partitioner b(7, kDefaultPartitionSeed + 1);
  int moved = 0;
  for (int i = 0; i < 200; ++i) {
    const Term s = Iri("s" + std::to_string(i));
    if (a.ShardOf(s) != b.ShardOf(s)) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(ShardTestPartition, SingleShardTakesEverything) {
  Partitioner p(1, kDefaultPartitionSeed);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(p.ShardOf(Iri("s" + std::to_string(i))), 0u);
  }
}

// ---------------------------------------------------------------- Manifest

TEST(ShardTestManifest, RoundTrip) {
  persist::MemEnv env;
  Manifest m;
  m.generation = 17;
  m.shard_count = 4;
  m.partition_seed = 0xABCDEF;
  m.backend_kind = "db2rdf";
  ASSERT_TRUE(env.CreateDirIfMissing("db").ok());
  ASSERT_TRUE(WriteManifest(&env, "db", m).ok());

  auto r = ReadManifest(&env, "db");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->generation, 17u);
  EXPECT_EQ(r->shard_count, 4u);
  EXPECT_EQ(r->partition_seed, 0xABCDEFu);
  EXPECT_EQ(r->backend_kind, "db2rdf");
}

TEST(ShardTestManifest, DetectsEveryBitFlip) {
  Manifest m;
  m.generation = 3;
  m.shard_count = 2;
  m.partition_seed = kDefaultPartitionSeed;
  m.backend_kind = "triple";
  const std::string bytes = m.Encode();
  ASSERT_TRUE(Manifest::Decode(bytes).ok());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] ^= 0x01;
    auto r = Manifest::Decode(bad);
    EXPECT_FALSE(r.ok()) << "flip at byte " << i << " went undetected";
  }
}

TEST(ShardTestManifest, RejectsTruncation) {
  Manifest m;
  m.shard_count = 2;
  m.backend_kind = "db2rdf";
  const std::string bytes = m.Encode();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(Manifest::Decode(bytes.substr(0, cut)).ok())
        << "truncation to " << cut << " bytes went undetected";
  }
  EXPECT_FALSE(Manifest::Decode(bytes + "x").ok()) << "trailing byte accepted";
}

TEST(ShardTestManifest, MissingFileIsAnError) {
  persist::MemEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing("db").ok());
  EXPECT_FALSE(ReadManifest(&env, "db").ok());
}

// --------------------------------------------- QueryToSparql / decompose

/// parse -> serialize -> parse -> serialize must be a fixpoint, and both
/// parses must agree on the pattern count and projection.
void ExpectRoundTrips(const std::string& sparql) {
  auto q1 = sparql::ParseQuery(sparql);
  ASSERT_TRUE(q1.ok()) << sparql << ": " << q1.status().ToString();
  const std::string text1 = QueryToSparql(*q1);
  auto q2 = sparql::ParseQuery(text1);
  ASSERT_TRUE(q2.ok()) << "re-parse failed for: " << text1 << "\n"
                       << q2.status().ToString();
  EXPECT_EQ(q1->num_triples, q2->num_triples) << text1;
  EXPECT_EQ(q1->EffectiveSelectVars(), q2->EffectiveSelectVars()) << text1;
  EXPECT_EQ(text1, QueryToSparql(*q2)) << "serialization is not a fixpoint";
}

TEST(ShardTestFragmentText, RoundTrips) {
  ExpectRoundTrips("SELECT ?s WHERE { ?s <http://x/p> ?o }");
  ExpectRoundTrips("SELECT * WHERE { ?s <http://x/p> ?o . ?s <http://x/q> ?v }");
  ExpectRoundTrips(
      "SELECT DISTINCT ?o WHERE { ?s <http://x/p> ?o FILTER(?o > 3) }");
  ExpectRoundTrips(
      "SELECT ?s ?o WHERE { { ?s <http://x/p> ?o } UNION "
      "{ ?s <http://x/q> ?o } }");
  ExpectRoundTrips(
      "SELECT ?s ?n WHERE { ?s <http://x/p> ?o "
      "OPTIONAL { ?s <http://x/name> ?n } }");
  ExpectRoundTrips(
      "SELECT ?p (COUNT(?s) AS ?c) WHERE { ?s <http://x/in> ?p } "
      "GROUP BY ?p ORDER BY DESC(?c) LIMIT 5");
  ExpectRoundTrips(
      "SELECT ?s WHERE { ?s <http://x/p> ?o } ORDER BY ?s LIMIT 10 OFFSET 2");
}

Result<FragmentPlan> Decompose(const std::string& sparql) {
  auto q = sparql::ParseQuery(sparql);
  if (!q.ok()) return q.status();
  return DecomposeQuery(std::move(*q), nullptr, nullptr);
}

TEST(ShardTestDecompose, SingleStarIsOneFragment) {
  auto plan = Decompose(
      "SELECT ?o ?v WHERE { ?s <http://x/p> ?o . ?s <http://x/q> ?v }");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->fragments.size(), 1u);
  EXPECT_EQ(plan->fragments[0].patterns.size(), 2u);
  EXPECT_FALSE(plan->fragments[0].routed);
  EXPECT_EQ(plan->root->kind, CoordNodeKind::kScatter);
  EXPECT_TRUE(VerifyFragmentPlan(*plan).ok())
      << VerifyFragmentPlan(*plan).ToString();
}

TEST(ShardTestDecompose, TwoStarsJoinAtCoordinator) {
  auto plan = Decompose(
      "SELECT * WHERE { ?a <http://x/knows> ?b . ?b <http://x/name> ?n }");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->fragments.size(), 2u);
  EXPECT_EQ(plan->root->kind, CoordNodeKind::kJoin);
  EXPECT_EQ(plan->root->children.size(), 2u);
  EXPECT_TRUE(VerifyFragmentPlan(*plan).ok())
      << VerifyFragmentPlan(*plan).ToString();
}

TEST(ShardTestDecompose, ConstantSubjectIsRouted) {
  auto plan =
      Decompose("SELECT ?o WHERE { <http://x/ibm> <http://x/industry> ?o }");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->fragments.size(), 1u);
  EXPECT_TRUE(plan->fragments[0].routed);
  EXPECT_TRUE(VerifyFragmentPlan(*plan).ok());
}

TEST(ShardTestDecompose, SingleStarFilterIsPushedDown) {
  auto plan = Decompose(
      "SELECT ?o WHERE { ?s <http://x/p> ?o FILTER(?o > 3) }");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->fragments.size(), 1u);
  EXPECT_EQ(plan->fragments[0].pushed_filters.size(), 1u);
  EXPECT_NE(plan->fragments[0].sparql.find("FILTER"), std::string::npos)
      << plan->fragments[0].sparql;
  EXPECT_TRUE(VerifyFragmentPlan(*plan).ok())
      << VerifyFragmentPlan(*plan).ToString();
}

TEST(ShardTestDecompose, CrossStarFilterStaysResidual) {
  auto plan = Decompose(
      "SELECT * WHERE { ?a <http://x/age> ?x . ?b <http://x/age> ?y "
      "FILTER(?x > ?y) }");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->fragments.size(), 2u);
  EXPECT_TRUE(plan->fragments[0].pushed_filters.empty());
  EXPECT_TRUE(plan->fragments[1].pushed_filters.empty());
  EXPECT_EQ(plan->root->kind, CoordNodeKind::kFilter);
  EXPECT_TRUE(VerifyFragmentPlan(*plan).ok())
      << VerifyFragmentPlan(*plan).ToString();
}

TEST(ShardTestDecompose, TransitivePathsAreUnsupported) {
  auto plan = Decompose(
      "SELECT ?o WHERE { <http://x/a> <http://x/knows>+ ?o }");
  ASSERT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsUnsupported()) << plan.status().ToString();
}

// -------------------------------------------------------------- Verifier

TEST(ShardTestVerifier, FlagsOutOfRangeFragmentIndex) {
  auto plan = Decompose("SELECT ?o WHERE { ?s <http://x/p> ?o }");
  ASSERT_TRUE(plan.ok());
  plan->root->fragment = 99;
  const Status st = VerifyFragmentPlan(*plan);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("shardplan"), std::string::npos)
      << st.ToString();
}

TEST(ShardTestVerifier, FlagsRoutedFlagMismatch) {
  auto plan = Decompose("SELECT ?o WHERE { ?s <http://x/p> ?o }");
  ASSERT_TRUE(plan.ok());
  plan->fragments[0].routed = true;  // variable subject must not be routed
  EXPECT_FALSE(VerifyFragmentPlan(*plan).ok());
}

TEST(ShardTestVerifier, FlagsDoubleCoverage) {
  auto plan = Decompose(
      "SELECT * WHERE { ?a <http://x/p> ?o . ?b <http://x/q> ?v }");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->fragments.size(), 2u);
  // The same pattern now appears in both fragments.
  plan->fragments[1].patterns = plan->fragments[0].patterns;
  EXPECT_FALSE(VerifyFragmentPlan(*plan).ok());
}

TEST(ShardTestVerifier, FlagsTamperedFragmentText) {
  auto plan = Decompose("SELECT ?o WHERE { ?s <http://x/p> ?o }");
  ASSERT_TRUE(plan.ok());
  plan->fragments[0].sparql = "SELECT ?o WHERE { ?s <http://x/p> ?o . "
                              "?s <http://x/q> ?z }";
  EXPECT_FALSE(VerifyFragmentPlan(*plan).ok());
}

TEST(ShardTestVerifier, FlagsVariableListMismatch) {
  auto plan = Decompose("SELECT ?o WHERE { ?s <http://x/p> ?o }");
  ASSERT_TRUE(plan.ok());
  plan->fragments[0].vars = {"o", "s"};  // not first-occurrence order
  EXPECT_FALSE(VerifyFragmentPlan(*plan).ok());
}

// ----------------------------------------------------------- Binding ops

ResultSet Table(std::vector<std::string> vars,
                std::vector<Binding> rows) {
  ResultSet t;
  t.vars = std::move(vars);
  t.rows = std::move(rows);
  return t;
}

std::optional<Term> L(const std::string& s) { return Term::Literal(s); }
std::optional<Term> U() { return std::nullopt; }

TEST(ShardTestBindingOps, JoinMatchesOnSharedVars) {
  ResultSet left = Table({"a", "b"}, {{L("1"), L("x")}, {L("2"), L("y")}});
  ResultSet right = Table({"b", "c"}, {{L("x"), L("c1")}, {L("z"), L("c2")}});
  ResultSet out = JoinTables(std::move(left), std::move(right));
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.vars, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(out.rows[0], (Binding{L("1"), L("x"), L("c1")}));
}

TEST(ShardTestBindingOps, JoinTreatsUnboundAsCompatible) {
  // SPARQL compatibility: an unbound shared var matches anything, and the
  // merge coalesces the bound value in.
  ResultSet left = Table({"a", "b"}, {{L("1"), U()}});
  ResultSet right = Table({"b"}, {{L("x")}});
  ResultSet out = JoinTables(std::move(left), std::move(right));
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0], (Binding{L("1"), L("x")}));
}

TEST(ShardTestBindingOps, JoinWithoutSharedVarsIsCartesian) {
  ResultSet left = Table({"a"}, {{L("1")}, {L("2")}});
  ResultSet right = Table({"b"}, {{L("x")}, {L("y")}});
  ResultSet out = JoinTables(std::move(left), std::move(right));
  EXPECT_EQ(out.rows.size(), 4u);
}

TEST(ShardTestBindingOps, LeftJoinPadsUnmatchedRows) {
  ResultSet left = Table({"a"}, {{L("1")}, {L("2")}});
  ResultSet right = Table({"a", "n"}, {{L("1"), L("one")}});
  ResultSet out = LeftJoinTables(std::move(left), std::move(right));
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.vars, (std::vector<std::string>{"a", "n"}));
  // One matched row, one padded row.
  int padded = 0;
  for (const auto& row : out.rows) {
    if (!row[1].has_value()) ++padded;
  }
  EXPECT_EQ(padded, 1);
}

TEST(ShardTestBindingOps, UnionWidensVariableSets) {
  ResultSet a = Table({"x"}, {{L("1")}});
  ResultSet b = Table({"y"}, {{L("2")}});
  std::vector<ResultSet> parts;
  parts.push_back(std::move(a));
  parts.push_back(std::move(b));
  ResultSet out = UnionTables(std::move(parts));
  EXPECT_EQ(out.vars, (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[0], (Binding{L("1"), U()}));
  EXPECT_EQ(out.rows[1], (Binding{U(), L("2")}));
}

TEST(ShardTestBindingOps, CanonicalSortIsNumericAwareAndTotal) {
  auto Num = [](const std::string& s) {
    return std::optional<Term>(
        Term::TypedLiteral(s, "http://www.w3.org/2001/XMLSchema#integer"));
  };
  ResultSet t = Table({"v"}, {{Num("10")}, {Num("2")}, {U()}, {L("abc")}});
  std::vector<sparql::OrderCond> order{{"v", false}};
  CanonicalSortRows(order, &t);
  // Unbound first, then numerics by value, then non-numeric terms.
  EXPECT_EQ(t.rows[0], (Binding{U()}));
  EXPECT_EQ(t.rows[1], (Binding{Num("2")}));
  EXPECT_EQ(t.rows[2], (Binding{Num("10")}));
  EXPECT_EQ(t.rows[3], (Binding{L("abc")}));
}

TEST(ShardTestBindingOps, FinalizeAppliesDistinctSortAndLimit) {
  auto q = sparql::ParseQuery(
      "SELECT DISTINCT ?v WHERE { ?s <http://x/p> ?v } ORDER BY ?v LIMIT 2");
  ASSERT_TRUE(q.ok());
  ResultSet t = Table({"s", "v"}, {{L("s1"), L("b")},
                                   {L("s2"), L("a")},
                                   {L("s3"), L("b")},
                                   {L("s4"), L("c")}});
  auto out = FinalizeRows(*q, std::move(t));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->rows.size(), 2u);
  EXPECT_EQ(out->rows[0], (Binding{L("a")}));
  EXPECT_EQ(out->rows[1], (Binding{L("b")}));
}

TEST(ShardTestBindingOps, FinalizeCountsGroups) {
  auto q = sparql::ParseQuery(
      "SELECT ?g (COUNT(?v) AS ?c) WHERE { ?v <http://x/in> ?g } GROUP BY ?g");
  ASSERT_TRUE(q.ok());
  ResultSet t = Table({"v", "g"}, {{L("v1"), L("g1")},
                                   {L("v2"), L("g1")},
                                   {L("v3"), L("g2")}});
  auto out = FinalizeRows(*q, std::move(t));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->rows.size(), 2u);
  EXPECT_EQ(out->vars, (std::vector<std::string>{"g", "c"}));
  // Canonical order: g1 before g2.
  ASSERT_TRUE(out->rows[0][1].has_value());
  EXPECT_EQ(out->rows[0][1]->lexical(), "2");
  EXPECT_EQ(out->rows[1][1]->lexical(), "1");
}

TEST(ShardTestBindingOps, FinalizeGlobalCountOnEmptyInputIsZero) {
  auto q = sparql::ParseQuery(
      "SELECT (COUNT(*) AS ?c) WHERE { ?s <http://x/p> ?o }");
  ASSERT_TRUE(q.ok());
  ResultSet t = Table({"s", "o"}, {});
  auto out = FinalizeRows(*q, std::move(t));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->rows.size(), 1u);
  ASSERT_TRUE(out->rows[0][0].has_value());
  EXPECT_EQ(out->rows[0][0]->lexical(), "0");
}

}  // namespace
}  // namespace rdfrel::shard
