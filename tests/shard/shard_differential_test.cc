/// Sharded-vs-single-store differential over every benchmark workload and
/// all three backends: each query runs against one unsharded reference
/// store and against sharded stores at shard counts {1, 2, 4, 7}, and the
/// answers must agree byte-for-byte after both sides are put into the
/// canonical merge order (DESIGN.md §16.4) — the single store's ORDER BY
/// sorts by dictionary id, so its rows are canonicalized with the same
/// binding_ops helpers the coordinator uses. On top of that, sharded
/// output must be *ordered byte-identical across shard counts and scatter
/// widths*: the canonical order is a pure function of the data.
///
/// The recovery section proves the coordinator manifest contract: a kill
/// between two shard checkpoints (mixed snapshot generations, stale
/// manifest) and a torn shard snapshot both recover to one consistent
/// generation with no acknowledged write lost.
///
/// Suites are prefixed ShardTest so `ctest -R ShardTest` (and the TSan CI
/// job) runs exactly this layer.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "benchdata/dbpedia.h"
#include "benchdata/lubm.h"
#include "benchdata/micro.h"
#include "benchdata/prbench.h"
#include "benchdata/sp2bench.h"
#include "persist/env.h"
#include "persist/manager.h"
#include "shard/binding_ops.h"
#include "shard/fragment.h"
#include "shard/sharded_store.h"
#include "sparql/parser.h"
#include "store/predicate_store_backend.h"
#include "store/rdf_store.h"
#include "store/sparql_store.h"
#include "store/triple_store_backend.h"

namespace rdfrel::shard {
namespace {

using rdf::Term;
using store::QueryOptions;
using store::ResultSet;

constexpr uint32_t kShardCounts[] = {1, 2, 4, 7};

benchdata::Workload MakeSmall(const std::string& name) {
  if (name == "micro") return benchdata::MakeMicro(400, 11);
  if (name == "lubm") return benchdata::MakeLubm(2, 11);
  if (name == "sp2bench") return benchdata::MakeSp2Bench(4, 11);
  if (name == "dbpedia") return benchdata::MakeDbpedia(400, 300, 11);
  if (name == "prbench") return benchdata::MakePrbench(2, 11);
  return {};
}

/// Ordered row signatures: order differences are failures.
std::vector<std::string> OrderedSignature(const ResultSet& rs) {
  std::vector<std::string> out;
  out.reserve(rs.rows.size());
  for (const auto& row : rs.rows) {
    std::string sig;
    for (const auto& v : row) {
      sig += v.has_value() ? v->ToNTriples() : "UNBOUND";
      sig += "\x1f";
    }
    out.push_back(std::move(sig));
  }
  return out;
}

/// The query with LIMIT/OFFSET stripped, so reference and sharded answers
/// compare over the full row set (a LIMIT over tied sort keys may
/// legitimately keep different rows under different tie-breaks).
std::string StripSlice(const std::string& sparql, sparql::Query* parsed_out) {
  auto q = sparql::ParseQuery(sparql);
  EXPECT_TRUE(q.ok()) << sparql << ": " << q.status().ToString();
  if (!q.ok()) return sparql;
  q->limit.reset();
  q->offset.reset();
  std::string text = QueryToSparql(*q);
  if (parsed_out != nullptr) *parsed_out = std::move(*q);
  return text;
}

void ExpectShardedMatchesSingle(const std::string& workload,
                                const std::string& backend) {
  // The unsharded reference. (shards=1 still exercises the full
  // decompose/scatter/merge path, so the reference must be the *single*
  // store engine, built directly.)
  benchdata::Workload w = MakeSmall(workload);
  ASSERT_FALSE(w.queries.empty());
  auto single = [&]() -> Result<std::unique_ptr<store::SparqlStore>> {
    benchdata::Workload sw = MakeSmall(workload);
    if (backend == "db2rdf") {
      auto s = store::RdfStore::Load(std::move(sw.graph));
      if (!s.ok()) return s.status();
      return std::unique_ptr<store::SparqlStore>(std::move(*s));
    }
    if (backend == "triple") {
      auto s = store::TripleStoreBackend::Load(std::move(sw.graph));
      if (!s.ok()) return s.status();
      return std::unique_ptr<store::SparqlStore>(std::move(*s));
    }
    auto s = store::PredicateStoreBackend::Load(std::move(sw.graph));
    if (!s.ok()) return s.status();
    return std::unique_ptr<store::SparqlStore>(std::move(*s));
  }();
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  // One sharded store per shard count.
  std::vector<std::unique_ptr<ShardedStore>> sharded;
  for (uint32_t count : kShardCounts) {
    benchdata::Workload sw = MakeSmall(workload);
    ShardedStoreOptions o;
    o.shards = count;
    o.backend = backend;
    auto s = ShardedStore::Load(std::move(sw.graph), o);
    ASSERT_TRUE(s.ok()) << backend << " x" << count << ": "
                        << s.status().ToString();
    sharded.push_back(std::move(*s));
  }

  QueryOptions opts;
  opts.verify_plans = true;  // every decomposition passes the verifier

  for (const auto& q : w.queries) {
    sparql::Query parsed;
    const std::string stripped = StripSlice(q.sparql, &parsed);

    // Decomposition may honestly refuse a query (transitive property
    // paths); the refusal must be kUnsupported, and consistent.
    auto first = sharded[0]->QueryWith(stripped, opts);
    if (!first.ok()) {
      ASSERT_TRUE(first.status().IsUnsupported())
          << backend << "/" << workload << "/" << q.id << ": "
          << first.status().ToString();
      for (size_t i = 1; i < sharded.size(); ++i) {
        EXPECT_FALSE(sharded[i]->QueryWith(stripped, opts).ok());
      }
      continue;
    }

    // Reference: single-store rows, canonicalized with the same helpers
    // the coordinator merge uses.
    auto ref = single.value()->QueryWith(stripped, opts);
    ASSERT_TRUE(ref.ok()) << backend << "/" << workload << "/" << q.id << ": "
                          << ref.status().ToString();
    CanonicalSortRows(parsed.order_by, &ref.value());
    const std::vector<std::string> want = OrderedSignature(*ref);

    const std::vector<std::string> first_sig = OrderedSignature(*first);
    ASSERT_EQ(first_sig, want)
        << backend << "/" << workload << "/" << q.id
        << " shards=1: sharded result differs from canonicalized single ("
        << first->size() << " vs " << ref->size() << " rows)";

    for (size_t i = 1; i < sharded.size(); ++i) {
      auto got = sharded[i]->QueryWith(stripped, opts);
      ASSERT_TRUE(got.ok()) << backend << "/" << workload << "/" << q.id
                            << " shards=" << kShardCounts[i] << ": "
                            << got.status().ToString();
      ASSERT_EQ(OrderedSignature(*got), want)
          << backend << "/" << workload << "/" << q.id
          << " shards=" << kShardCounts[i]
          << ": result depends on the shard count";
    }

    // Scatter width must never change bytes, only scheduling.
    for (unsigned width : {1u, 2u}) {
      QueryOptions narrow = opts;
      narrow.scatter_width = width;
      auto got = sharded.back()->QueryWith(stripped, narrow);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(OrderedSignature(*got), want)
          << backend << "/" << workload << "/" << q.id
          << " scatter_width=" << width << ": width changed the answer";
    }

    // Original query (LIMIT/OFFSET intact): the canonical order makes the
    // kept slice identical across shard counts.
    auto sliced0 = sharded[0]->QueryWith(q.sparql, opts);
    ASSERT_TRUE(sliced0.ok()) << sliced0.status().ToString();
    const std::vector<std::string> slice_sig = OrderedSignature(*sliced0);
    for (size_t i = 1; i < sharded.size(); ++i) {
      auto got = sharded[i]->QueryWith(q.sparql, opts);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(OrderedSignature(*got), slice_sig)
          << backend << "/" << workload << "/" << q.id
          << " shards=" << kShardCounts[i]
          << ": sliced result depends on the shard count";
    }
  }
}

class ShardTestWorkloads : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardTestWorkloads, Db2RdfShardedMatchesSingle) {
  ExpectShardedMatchesSingle(GetParam(), "db2rdf");
}

TEST_P(ShardTestWorkloads, TripleShardedMatchesSingle) {
  ExpectShardedMatchesSingle(GetParam(), "triple");
}

TEST_P(ShardTestWorkloads, PredicateShardedMatchesSingle) {
  ExpectShardedMatchesSingle(GetParam(), "predicate");
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ShardTestWorkloads,
                         ::testing::Values("micro", "lubm", "sp2bench",
                                           "dbpedia", "prbench"),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

// ---------------------------------------------------------------- Recovery

Term Iri(const std::string& s) { return Term::Iri("http://x/" + s); }

rdf::Graph BaseGraph() {
  rdf::Graph g;
  for (int i = 0; i < 12; ++i) {
    g.Add({Iri("c" + std::to_string(i)), Iri("industry"),
           Term::Literal("sector" + std::to_string(i % 3))});
  }
  return g;
}

std::vector<rdf::Triple> MoreTriples(const std::string& tag, int n) {
  std::vector<rdf::Triple> out;
  for (int i = 0; i < n; ++i) {
    out.push_back({Iri(tag + std::to_string(i)), Iri("hq"),
                   Term::Literal("city" + std::to_string(i))});
  }
  return out;
}

store::PersistOptions SyncEveryRecord(persist::Env* env) {
  store::PersistOptions o;
  o.env = env;
  o.wal.sync = persist::WalSync::kEveryRecord;
  return o;
}

using Rows = std::vector<store::Binding>;

Rows AllTriples(store::SparqlStore& s) {
  auto r = s.Query("SELECT ?s ?p ?o WHERE { ?s ?p ?o }");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return {};
  auto rows = r->rows;
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(ShardTestRecovery, CleanCheckpointAndReopen) {
  persist::MemEnv env;
  ShardedStoreOptions o;
  o.shards = 3;
  auto store = ShardedStore::Load(BaseGraph(), o);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(
      (*store)->EnablePersistence("db", SyncEveryRecord(&env)).ok());
  EXPECT_EQ((*store)->generation(), 1u);
  ASSERT_TRUE((*store)->InsertBatch(MoreTriples("a", 9)).ok());
  ASSERT_TRUE((*store)->Checkpoint().ok());
  EXPECT_EQ((*store)->generation(), 2u);
  const Rows before = AllTriples(**store);
  ASSERT_TRUE((*store)->Close().ok());
  store->reset();

  auto reopened = ShardedStore::Open("db", SyncEveryRecord(&env));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_shards(), 3u);
  // Recovery re-stamps: a new consistent generation past the manifest's.
  EXPECT_EQ((*reopened)->generation(), 3u);
  EXPECT_EQ(AllTriples(**reopened), before);
}

TEST(ShardTestRecovery, KillBetweenShardCheckpointsConverges) {
  persist::MemEnv env;
  ShardedStoreOptions o;
  o.shards = 2;
  auto store = ShardedStore::Load(BaseGraph(), o);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(
      (*store)->EnablePersistence("db", SyncEveryRecord(&env)).ok());
  ASSERT_TRUE((*store)->InsertBatch(MoreTriples("a", 8)).ok());
  ASSERT_TRUE((*store)->Checkpoint().ok());  // generation 2, both shards
  ASSERT_TRUE((*store)->InsertBatch(MoreTriples("b", 8)).ok());

  // The torn multi-shard checkpoint: shard 0's checkpoint completes, the
  // "crash" lands before shard 1's checkpoint and before the manifest
  // stamp. Shards now sit at mixed snapshot generations; the manifest
  // still says generation 2.
  ASSERT_TRUE((*store)->shard(0)->Checkpoint().ok());
  const Rows before = AllTriples(**store);
  const uint64_t stale_gen = (*store)->generation();
  EXPECT_EQ(stale_gen, 2u);
  ASSERT_TRUE((*store)->Close().ok());
  store->reset();

  // Per-shard WAL recovery converges both shards onto the same logical
  // commit point; the manifest re-stamps one consistent generation.
  auto reopened = ShardedStore::Open("db", SyncEveryRecord(&env));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(AllTriples(**reopened), before);
  EXPECT_EQ((*reopened)->generation(), stale_gen + 1);

  // The recovered store keeps accepting routed writes.
  ASSERT_TRUE((*reopened)->InsertBatch(MoreTriples("c", 4)).ok());
  EXPECT_EQ(AllTriples(**reopened).size(), before.size() + 4);
}

TEST(ShardTestRecovery, TornShardSnapshotFallsBack) {
  persist::MemEnv env;
  ShardedStoreOptions o;
  o.shards = 2;
  auto store = ShardedStore::Load(BaseGraph(), o);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(
      (*store)->EnablePersistence("db", SyncEveryRecord(&env)).ok());
  ASSERT_TRUE((*store)->InsertBatch(MoreTriples("a", 8)).ok());
  ASSERT_TRUE((*store)->Checkpoint().ok());
  const Rows before = AllTriples(**store);
  ASSERT_TRUE((*store)->Close().ok());
  store->reset();

  // Corrupt shard 1's newest snapshot (generation 2): its recovery must
  // fall back to generation 1 + WAL replay, and the coordinator must still
  // come up with the complete data set.
  const std::string snap = persist::PersistenceManager::SnapshotPath(
      ShardDirPath("db", 1), 2);
  ASSERT_TRUE(env.FileExists(snap)) << snap;
  std::string bytes = env.ReadFile(snap).value();
  bytes[bytes.size() / 2] ^= 0x01;
  env.SetFile(snap, bytes);

  auto reopened = ShardedStore::Open("db", SyncEveryRecord(&env));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(AllTriples(**reopened), before);
}

TEST(ShardTestRecovery, MutationsRouteAndQueriesSeeThem) {
  ShardedStoreOptions o;
  o.shards = 4;
  auto store = ShardedStore::Load(BaseGraph(), o);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const size_t base = AllTriples(**store).size();

  ASSERT_TRUE((*store)->InsertBatch(MoreTriples("x", 16)).ok());
  EXPECT_EQ((*store)->rows_routed(), 16u);
  EXPECT_EQ(AllTriples(**store).size(), base + 16);

  ASSERT_TRUE((*store)->Delete(
      {Iri("x0"), Iri("hq"), Term::Literal("city0")}).ok());
  EXPECT_EQ(AllTriples(**store).size(), base + 15);

  // Immutable baselines refuse mutation, like their single-store twins.
  ShardedStoreOptions t;
  t.shards = 2;
  t.backend = "triple";
  auto frozen = ShardedStore::Load(BaseGraph(), t);
  ASSERT_TRUE(frozen.ok());
  auto st = (*frozen)->Insert({Iri("n"), Iri("p"), Term::Literal("v")});
  EXPECT_TRUE(st.IsUnsupported()) << st.ToString();
}

}  // namespace
}  // namespace rdfrel::shard
