#include "sql/database.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace rdfrel::sql {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Exec("CREATE TABLE emp (id BIGINT, name VARCHAR, dept BIGINT, "
         "salary DOUBLE)");
    Exec("CREATE TABLE dept (id BIGINT, dname VARCHAR)");
    Exec("CREATE INDEX idx_emp_id ON emp (id)");
    Exec("CREATE INDEX idx_dept_id ON dept (id)");
    Exec("INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty')");
    Exec("INSERT INTO emp VALUES "
         "(10, 'ann', 1, 100.0), "
         "(11, 'bob', 1, 90.0), "
         "(12, 'cat', 2, 80.0), "
         "(13, 'dan', NULL, 70.0)");
  }

  void Exec(const std::string& sql) {
    auto r = db_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  QueryResult Q(const std::string& sql) {
    auto r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : QueryResult{};
  }

  Database db_;
};

TEST_F(DatabaseTest, SelectStar) {
  auto r = Q("SELECT * FROM emp");
  EXPECT_EQ(r.columns.size(), 4u);
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(DatabaseTest, ProjectionAndAlias) {
  auto r = Q("SELECT name AS who, salary * 2 AS dbl FROM emp WHERE id = 10");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.columns, (std::vector<std::string>{"who", "dbl"}));
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 200.0);
}

TEST_F(DatabaseTest, IndexScanOnEquality) {
  auto r = Q("SELECT name FROM emp WHERE id = 12");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "cat");
}

TEST_F(DatabaseTest, FilterNonIndexed) {
  auto r = Q("SELECT name FROM emp WHERE salary >= 90.0");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(DatabaseTest, CommaJoinUsesEquiPred) {
  auto r = Q("SELECT e.name, d.dname FROM emp e, dept d "
             "WHERE e.dept = d.id ORDER BY e.name");
  ASSERT_EQ(r.rows.size(), 3u);  // dan has NULL dept -> no join
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
  EXPECT_EQ(r.rows[0][1].AsString(), "eng");
  EXPECT_EQ(r.rows[2][0].AsString(), "cat");
  EXPECT_EQ(r.rows[2][1].AsString(), "sales");
}

TEST_F(DatabaseTest, ExplicitInnerJoin) {
  auto r = Q("SELECT e.name FROM emp e JOIN dept d ON e.dept = d.id "
             "WHERE d.dname = 'eng' ORDER BY e.name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
}

TEST_F(DatabaseTest, LeftOuterJoinPadsNulls) {
  auto r = Q("SELECT e.name, d.dname FROM emp e "
             "LEFT OUTER JOIN dept d ON e.dept = d.id ORDER BY e.name");
  ASSERT_EQ(r.rows.size(), 4u);
  // dan's dept is NULL -> dname NULL.
  EXPECT_EQ(r.rows[3][0].AsString(), "dan");
  EXPECT_TRUE(r.rows[3][1].is_null());
}

TEST_F(DatabaseTest, LeftOuterJoinUnmatchedRight) {
  auto r = Q("SELECT d.dname, e.name FROM dept d "
             "LEFT OUTER JOIN emp e ON d.id = e.dept "
             "ORDER BY d.dname, e.name");
  // eng x2, sales x1, empty x1 (padded).
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].AsString(), "empty");
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(DatabaseTest, CrossJoinNoPredicate) {
  auto r = Q("SELECT e.name FROM emp e, dept d");
  EXPECT_EQ(r.rows.size(), 12u);
}

TEST_F(DatabaseTest, UnionAll) {
  auto r = Q("SELECT name FROM emp WHERE dept = 1 "
             "UNION ALL SELECT dname FROM dept");
  EXPECT_EQ(r.rows.size(), 5u);
}

TEST_F(DatabaseTest, UnionAllArityMismatchRejected) {
  auto st = db_.Query("SELECT id, name FROM emp UNION ALL SELECT id FROM dept")
                .status();
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST_F(DatabaseTest, Distinct) {
  auto r = Q("SELECT DISTINCT dept FROM emp");
  EXPECT_EQ(r.rows.size(), 3u);  // 1, 2, NULL
}

TEST_F(DatabaseTest, OrderByDescAndLimit) {
  auto r = Q("SELECT name FROM emp ORDER BY salary DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
  EXPECT_EQ(r.rows[1][0].AsString(), "bob");
}

TEST_F(DatabaseTest, LimitOffset) {
  auto r = Q("SELECT name FROM emp ORDER BY name LIMIT 2 OFFSET 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "bob");
  EXPECT_EQ(r.rows[1][0].AsString(), "cat");
}

TEST_F(DatabaseTest, CteChain) {
  auto r = Q("WITH eng AS (SELECT id, name FROM emp WHERE dept = 1), "
             "top AS (SELECT name FROM eng WHERE id = 10) "
             "SELECT name FROM top");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
}

TEST_F(DatabaseTest, CteReferencedTwice) {
  auto r = Q("WITH e AS (SELECT id FROM emp WHERE dept = 1) "
             "SELECT a.id, b.id FROM e a, e b WHERE a.id = b.id");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(DatabaseTest, CteJoinedToIndexedBaseTable) {
  // The DB2RDF translation shape: a CTE driving an index probe into a base
  // table listed first in FROM (planner must flip the join orientation).
  auto r = Q("WITH seed AS (SELECT id AS eid FROM emp WHERE dept = 2) "
             "SELECT t.name FROM emp AS t, seed WHERE t.id = seed.eid");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "cat");
}

TEST_F(DatabaseTest, DerivedTable) {
  auto r = Q("SELECT q.name FROM (SELECT name FROM emp WHERE dept = 1) q "
             "ORDER BY q.name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
}

TEST_F(DatabaseTest, UnnestFlipsColumnsToRows) {
  auto r = Q("SELECT e.name, lt.v FROM emp e, UNNEST(e.id, e.dept) AS lt(v) "
             "WHERE e.name = 'ann'");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 10);
  EXPECT_EQ(r.rows[1][1].AsInt(), 1);
}

TEST_F(DatabaseTest, UnnestKeepsNullsForIsNotNullFiltering) {
  auto r = Q("SELECT lt.v FROM emp e, UNNEST(e.dept) AS lt(v) "
             "WHERE lt.v IS NOT NULL");
  EXPECT_EQ(r.rows.size(), 3u);  // dan's NULL dept filtered out
}

TEST_F(DatabaseTest, CaseAndCoalesceInProjection) {
  auto r = Q("SELECT name, CASE WHEN dept = 1 THEN 'eng' ELSE 'other' END "
             "AS tag, COALESCE(dept, -1) AS d FROM emp ORDER BY name");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][1].AsString(), "eng");
  EXPECT_EQ(r.rows[3][1].AsString(), "other");
  EXPECT_EQ(r.rows[3][2].AsInt(), -1);
}

TEST_F(DatabaseTest, WherePredicateOnUnknownColumnRejected) {
  EXPECT_FALSE(db_.Query("SELECT name FROM emp WHERE nothere = 1").ok());
}

TEST_F(DatabaseTest, UnknownTableRejected) {
  EXPECT_TRUE(db_.Query("SELECT x FROM missing").status().IsNotFound());
}

TEST_F(DatabaseTest, InsertArityMismatchRejected) {
  auto st = db_.Execute("INSERT INTO dept (id) VALUES (7, 'x')").status();
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST_F(DatabaseTest, InsertPartialColumnsDefaultsNull) {
  Exec("INSERT INTO emp (id, name) VALUES (99, 'eve')");
  auto r = Q("SELECT salary FROM emp WHERE id = 99");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(DatabaseTest, PaperFigure13Shape) {
  // A structurally faithful miniature of the paper's generated SQL: CTE
  // chain, OR-merged predicate test with CASE projection, UNNEST flip,
  // then LEFT OUTER JOIN for the OPTIONAL part.
  Exec("CREATE TABLE dph (entry BIGINT, spill BIGINT, "
       "pred0 BIGINT, val0 BIGINT, pred1 BIGINT, val1 BIGINT)");
  Exec("CREATE INDEX idx_dph_entry ON dph (entry)");
  // entity 1: pred0=100 (founder) -> 7, pred1=101 (member) -> 8
  Exec("INSERT INTO dph VALUES (1, 0, 100, 7, 101, 8)");
  // entity 2: only founder.
  Exec("INSERT INTO dph VALUES (2, 0, 100, 9, NULL, NULL)");
  // entity 3: nothing relevant.
  Exec("INSERT INTO dph VALUES (3, 0, 102, 5, NULL, NULL)");

  auto r = Q(
      "WITH q23 AS ("
      "  SELECT T.entry AS x, "
      "    CASE WHEN T.pred0 = 100 THEN T.val0 ELSE NULL END AS v0, "
      "    CASE WHEN T.pred1 = 101 THEN T.val1 ELSE NULL END AS v1 "
      "  FROM dph AS T WHERE T.pred0 = 100 OR T.pred1 = 101), "
      "flip AS ("
      "  SELECT q23.x, lt.y FROM q23, UNNEST(q23.v0, q23.v1) AS lt(y) "
      "  WHERE lt.y IS NOT NULL) "
      "SELECT x, y FROM flip ORDER BY x, y");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[0][1].AsInt(), 7);
  EXPECT_EQ(r.rows[1][1].AsInt(), 8);
  EXPECT_EQ(r.rows[2][0].AsInt(), 2);
  EXPECT_EQ(r.rows[2][1].AsInt(), 9);
}

TEST_F(DatabaseTest, GlobalAggregates) {
  auto r = Q("SELECT COUNT(*), COUNT(dept), MIN(salary), MAX(salary), "
             "SUM(salary), AVG(salary) FROM emp");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);  // COUNT(*)
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);  // COUNT(dept): dan's NULL skipped
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 70.0);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 100.0);
  EXPECT_DOUBLE_EQ(r.rows[0][4].AsDouble(), 340.0);
  EXPECT_DOUBLE_EQ(r.rows[0][5].AsDouble(), 85.0);
}

TEST_F(DatabaseTest, GlobalAggregateOverEmptyInput) {
  auto r = Q("SELECT COUNT(*), MAX(salary) FROM emp WHERE id = 999");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(DatabaseTest, GroupByCounts) {
  auto r = Q("SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept "
             "ORDER BY n DESC");
  ASSERT_EQ(r.rows.size(), 3u);  // dept 1, dept 2, NULL
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);  // dept 1: ann, bob
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  // NULL dept forms its own group.
  int null_groups = 0;
  for (const auto& row : r.rows) {
    if (row[0].is_null()) {
      ++null_groups;
      EXPECT_EQ(row[1].AsInt(), 1);
    }
  }
  EXPECT_EQ(null_groups, 1);
}

TEST_F(DatabaseTest, GroupByWithJoinAndHaving) {
  // No HAVING in the subset; filter via a derived table instead.
  auto r = Q("SELECT q.dname, q.n FROM (SELECT d.dname AS dname, "
             "COUNT(*) AS n FROM emp e, dept d WHERE e.dept = d.id "
             "GROUP BY d.dname) q WHERE q.n > 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "eng");
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
}

TEST_F(DatabaseTest, CountDistinct) {
  auto r = Q("SELECT COUNT(DISTINCT dept) FROM emp");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);  // 1 and 2; NULL not counted
}

TEST_F(DatabaseTest, NonAggregateItemMustBeGrouped) {
  auto st =
      db_.Query("SELECT name, COUNT(*) FROM emp GROUP BY dept").status();
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST_F(DatabaseTest, AggregateInCte) {
  auto r = Q("WITH sizes AS (SELECT dept, COUNT(*) AS n FROM emp "
             "GROUP BY dept) "
             "SELECT d.dname FROM sizes, dept d "
             "WHERE sizes.dept = d.id AND sizes.n = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "sales");
}

}  // namespace
}  // namespace rdfrel::sql
