/// Vectorized-execution tests: RowBatch semantics, the row-fallback
/// adapter, and row-vs-batch differential checks for the join operators at
/// batch-boundary input sizes (0, 1, capacity-1, capacity, capacity+1),
/// with duplicate build keys and NULL join keys.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "sql/database.h"
#include "sql/executor.h"
#include "sql/row_batch.h"

namespace rdfrel::sql {
namespace {

// ------------------------------------------------------------- RowBatch

TEST(RowBatchTest, OwnedRowsAreReusedAcrossReset) {
  RowBatch b(4);
  for (int round = 0; round < 3; ++round) {
    b.Reset();
    EXPECT_EQ(b.size(), 0u);
    while (!b.Full()) {
      Row* r = b.AddRow();
      r->assign({Value::Int(round)});
    }
    EXPECT_EQ(b.size(), 4u);
    EXPECT_EQ(b.ActiveSize(), 4u);
    for (size_t i = 0; i < b.ActiveSize(); ++i) {
      EXPECT_EQ(b.Active(i)[0].AsInt(), round);
    }
  }
}

TEST(RowBatchTest, PopRowUndoesAdd) {
  RowBatch b;
  b.AddRow()->assign({Value::Int(1)});
  b.AddRow()->assign({Value::Int(2)});
  b.PopRow();
  EXPECT_EQ(b.ActiveSize(), 1u);
  EXPECT_EQ(b.Active(0)[0].AsInt(), 1);
}

TEST(RowBatchTest, SelectionFiltersWithoutMovingRows) {
  RowBatch b;
  for (int i = 0; i < 10; ++i) b.AddRow()->assign({Value::Int(i)});
  b.SetSelection({1, 4, 7});
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b.ActiveSize(), 3u);
  EXPECT_EQ(b.Active(0)[0].AsInt(), 1);
  EXPECT_EQ(b.Active(2)[0].AsInt(), 7);
  EXPECT_EQ(b.ActiveIndex(1), 4u);
  // Stacked selection (a second filter) keeps physical indices.
  b.SetSelection({4});
  EXPECT_EQ(b.Active(0)[0].AsInt(), 4);
}

TEST(RowBatchTest, BorrowIsZeroCopyAndResetDetaches) {
  std::vector<Row> src;
  for (int i = 0; i < 5; ++i) src.push_back({Value::Int(i)});
  RowBatch b;
  b.Borrow(src.data(), src.size());
  EXPECT_EQ(b.ActiveSize(), 5u);
  EXPECT_EQ(&b.Active(2), &src[2]);  // same storage, no copy
  b.Reset();
  EXPECT_EQ(b.size(), 0u);
}

TEST(RowBatchTest, FlushToCollectsActiveRows) {
  RowBatch b;
  for (int i = 0; i < 6; ++i) b.AddRow()->assign({Value::Int(i)});
  b.SetSelection({0, 5});
  std::vector<Row> out;
  b.FlushTo(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1][0].AsInt(), 5);
}

// ------------------------------------------------- row-fallback adapter

/// An operator with only a row implementation; NextBatch must come from
/// the base adapter.
class RowOnlyOp final : public Operator {
 public:
  explicit RowOnlyOp(int n) : n_(n) { scope_.Add("t", "x"); }
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  std::string name() const override { return "RowOnly"; }

 protected:
  Result<bool> NextImpl(Row* out) override {
    if (pos_ >= n_) return false;
    out->assign({Value::Int(pos_++)});
    return true;
  }

 private:
  int n_;
  int pos_ = 0;
};

TEST(BatchAdapterTest, AdapterChunksRowStreamIntoFullBatches) {
  RowOnlyOp op(2500);
  ASSERT_TRUE(op.Open().ok());
  RowBatch batch;
  int64_t total = 0;
  int batches = 0;
  while (true) {
    auto has = op.NextBatch(&batch);
    ASSERT_TRUE(has.ok());
    if (!*has) break;
    ++batches;
    EXPECT_LE(batch.ActiveSize(), RowBatch::kDefaultCapacity);
    for (size_t i = 0; i < batch.ActiveSize(); ++i) {
      EXPECT_EQ(batch.Active(i)[0].AsInt(), total++);
    }
  }
  EXPECT_EQ(total, 2500);
  EXPECT_EQ(batches, 3);  // 1024 + 1024 + 452
  EXPECT_EQ(op.stats().rows, 2500u);
  EXPECT_EQ(op.stats().batches, 3u);
}

TEST(BatchAdapterTest, EmptyStreamYieldsNoBatch) {
  RowOnlyOp op(0);
  ASSERT_TRUE(op.Open().ok());
  RowBatch batch;
  auto has = op.NextBatch(&batch);
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
}

// ------------------------------------ join edge cases, row vs batch diff

std::multiset<std::string> Sig(const QueryResult& qr) {
  std::multiset<std::string> out;
  for (const auto& row : qr.rows) {
    std::string s;
    for (const auto& v : row) {
      s += v.ToString();
      s += "\x1f";
    }
    out.insert(s);
  }
  return out;
}

/// Runs \p q in both modes and asserts identical (order-insensitive)
/// results; returns the row count.
size_t ExpectModesAgree(Database& db, const std::string& q) {
  db.set_exec_mode(ExecMode::kRow);
  auto row_res = db.Query(q);
  db.set_exec_mode(ExecMode::kBatch);
  auto batch_res = db.Query(q);
  EXPECT_EQ(row_res.ok(), batch_res.ok()) << q;
  if (!row_res.ok() || !batch_res.ok()) return 0;
  EXPECT_EQ(Sig(*row_res), Sig(*batch_res))
      << q << "\nrow path: " << row_res->rows.size()
      << " rows, batch path: " << batch_res->rows.size() << " rows";
  return row_res->rows.size();
}

/// Bulk insert in chunks (multi-row VALUES).
void InsertRows(Database& db, const std::string& table,
                const std::vector<std::string>& tuples) {
  for (size_t i = 0; i < tuples.size();) {
    std::string sql = "INSERT INTO " + table + " VALUES ";
    for (size_t j = 0; j < 256 && i < tuples.size(); ++j, ++i) {
      if (j) sql += ", ";
      sql += tuples[i];
    }
    auto st = db.Execute(sql);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
  }
}

/// Builds the probe table `l(a,b)` with \p n rows: key cycles over 0..12
/// (hitting duplicated and absent build keys), every 10th key is NULL.
void BuildProbeSide(Database& db, size_t n) {
  ASSERT_TRUE(db.Execute("CREATE TABLE l (a INTEGER, b INTEGER)").ok());
  std::vector<std::string> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string key =
        (i % 10 == 9) ? "NULL" : std::to_string(i % 13);
    tuples.push_back("(" + key + ", " + std::to_string(i) + ")");
  }
  InsertRows(db, "l", tuples);
}

/// Builds the build-side table `r(a,c)`: keys 0..6 each duplicated 3x,
/// plus two NULL-key rows (which must never join).
void BuildBuildSide(Database& db, bool with_index) {
  ASSERT_TRUE(db.Execute("CREATE TABLE r (a INTEGER, c INTEGER)").ok());
  std::vector<std::string> tuples;
  for (int dup = 0; dup < 3; ++dup) {
    for (int k = 0; k < 7; ++k) {
      tuples.push_back("(" + std::to_string(k) + ", " +
                       std::to_string(dup * 100 + k) + ")");
    }
  }
  tuples.push_back("(NULL, 900)");
  tuples.push_back("(NULL, 901)");
  InsertRows(db, "r", tuples);
  if (with_index) {
    ASSERT_TRUE(db.Execute("CREATE INDEX idx_r_a ON r (a)").ok());
  }
}

class JoinBoundaryTest : public ::testing::TestWithParam<size_t> {};

TEST_P(JoinBoundaryTest, HashJoinRowAndBatchAgree) {
  Database db;
  BuildProbeSide(db, GetParam());
  BuildBuildSide(db, /*with_index=*/false);  // no index => hash join
  ExpectModesAgree(db, "SELECT * FROM l, r WHERE l.a = r.a");
  ExpectModesAgree(db,
                   "SELECT l.b, r.c FROM l LEFT JOIN r ON l.a = r.a");
  // Residual predicate on top of the equi-key.
  ExpectModesAgree(
      db, "SELECT * FROM l, r WHERE l.a = r.a AND l.b + r.c > 50");
}

TEST_P(JoinBoundaryTest, IndexNLJoinRowAndBatchAgree) {
  Database db;
  BuildProbeSide(db, GetParam());
  BuildBuildSide(db, /*with_index=*/true);  // index => index NL join
  ExpectModesAgree(db, "SELECT * FROM l, r WHERE l.a = r.a");
  ExpectModesAgree(db,
                   "SELECT l.b, r.c FROM l LEFT JOIN r ON l.a = r.a");
  ExpectModesAgree(
      db, "SELECT * FROM l, r WHERE l.a = r.a AND l.b + r.c > 50");
}

TEST_P(JoinBoundaryTest, NestedLoopJoinRowAndBatchAgree) {
  Database db;
  // Cap the cross-product: NLJ sizes use min(n, 64) probe rows.
  BuildProbeSide(db, std::min<size_t>(GetParam(), 64));
  BuildBuildSide(db, /*with_index=*/false);
  // Non-equi predicate forces the nested-loop fallback.
  ExpectModesAgree(db, "SELECT * FROM l, r WHERE l.a < r.a");
}

INSTANTIATE_TEST_SUITE_P(BatchBoundaries, JoinBoundaryTest,
                         ::testing::Values(0, 1, 1023, 1024, 1025));

// ------------------------------------------- SQL-level mode differential

TEST(ExecModeDifferentialTest, WorkloadAgreesAcrossModes) {
  Database db;
  ASSERT_TRUE(
      db.Execute("CREATE TABLE t (id INTEGER, grp INTEGER, v DOUBLE, "
                 "s VARCHAR)")
          .ok());
  std::vector<std::string> tuples;
  for (int i = 0; i < 3000; ++i) {
    std::string v = (i % 17 == 0) ? "NULL" : std::to_string(i * 0.5);
    std::string s = (i % 23 == 0) ? "NULL" : "'s" + std::to_string(i % 50) + "'";
    tuples.push_back("(" + std::to_string(i) + ", " +
                     std::to_string(i % 7) + ", " + v + ", " + s + ")");
  }
  InsertRows(db, "t", tuples);

  const std::string queries[] = {
      "SELECT * FROM t",
      "SELECT * FROM t WHERE v > 100",
      "SELECT * FROM t WHERE v IS NULL",
      "SELECT id + grp, v * 2 FROM t WHERE grp <= 2",
      "SELECT DISTINCT grp FROM t",
      "SELECT grp, COUNT(*), SUM(v), MIN(s) FROM t GROUP BY grp",
      "SELECT * FROM t ORDER BY grp, id DESC LIMIT 10",
      "SELECT * FROM t ORDER BY id LIMIT 100 OFFSET 2995",
      "SELECT * FROM t WHERE id < 5 UNION ALL SELECT * FROM t "
      "WHERE id >= 2995",
      "WITH big AS (SELECT id, v FROM t WHERE v > 500) "
      "SELECT COUNT(*) FROM big",
      "SELECT a.id FROM t a, t b WHERE a.id = b.id AND a.grp = 0",
      "SELECT x.m FROM (SELECT grp, MAX(v) AS m FROM t GROUP BY grp) x "
      "WHERE x.m > 100",
      "SELECT CASE WHEN grp < 3 THEN 'lo' ELSE 'hi' END, COUNT(*) "
      "FROM t GROUP BY CASE WHEN grp < 3 THEN 'lo' ELSE 'hi' END",
  };
  for (const auto& q : queries) {
    ExpectModesAgree(db, q);
  }
}

TEST(ExecModeDifferentialTest, ProfiledQueryReportsOperatorStats) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER)").ok());
  std::vector<std::string> tuples;
  for (int i = 0; i < 2000; ++i) {
    tuples.push_back("(" + std::to_string(i) + ")");
  }
  InsertRows(db, "t", tuples);
  std::string profile;
  auto qr = db.QueryProfiled("SELECT id FROM t WHERE id >= 1000", &profile);
  ASSERT_TRUE(qr.ok()) << qr.status().ToString();
  EXPECT_EQ(qr->rows.size(), 1000u);
  EXPECT_NE(profile.find("SeqScan(t)"), std::string::npos) << profile;
  EXPECT_NE(profile.find("Filter"), std::string::npos) << profile;
  EXPECT_NE(profile.find("rows=1000"), std::string::npos) << profile;
  EXPECT_NE(profile.find("ms="), std::string::npos) << profile;
}

}  // namespace
}  // namespace rdfrel::sql
