#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace rdfrel::sql {
namespace {

using ast::ExprKind;
using ast::FromKind;
using ast::JoinType;
using ast::StatementKind;

TEST(LexerTest, BasicTokens) {
  auto toks = LexSql("SELECT a.b, 'it''s' FROM t WHERE x <= 1.5 -- c\n;");
  ASSERT_TRUE(toks.ok());
  std::vector<std::string> texts;
  for (const auto& t : *toks) texts.push_back(t.text);
  EXPECT_EQ(texts,
            (std::vector<std::string>{"SELECT", "a", ".", "b", ",", "it's",
                                      "FROM", "t", "WHERE", "x", "<=", "1.5",
                                      ";", ""}));
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_TRUE(LexSql("SELECT 'oops").status().IsParseError());
}

TEST(LexerTest, NumbersAndExponents) {
  auto toks = LexSql("1 2.5 3e4 5e 6E+2");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kInteger);
  EXPECT_EQ((*toks)[1].kind, TokenKind::kFloat);
  EXPECT_EQ((*toks)[2].kind, TokenKind::kFloat);
  EXPECT_EQ((*toks)[3].kind, TokenKind::kInteger);  // "5" then ident "e"
  EXPECT_EQ((*toks)[4].text, "e");
  EXPECT_EQ((*toks)[5].kind, TokenKind::kFloat);
}

TEST(ParserTest, SimpleSelect) {
  auto r = ParseSelect("SELECT a, b FROM t WHERE a = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& stmt = **r;
  ASSERT_EQ(stmt.cores.size(), 1u);
  const auto& core = stmt.cores[0];
  EXPECT_EQ(core.items.size(), 2u);
  EXPECT_EQ(core.from.size(), 1u);
  EXPECT_EQ(core.from[0].table_name, "t");
  EXPECT_EQ(core.from[0].alias, "t");
  ASSERT_NE(core.where, nullptr);
  EXPECT_EQ(core.where->kind, ExprKind::kBinary);
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  auto r = ParseSelect("SELECT x AS a, y b FROM t1 AS u, t2 v");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& core = (*r)->cores[0];
  EXPECT_EQ(core.items[0].alias, "a");
  EXPECT_EQ(core.items[1].alias, "b");
  EXPECT_EQ(core.from[0].alias, "u");
  EXPECT_EQ(core.from[1].alias, "v");
}

TEST(ParserTest, JoinForms) {
  auto r = ParseSelect(
      "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y "
      "JOIN c ON c.z = a.x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& core = (*r)->cores[0];
  ASSERT_EQ(core.from.size(), 3u);
  EXPECT_EQ(core.from[1].join, JoinType::kLeftOuter);
  ASSERT_NE(core.from[1].on, nullptr);
  EXPECT_EQ(core.from[2].join, JoinType::kInner);
}

TEST(ParserTest, WithCtes) {
  auto r = ParseSelect(
      "WITH q1 AS (SELECT a FROM t), q2 AS (SELECT a FROM q1) "
      "SELECT a FROM q2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->ctes.size(), 2u);
  EXPECT_EQ((*r)->ctes[0].name, "q1");
  EXPECT_EQ((*r)->ctes[1].name, "q2");
}

TEST(ParserTest, UnionAllOrderLimit) {
  auto r = ParseSelect(
      "SELECT a FROM t UNION ALL SELECT b FROM u "
      "ORDER BY a DESC, a ASC LIMIT 10 OFFSET 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->cores.size(), 2u);
  ASSERT_EQ((*r)->order_by.size(), 2u);
  EXPECT_TRUE((*r)->order_by[0].descending);
  EXPECT_FALSE((*r)->order_by[1].descending);
  EXPECT_EQ((*r)->limit, 10);
  EXPECT_EQ((*r)->offset, 5);
}

TEST(ParserTest, CaseCoalesceIsNull) {
  auto r = ParseSelect(
      "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END, "
      "COALESCE(b, c, 0), d IS NOT NULL FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& items = (*r)->cores[0].items;
  EXPECT_EQ(items[0].expr->kind, ExprKind::kCase);
  EXPECT_EQ(items[1].expr->kind, ExprKind::kCoalesce);
  EXPECT_EQ(items[1].expr->args.size(), 3u);
  EXPECT_EQ(items[2].expr->kind, ExprKind::kIsNull);
  EXPECT_TRUE(items[2].expr->negated);
}

TEST(ParserTest, Unnest) {
  auto r = ParseSelect(
      "SELECT lt.v FROM t, UNNEST(t.a, t.b) AS lt(v) WHERE lt.v IS NOT NULL");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& f = (*r)->cores[0].from;
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1].kind, FromKind::kUnnest);
  EXPECT_EQ(f[1].unnest_args.size(), 2u);
  EXPECT_EQ(f[1].alias, "lt");
  EXPECT_EQ(f[1].unnest_column, "v");
}

TEST(ParserTest, DerivedTable) {
  auto r = ParseSelect("SELECT q.a FROM (SELECT a FROM t) AS q");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& f = (*r)->cores[0].from;
  EXPECT_EQ(f[0].kind, FromKind::kSubquery);
  EXPECT_EQ(f[0].alias, "q");
}

TEST(ParserTest, DerivedTableRequiresAlias) {
  EXPECT_TRUE(
      ParseSelect("SELECT a FROM (SELECT a FROM t)").status().IsParseError());
}

TEST(ParserTest, OperatorPrecedence) {
  auto r = ParseSelect("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // OR must be the root (AND binds tighter).
  const auto& w = *(*r)->cores[0].where;
  EXPECT_EQ(w.op, ast::BinaryOp::kOr);
  EXPECT_EQ(w.rhs->op, ast::BinaryOp::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto r = ParseSelect("SELECT 1 + 2 * 3 FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& e = *(*r)->cores[0].items[0].expr;
  EXPECT_EQ(e.op, ast::BinaryOp::kAdd);
  EXPECT_EQ(e.rhs->op, ast::BinaryOp::kMul);
}

TEST(ParserTest, CreateTable) {
  auto r = ParseSql(
      "CREATE TABLE t (id BIGINT, name VARCHAR(100), score DOUBLE)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->kind, StatementKind::kCreateTable);
  const auto& ct = *r->create_table;
  EXPECT_EQ(ct.table_name, "t");
  ASSERT_EQ(ct.columns.size(), 3u);
  EXPECT_EQ(ct.columns[0].type, ValueType::kInt64);
  EXPECT_EQ(ct.columns[1].type, ValueType::kString);
  EXPECT_EQ(ct.columns[2].type, ValueType::kDouble);
}

TEST(ParserTest, CreateIndexVariants) {
  auto r1 = ParseSql("CREATE INDEX i1 ON t (id)");
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->create_index->hash);
  auto r2 = ParseSql("CREATE HASH INDEX i2 ON t (id)");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->create_index->hash);
}

TEST(ParserTest, InsertMultiRow) {
  auto r = ParseSql(
      "INSERT INTO t (id, name) VALUES (1, 'a'), (2, NULL)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->kind, StatementKind::kInsert);
  EXPECT_EQ(r->insert->columns.size(), 2u);
  EXPECT_EQ(r->insert->rows.size(), 2u);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_TRUE(ParseSelect("SELECT a FROM t garbage garbage")
                  .status()
                  .IsParseError());
}

TEST(ParserTest, ErrorsCarryParseErrorCode) {
  auto st = ParseSelect("SELECT FROM").status();
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(ParserTest, ExprToStringRoundTripParses) {
  auto r = ParseSelect(
      "SELECT CASE WHEN a = 1 AND b IS NULL THEN COALESCE(c, 5) "
      "ELSE -d END FROM t WHERE NOT (x < 3)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string text = (*r)->cores[0].items[0].expr->ToString();
  // Must be re-parseable as an expression inside a SELECT.
  auto again = ParseSelect("SELECT " + text + " FROM t");
  EXPECT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;
}

}  // namespace
}  // namespace rdfrel::sql
