/// Negative-path tests for the operator-tree / RowBatch verifier
/// (DESIGN.md §8): malformed operator trees are rejected with
/// kInternalPlanError carrying the dotted operator path, and a producer
/// emitting a broken selection vector is caught at the NextBatch boundary.

#include "sql/operator_verifier.h"

#include <gtest/gtest.h>

#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/expression.h"
#include "sql/parallel.h"
#include "sql/row_batch.h"
#include "util/verify.h"

namespace rdfrel::sql {
namespace {

/// An operator yielding a fixed row list with a given scope.
class FixedOp final : public Operator {
 public:
  FixedOp(std::vector<Row> rows, Scope scope) : rows_(std::move(rows)) {
    scope_ = std::move(scope);
  }
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  std::string name() const override { return "Fixed"; }

 protected:
  Result<bool> NextImpl(Row* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

Scope MakeScope(const std::vector<std::string>& names) {
  Scope s;
  for (const auto& n : names) s.Add("t", n);
  return s;
}

OperatorPtr Fixed(std::vector<Row> rows,
                  const std::vector<std::string>& names) {
  return std::make_unique<FixedOp>(std::move(rows), MakeScope(names));
}

std::vector<BoundExprPtr> Exprs(BoundExprPtr e) {
  std::vector<BoundExprPtr> v;
  v.push_back(std::move(e));
  return v;
}

void ExpectPlanError(const Status& st, const std::string& needle) {
  ASSERT_TRUE(st.IsInternalPlanError()) << st.ToString();
  EXPECT_NE(st.message().find(needle), std::string::npos) << st.ToString();
}

// --------------------------------------------------------------- RowBatch

TEST(OperatorVerifierTest, AcceptsDenseBatchAndValidSelection) {
  RowBatch b;
  *b.AddRow() = {Value::Int(1)};
  *b.AddRow() = {Value::Int(2)};
  *b.AddRow() = {Value::Int(3)};
  EXPECT_TRUE(VerifyRowBatch(b).ok());
  b.SetSelection({0, 2});
  EXPECT_TRUE(VerifyRowBatch(b).ok());
}

TEST(OperatorVerifierTest, RejectsSelectionOutOfBounds) {
  RowBatch b;
  *b.AddRow() = {Value::Int(1)};
  *b.AddRow() = {Value::Int(2)};
  b.SetSelection({0, 5});
  ExpectPlanError(VerifyRowBatch(b),
                  "selection[1] = 5 out of bounds for batch of 2 rows");
}

TEST(OperatorVerifierTest, RejectsNonAscendingSelection) {
  RowBatch b;
  *b.AddRow() = {Value::Int(1)};
  *b.AddRow() = {Value::Int(2)};
  *b.AddRow() = {Value::Int(3)};
  b.SetSelection({2, 1});
  ExpectPlanError(VerifyRowBatch(b),
                  "selection[1] = 1 not strictly ascending after 2");
}

TEST(OperatorVerifierTest, RejectsDuplicateSelectionIndex) {
  RowBatch b;
  *b.AddRow() = {Value::Int(1)};
  *b.AddRow() = {Value::Int(2)};
  b.SetSelection({1, 1});
  ExpectPlanError(VerifyRowBatch(b), "not strictly ascending");
}

// ---------------------------------------------------------- operator tree

TEST(OperatorVerifierTest, AcceptsWellFormedTree) {
  auto filter = std::make_unique<FilterOp>(
      Fixed({{Value::Int(1), Value::Int(2)}}, {"a", "b"}), MakeSlotRef(1));
  auto sort = std::make_unique<SortOp>(std::move(filter),
                                       Exprs(MakeSlotRef(0)),
                                       std::vector<bool>{false});
  EXPECT_TRUE(VerifyOperatorTree(*sort).ok());
}

TEST(OperatorVerifierTest, RejectsFilterSlotOutsideChildArity) {
  auto filter = std::make_unique<FilterOp>(
      Fixed({{Value::Int(1)}}, {"a"}), MakeSlotRef(3));
  Status st = VerifyOperatorTree(*filter);
  ExpectPlanError(st, "predicate reads slot 3 outside input arity 1");
  ExpectPlanError(st, "Filter");
}

TEST(OperatorVerifierTest, ReportsDottedPathToNestedOffender) {
  // Sort -> Filter(bad slot): the error must name the full path.
  auto filter = std::make_unique<FilterOp>(
      Fixed({{Value::Int(1)}}, {"a"}), MakeSlotRef(9));
  auto sort = std::make_unique<SortOp>(std::move(filter),
                                       Exprs(MakeSlotRef(0)),
                                       std::vector<bool>{false});
  Status st = VerifyOperatorTree(*sort);
  ExpectPlanError(st, "Sort.0.Filter");
  ExpectPlanError(st, "reads slot 9 outside input arity 1");
}

TEST(OperatorVerifierTest, RejectsHashJoinKeyArityMismatch) {
  auto join = std::make_unique<HashJoinOp>(
      Fixed({{Value::Int(1)}}, {"a"}), Fixed({{Value::Int(1)}}, {"b"}),
      Exprs(MakeSlotRef(0)), std::vector<BoundExprPtr>{},
      /*left_outer=*/false, /*residual=*/nullptr);
  ExpectPlanError(VerifyOperatorTree(*join),
                  "join key arity mismatch: 1 left vs 0 right");
}

TEST(OperatorVerifierTest, RejectsSortKeyDirectionMismatch) {
  auto sort = std::make_unique<SortOp>(Fixed({{Value::Int(1)}}, {"a"}),
                                       Exprs(MakeSlotRef(0)),
                                       std::vector<bool>{});
  ExpectPlanError(VerifyOperatorTree(*sort), "1 keys vs 0 direction flags");
}

TEST(OperatorVerifierTest, RejectsNegativeLimit) {
  auto limit = std::make_unique<LimitOp>(Fixed({{Value::Int(1)}}, {"a"}),
                                         std::optional<int64_t>(-1),
                                         std::nullopt);
  ExpectPlanError(VerifyOperatorTree(*limit), "negative LIMIT");
}

TEST(OperatorVerifierTest, RejectsUnnestArgumentSlotOutOfRange) {
  auto unnest = std::make_unique<UnnestOp>(Fixed({{Value::Int(1)}}, {"a"}),
                                           Exprs(MakeSlotRef(9)), "u",
                                           "elem");
  ExpectPlanError(VerifyOperatorTree(*unnest),
                  "argument 0 reads slot 9 outside input arity 1");
}

// ------------------------------------------- parallel plans (ParallelTest)

std::shared_ptr<const Materialized> MakeMat(size_t rows) {
  auto mat = std::make_shared<Materialized>();
  mat->scope = MakeScope({"a"});
  for (size_t i = 0; i < rows; ++i) {
    mat->rows.push_back({Value::Int(static_cast<int64_t>(i))});
  }
  return mat;
}

/// A morselizable pipeline leaf plus its root, for hand-built exchanges.
struct HandPipeline {
  OperatorPtr root;
  MorselSource* leaf;
};

HandPipeline ScanPipeline(const std::shared_ptr<const Materialized>& mat) {
  auto scan = std::make_unique<MaterializedScanOp>(mat, "t");
  MorselSource* leaf = scan.get();
  return {std::move(scan), leaf};
}

TEST(ParallelTestVerifier, AcceptsWellFormedExchange) {
  auto mat = MakeMat(100);
  std::vector<ExchangeOp::Pipeline> pipelines;
  auto p = ScanPipeline(mat);
  pipelines.push_back({std::move(p.root), p.leaf});
  ExchangeOp ex(std::move(pipelines),
                std::make_shared<MorselDispenser>(100, 10), {});
  EXPECT_TRUE(VerifyOperatorTree(ex).ok());
}

TEST(ParallelTestVerifier, RejectsOrderSensitiveOperatorOnSpine) {
  // Sort inside a parallel pipeline would sort each morsel independently —
  // the verifier must refuse the plan.
  auto mat = MakeMat(100);
  auto p = ScanPipeline(mat);
  auto sort = std::make_unique<SortOp>(std::move(p.root),
                                       Exprs(MakeSlotRef(0)),
                                       std::vector<bool>{false});
  std::vector<ExchangeOp::Pipeline> pipelines;
  pipelines.push_back({std::move(sort), p.leaf});
  ExchangeOp ex(std::move(pipelines),
                std::make_shared<MorselDispenser>(100, 10), {});
  Status st = VerifyOperatorTree(ex);
  ExpectPlanError(st, "not allowed on a parallel pipeline spine");
  ExpectPlanError(st, "Sort");
}

TEST(ParallelTestVerifier, RejectsMismatchedMorselSourceRegistration) {
  auto mat = MakeMat(100);
  auto p = ScanPipeline(mat);
  std::vector<ExchangeOp::Pipeline> pipelines;
  pipelines.push_back({std::move(p.root), /*leaf=*/nullptr});
  ExchangeOp ex(std::move(pipelines),
                std::make_shared<MorselDispenser>(100, 10), {});
  ExpectPlanError(VerifyOperatorTree(ex),
                  "driving leaf does not match its registered morsel source");
}

TEST(ParallelTestVerifier, RejectsPipelineArityMismatch) {
  auto narrow = MakeMat(100);
  auto wide = std::make_shared<Materialized>();
  wide->scope = MakeScope({"a", "b"});
  wide->rows.push_back({Value::Int(1), Value::Int(2)});
  std::vector<ExchangeOp::Pipeline> pipelines;
  auto p0 = ScanPipeline(narrow);
  pipelines.push_back({std::move(p0.root), p0.leaf});
  auto p1 = ScanPipeline(wide);
  pipelines.push_back({std::move(p1.root), p1.leaf});
  ExchangeOp ex(std::move(pipelines),
                std::make_shared<MorselDispenser>(100, 10), {});
  ExpectPlanError(VerifyOperatorTree(ex), "arity");
}

TEST(ParallelTestVerifier, RejectsNestedExchange) {
  auto mat = MakeMat(100);
  std::vector<ExchangeOp::Pipeline> inner_pipes;
  auto pi = ScanPipeline(mat);
  inner_pipes.push_back({std::move(pi.root), pi.leaf});
  auto inner = std::make_unique<ExchangeOp>(
      std::move(inner_pipes), std::make_shared<MorselDispenser>(100, 10),
      std::vector<std::shared_ptr<SharedJoinBuild>>{});
  // An exchange is not a MorselSource, so nesting also breaks the spine
  // walk; register a filter above it to hit the nesting check first... the
  // spine check fires first either way — both rejections are correct.
  std::vector<ExchangeOp::Pipeline> outer_pipes;
  outer_pipes.push_back({std::move(inner), nullptr});
  ExchangeOp ex(std::move(outer_pipes),
                std::make_shared<MorselDispenser>(100, 10), {});
  Status st = VerifyOperatorTree(ex);
  ASSERT_TRUE(st.IsInternalPlanError()) << st.ToString();
}

TEST(ParallelTestVerifier, RejectsMissingDispenser) {
  auto mat = MakeMat(100);
  std::vector<ExchangeOp::Pipeline> pipelines;
  auto p = ScanPipeline(mat);
  pipelines.push_back({std::move(p.root), p.leaf});
  ExchangeOp ex(std::move(pipelines), nullptr, {});
  ExpectPlanError(VerifyOperatorTree(ex), "no morsel dispenser");
}

// ------------------------------------------------- NextBatch verification

/// A producer that violates the RowBatch selection contract.
class BadSelectionOp final : public Operator {
 public:
  BadSelectionOp() { scope_ = MakeScope({"a"}); }
  Status Open() override {
    done_ = false;
    return Status::OK();
  }
  std::string name() const override { return "BadSelection"; }

 protected:
  Result<bool> NextImpl(Row*) override { return false; }
  Result<bool> NextBatchImpl(RowBatch* out) override {
    if (done_) return false;
    done_ = true;
    out->Reset();
    *out->AddRow() = {Value::Int(1)};
    *out->AddRow() = {Value::Int(2)};
    out->SetSelection({1, 0});  // descending: contract violation
    return true;
  }

 private:
  bool done_ = false;
};

TEST(OperatorVerifierTest, NextBatchCatchesBrokenSelectionWhenEnabled) {
  util::SetVerifyPlans(true);
  BadSelectionOp op;
  ASSERT_TRUE(op.Open().ok());
  RowBatch b;
  auto r = op.NextBatch(&b);
  util::ResetVerifyPlans();
  ASSERT_FALSE(r.ok());
  ExpectPlanError(r.status(), "BadSelection");
  ExpectPlanError(r.status(), "not strictly ascending");
}

TEST(OperatorVerifierTest, NextBatchPassesBrokenSelectionWhenDisabled) {
  util::SetVerifyPlans(false);
  BadSelectionOp op;
  ASSERT_TRUE(op.Open().ok());
  RowBatch b;
  auto r = op.NextBatch(&b);
  util::ResetVerifyPlans();
  ASSERT_TRUE(r.ok());  // gate off: the bad batch sails through
  EXPECT_TRUE(*r);
}

}  // namespace
}  // namespace rdfrel::sql
