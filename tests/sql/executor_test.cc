/// Direct unit tests of the physical operators (edge cases that SQL-level
/// tests cannot isolate: rescans via Open(), NULL join keys, empty inputs,
/// residual predicates, operator composition).

#include "sql/executor.h"

#include <gtest/gtest.h>

#include "sql/catalog.h"

namespace rdfrel::sql {
namespace {

/// An operator yielding a fixed row list with a given scope.
class FixedOp final : public Operator {
 public:
  FixedOp(std::vector<Row> rows, Scope scope) : rows_(std::move(rows)) {
    scope_ = std::move(scope);
  }
  Status Open() override {
    pos_ = 0;
    ++open_count_;
    return Status::OK();
  }
  std::string name() const override { return "Fixed"; }
  int open_count() const { return open_count_; }

 protected:
  Result<bool> NextImpl(Row* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
  int open_count_ = 0;
};

Scope MakeScope(const std::vector<std::string>& names,
                const std::string& qual = "t") {
  Scope s;
  for (const auto& n : names) s.Add(qual, n);
  return s;
}

OperatorPtr Fixed(std::vector<Row> rows,
                  const std::vector<std::string>& names,
                  const std::string& qual = "t") {
  return std::make_unique<FixedOp>(std::move(rows), MakeScope(names, qual));
}

BoundExprPtr Slot(int i) { return MakeSlotRef(i); }

TEST(ExecutorTest, CollectRowsReopens) {
  auto op = Fixed({{Value::Int(1)}, {Value::Int(2)}}, {"a"});
  auto r1 = CollectRows(op.get());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->size(), 2u);
  // A second collection must rescan from the start.
  auto r2 = CollectRows(op.get());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 2u);
}

TEST(ExecutorTest, HashJoinNullKeysNeverMatch) {
  auto left = Fixed({{Value::Int(1)}, {Value::Null()}}, {"a"}, "l");
  auto right = Fixed({{Value::Int(1)}, {Value::Null()}}, {"b"}, "r");
  std::vector<BoundExprPtr> lk, rk;
  lk.push_back(Slot(0));
  rk.push_back(Slot(0));
  HashJoinOp join(std::move(left), std::move(right), std::move(lk),
                  std::move(rk), /*left_outer=*/false, nullptr);
  auto rows = CollectRows(&join);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);  // only 1=1; NULL keys drop
  EXPECT_EQ((*rows)[0][0].AsInt(), 1);
}

TEST(ExecutorTest, LeftOuterHashJoinPadsNullKeyRows) {
  auto left = Fixed({{Value::Int(1)}, {Value::Null()}}, {"a"}, "l");
  auto right = Fixed({{Value::Int(1)}}, {"b"}, "r");
  std::vector<BoundExprPtr> lk, rk;
  lk.push_back(Slot(0));
  rk.push_back(Slot(0));
  HashJoinOp join(std::move(left), std::move(right), std::move(lk),
                  std::move(rk), /*left_outer=*/true, nullptr);
  auto rows = CollectRows(&join);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  // The NULL-keyed left row survives padded.
  bool padded = false;
  for (const auto& r : *rows) {
    if (r[0].is_null()) {
      EXPECT_TRUE(r[1].is_null());
      padded = true;
    }
  }
  EXPECT_TRUE(padded);
}

TEST(ExecutorTest, HashJoinResidualFiltersWithinMatches) {
  // Join on a constant key; residual keeps only l.a < r.b.
  auto left = Fixed({{Value::Int(1), Value::Int(7)},
                     {Value::Int(1), Value::Int(9)}},
                    {"k", "a"}, "l");
  auto right = Fixed({{Value::Int(1), Value::Int(8)}}, {"k", "b"}, "r");
  std::vector<BoundExprPtr> lk, rk;
  lk.push_back(Slot(0));
  rk.push_back(Slot(0));
  // Residual over concatenated row: slot1 (l.a) < slot3 (r.b).
  auto lt = std::make_unique<FixedOp>(std::vector<Row>{}, Scope{});
  // Build residual via ast binding is overkill; use a tiny lambda expr:
  class LtExpr final : public BoundExpr {
   public:
    Result<Value> Evaluate(const Row& row) const override {
      if (row[1].is_null() || row[3].is_null()) return Value::Null();
      return Value::Bool(row[1].AsInt() < row[3].AsInt());
    }
  };
  HashJoinOp join(std::move(left), std::move(right), std::move(lk),
                  std::move(rk), false, std::make_unique<LtExpr>());
  auto rows = CollectRows(&join);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1].AsInt(), 7);
}

TEST(ExecutorTest, IndexNLJoinProbesAndPads) {
  Table table("inner", Schema({{"id", ValueType::kInt64},
                               {"v", ValueType::kString}}));
  ASSERT_TRUE(table.CreateIndex("idx", "id", IndexKind::kBTree).ok());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::Str("one")}).ok());
  ASSERT_TRUE(table.Insert({Value::Int(1), Value::Str("uno")}).ok());
  ASSERT_TRUE(table.Insert({Value::Int(2), Value::Str("two")}).ok());

  auto outer = Fixed({{Value::Int(1)}, {Value::Int(3)}, {Value::Null()}},
                     {"k"}, "o");
  IndexNLJoinOp join(std::move(outer), &table, "i", table.FindIndexOn("id"),
                     Slot(0), /*left_outer=*/true, nullptr);
  auto rows = CollectRows(&join);
  ASSERT_TRUE(rows.ok());
  // k=1 matches twice; k=3 and k=NULL pad.
  EXPECT_EQ(rows->size(), 4u);
  int padded = 0;
  for (const auto& r : *rows) {
    if (r[1].is_null()) ++padded;
  }
  EXPECT_EQ(padded, 2);
}

TEST(ExecutorTest, UnionAllEmptyChildren) {
  std::vector<OperatorPtr> kids;
  kids.push_back(Fixed({}, {"a"}));
  kids.push_back(Fixed({{Value::Int(5)}}, {"a"}));
  kids.push_back(Fixed({}, {"a"}));
  UnionAllOp u(std::move(kids));
  auto rows = CollectRows(&u);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 5);
}

TEST(ExecutorTest, DistinctTreatsNullRowsEqual) {
  auto child = Fixed({{Value::Null()}, {Value::Null()}, {Value::Int(1)}},
                     {"a"});
  DistinctOp d(std::move(child));
  auto rows = CollectRows(&d);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(ExecutorTest, SortStableAndNullsFirst) {
  auto child = Fixed({{Value::Int(2), Value::Str("x")},
                      {Value::Null(), Value::Str("y")},
                      {Value::Int(1), Value::Str("z")},
                      {Value::Int(2), Value::Str("w")}},
                     {"a", "tag"});
  std::vector<BoundExprPtr> keys;
  keys.push_back(Slot(0));
  SortOp s(std::move(child), std::move(keys), {false});
  auto rows = CollectRows(&s);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_TRUE((*rows)[0][0].is_null());
  EXPECT_EQ((*rows)[1][0].AsInt(), 1);
  // Stability: the two a=2 rows keep input order (x before w).
  EXPECT_EQ((*rows)[2][1].AsString(), "x");
  EXPECT_EQ((*rows)[3][1].AsString(), "w");
}

TEST(ExecutorTest, UnnestEmitsPerArgumentIncludingNulls) {
  auto child = Fixed({{Value::Int(1), Value::Null()}}, {"a", "b"});
  std::vector<BoundExprPtr> args;
  args.push_back(Slot(0));
  args.push_back(Slot(1));
  UnnestOp u(std::move(child), std::move(args), "lt", "v");
  auto rows = CollectRows(&u);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][2].AsInt(), 1);
  EXPECT_TRUE((*rows)[1][2].is_null());
}

TEST(ExecutorTest, AggregateEmptyKeyedInputYieldsNoGroups) {
  auto child = Fixed({}, {"a"});
  std::vector<BoundExprPtr> keys;
  keys.push_back(Slot(0));
  std::vector<AggregateOp::AggSpec> aggs;
  aggs.push_back({ast::AggFunc::kCount, nullptr, false});
  AggregateOp agg(std::move(child), std::move(keys), std::move(aggs));
  auto rows = CollectRows(&agg);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 0u);
}

TEST(ExecutorTest, AggregateMixedIntDoubleSum) {
  auto child = Fixed({{Value::Int(1)}, {Value::Real(2.5)}}, {"a"});
  std::vector<AggregateOp::AggSpec> aggs;
  aggs.push_back({ast::AggFunc::kSum, Slot(0), false});
  AggregateOp agg(std::move(child), {}, std::move(aggs));
  auto rows = CollectRows(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_DOUBLE_EQ((*rows)[0][0].AsDouble(), 3.5);
}

TEST(ExecutorTest, LimitZeroAndOffsetBeyondEnd) {
  {
    auto child = Fixed({{Value::Int(1)}, {Value::Int(2)}}, {"a"});
    LimitOp l(std::move(child), 0, std::nullopt);
    auto rows = CollectRows(&l);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 0u);
  }
  {
    auto child = Fixed({{Value::Int(1)}, {Value::Int(2)}}, {"a"});
    LimitOp l(std::move(child), std::nullopt, 10);
    auto rows = CollectRows(&l);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 0u);
  }
}

TEST(ExecutorTest, NestedLoopLeftOuterNoRightRows) {
  auto left = Fixed({{Value::Int(1)}}, {"a"}, "l");
  auto right = Fixed({}, {"b"}, "r");
  NestedLoopJoinOp j(std::move(left), std::move(right),
                     /*left_outer=*/true, nullptr);
  auto rows = CollectRows(&j);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_TRUE((*rows)[0][1].is_null());
}

}  // namespace
}  // namespace rdfrel::sql
