#include "sql/value.h"

#include <gtest/gtest.h>

namespace rdfrel::sql {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, Factories) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Real(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
  EXPECT_EQ(Value::Bool(true).AsInt(), 1);
  EXPECT_EQ(Value::Bool(false).AsInt(), 0);
}

TEST(ValueTest, EqualsNonNullNumericWidening) {
  EXPECT_TRUE(Value::Int(5).EqualsNonNull(Value::Real(5.0)));
  EXPECT_FALSE(Value::Int(5).EqualsNonNull(Value::Real(5.5)));
  EXPECT_FALSE(Value::Int(5).EqualsNonNull(Value::Str("5")));
}

TEST(ValueTest, StructuralEqualityTreatsNullEqual) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int(0));
}

TEST(ValueTest, CompareTotalOrder) {
  // NULL < numeric < string.
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_LT(Value::Int(99).Compare(Value::Str("")), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Str("b").Compare(Value::Str("a")), 0);
  EXPECT_EQ(Value::Real(1.5).Compare(Value::Real(1.5)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Real(1.5)), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Real(7.0).Hash());
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
  EXPECT_NE(Value::Int(7).Hash(), Value::Int(8).Hash());
}

TEST(ValueTest, VectorHasherDistinguishesOrder) {
  ValueVectorHasher h;
  std::vector<Value> a = {Value::Int(1), Value::Int(2)};
  std::vector<Value> b = {Value::Int(2), Value::Int(1)};
  EXPECT_NE(h(a), h(b));
}

TEST(ValueTest, Int64Extremes) {
  int64_t max = INT64_MAX, min = INT64_MIN;
  EXPECT_EQ(Value::Int(max).AsInt(), max);
  EXPECT_EQ(Value::Int(min).AsInt(), min);
  EXPECT_LT(Value::Int(min).Compare(Value::Int(max)), 0);
}

}  // namespace
}  // namespace rdfrel::sql
