/// Morsel-driven parallel executor (DESIGN.md §13): unit tests for the
/// dispenser / arena / pool primitives, and engine-level differentials
/// proving that a parallel plan returns *byte-identical* results to the
/// serial plan — same rows, same order — across joins, aggregates, ORDER
/// BY, LIMIT early-exit, and cancellation. Every suite is prefixed
/// ParallelTest so `ctest -R ParallelTest` runs exactly this layer.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sql/database.h"
#include "sql/parallel.h"
#include "util/arena.h"
#include "util/thread_pool.h"

namespace rdfrel::sql {
namespace {

// ---------------------------------------------------------------- primitives

TEST(ParallelTestMorsels, DispenserCoversRangeInOrder) {
  MorselDispenser d(/*total_units=*/103, /*units_per_morsel=*/10);
  EXPECT_EQ(d.total_morsels(), 11u);
  uint64_t expect_begin = 0;
  uint64_t index = 0;
  while (auto m = d.Claim()) {
    EXPECT_EQ(m->index, index);
    EXPECT_EQ(m->begin, expect_begin);
    EXPECT_EQ(m->end, std::min<uint64_t>(expect_begin + 10, 103));
    expect_begin = m->end;
    ++index;
  }
  EXPECT_EQ(index, 11u);
  EXPECT_EQ(expect_begin, 103u);
  EXPECT_TRUE(d.Exhausted());
}

TEST(ParallelTestMorsels, DispenserAbortStopsClaims) {
  MorselDispenser d(100, 10);
  ASSERT_TRUE(d.Claim().has_value());
  d.Abort();
  EXPECT_FALSE(d.Claim().has_value());
  EXPECT_TRUE(d.aborted());
  EXPECT_TRUE(d.Exhausted());
}

TEST(ParallelTestMorsels, DispenserConcurrentClaimsArePartition) {
  MorselDispenser d(10000, 7);
  std::atomic<uint64_t> units{0};
  std::atomic<uint64_t> morsels{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (auto m = d.Claim()) {
        units.fetch_add(m->end - m->begin);
        morsels.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(units.load(), 10000u);
  EXPECT_EQ(morsels.load(), d.total_morsels());
}

TEST(ParallelTestArena, AllocatesAlignedAndTracksBytes) {
  util::QueryArena arena;
  void* a = arena.Allocate(13, 8);
  void* b = arena.Allocate(64, 64);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  // Oversized allocations bypass the slab but still come from the arena.
  void* big = arena.Allocate(util::QueryArena::kSlabBytes * 2);
  EXPECT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), util::QueryArena::kSlabBytes * 2);
}

TEST(ParallelTestArena, ConcurrentAllocationsAreDistinct) {
  util::QueryArena arena;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<void*>> ptrs(4);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&arena, &ptrs, t] {
      for (int i = 0; i < kPerThread; ++i) {
        void* p = arena.Allocate(24);
        // touch: TSan sees rival writes if shared
        std::memset(p, static_cast<int>(t), 24);
        ptrs[t].push_back(p);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<void*> all;
  for (const auto& v : ptrs) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(4 * kPerThread));
}

TEST(ParallelTestArena, StlAllocatorAdapterWorks) {
  util::QueryArena arena;
  std::vector<int, util::ArenaAllocator<int>> v{
      util::ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 10000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 10000u);
  EXPECT_EQ(v[9999], 9999);
  EXPECT_GT(arena.bytes_reserved(), 0u);
}

TEST(ParallelTestPool, ExecutesEverySubmittedTask) {
  util::ThreadPool pool(3);
  std::atomic<int> count{0};
  constexpr int kTasks = 500;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < kTasks) std::this_thread::yield();
  EXPECT_EQ(count.load(), kTasks);
  auto s = pool.stats();
  EXPECT_EQ(s.workers, 3u);
  EXPECT_EQ(s.submitted, static_cast<uint64_t>(kTasks));
  EXPECT_EQ(s.executed, static_cast<uint64_t>(kTasks));
}

TEST(ParallelTestBuild, SoloIsClaimedExactlyOnce) {
  SharedJoinBuild b(/*build_dispenser=*/nullptr);
  EXPECT_TRUE(b.TryClaimSolo());
  EXPECT_FALSE(b.TryClaimSolo());
  b.Insert({Value::Int(1)}, 0, Row{Value::Int(1)});
  b.Insert({Value::Int(1)}, 1, Row{Value::Int(2)});
  b.FinishSolo(Status::OK());
  ASSERT_TRUE(b.WaitBuilt(nullptr).ok());
  const std::vector<Row>* rows = b.Lookup({Value::Int(1)});
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 1);  // serial order restored
  EXPECT_EQ((*rows)[1][0].AsInt(), 2);
  EXPECT_EQ(b.Lookup({Value::Int(9)}), nullptr);
}

TEST(ParallelTestBuild, CooperativeSealRestoresSeqOrder) {
  auto d = std::make_shared<MorselDispenser>(4, 2);
  SharedJoinBuild b(d);
  ASSERT_TRUE(b.BeginParticipate());
  // Insert out of order; seq tags define the serial order.
  b.Insert({Value::Int(7)}, /*seq=*/(2ull << 40), Row{Value::Int(30)});
  b.Insert({Value::Int(7)}, /*seq=*/(0ull << 40) + 1, Row{Value::Int(20)});
  b.Insert({Value::Int(7)}, /*seq=*/(0ull << 40), Row{Value::Int(10)});
  while (d->Claim()) {  // drain so EndParticipate can seal
  }
  b.EndParticipate(Status::OK());
  ASSERT_TRUE(b.WaitBuilt(nullptr).ok());
  const std::vector<Row>* rows = b.Lookup({Value::Int(7)});
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 10);
  EXPECT_EQ((*rows)[1][0].AsInt(), 20);
  EXPECT_EQ((*rows)[2][0].AsInt(), 30);
}

TEST(ParallelTestBuild, FailedParticipantPoisonsWaiters) {
  auto d = std::make_shared<MorselDispenser>(4, 2);
  SharedJoinBuild b(d);
  ASSERT_TRUE(b.BeginParticipate());
  b.EndParticipate(Status::Internal("simulated build failure"));
  Status st = b.WaitBuilt(nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(b.built());
}

// ------------------------------------------------------------- engine level

/// A database with enough rows that small morsels split into many units.
class ParallelTestEngine : public ::testing::Test {
 protected:
  static constexpr int kRows = 3000;

  void SetUp() override {
    Exec("CREATE TABLE fact (id BIGINT, grp BIGINT, val BIGINT)");
    Exec("CREATE TABLE dim (grp BIGINT, label VARCHAR)");
    for (int g = 0; g < 10; ++g) {
      Exec("INSERT INTO dim VALUES (" + std::to_string(g) + ", 'g" +
           std::to_string(g) + "')");
    }
    // Chunked inserts keep statement size bounded.
    for (int base = 0; base < kRows; base += 500) {
      std::string sql = "INSERT INTO fact VALUES ";
      for (int i = base; i < base + 500; ++i) {
        if (i != base) sql += ", ";
        sql += "(" + std::to_string(i) + ", " + std::to_string(i % 10) +
               ", " + std::to_string(i * 7 % 101) + ")";
      }
      Exec(sql);
    }
  }

  void Exec(const std::string& sql) {
    auto r = db_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  /// Runs \p sql with the given thread request and collects all rows.
  Result<std::vector<Row>> Run(const std::string& sql, unsigned threads,
                               uint32_t morsel_rows = 64) {
    ExecOptions exec;
    exec.max_threads = threads;
    exec.morsel_rows = morsel_rows;
    exec.parallel_min_rows = 0;
    std::vector<Row> out;
    RDFREL_RETURN_NOT_OK(db_.QueryStreaming(
        sql, exec, nullptr, [&](const RowBatch& batch) -> Status {
          for (size_t r = 0; r < batch.ActiveSize(); ++r) {
            out.push_back(batch.Active(r));
          }
          return Status::OK();
        }));
    return out;
  }

  /// Serial vs parallel must agree row-for-row, in order.
  void ExpectIdentical(const std::string& sql) {
    auto serial = Run(sql, 1);
    ASSERT_TRUE(serial.ok()) << sql << " -> " << serial.status().ToString();
    for (unsigned threads : {2u, 4u}) {
      auto par = Run(sql, threads);
      ASSERT_TRUE(par.ok()) << sql << " -> " << par.status().ToString();
      ASSERT_EQ(serial->size(), par->size()) << sql << " threads=" << threads;
      for (size_t i = 0; i < serial->size(); ++i) {
        ASSERT_EQ((*serial)[i].size(), (*par)[i].size());
        for (size_t c = 0; c < (*serial)[i].size(); ++c) {
          ASSERT_EQ((*serial)[i][c].ToString(), (*par)[i][c].ToString())
              << sql << " threads=" << threads << " row " << i << " col "
              << c;
        }
      }
    }
  }

  Database db_;
};

TEST_F(ParallelTestEngine, ScanFilterProjectIdentical) {
  ExpectIdentical("SELECT id, val * 2 FROM fact WHERE val > 50");
}

TEST_F(ParallelTestEngine, HashJoinIdentical) {
  ExpectIdentical(
      "SELECT f.id, d.label FROM fact f, dim d "
      "WHERE f.grp = d.grp AND f.val > 30");
}

TEST_F(ParallelTestEngine, AggregateIdentical) {
  ExpectIdentical(
      "SELECT grp, COUNT(*), SUM(val) FROM fact GROUP BY grp");
}

TEST_F(ParallelTestEngine, JoinAggregateIdentical) {
  ExpectIdentical(
      "SELECT d.label, COUNT(*) FROM fact f, dim d "
      "WHERE f.grp = d.grp GROUP BY d.label");
}

TEST_F(ParallelTestEngine, OrderByIdentical) {
  ExpectIdentical(
      "SELECT id, val FROM fact WHERE grp = 3 ORDER BY val DESC, id");
}

TEST_F(ParallelTestEngine, DistinctIdentical) {
  ExpectIdentical("SELECT DISTINCT val FROM fact");
}

TEST_F(ParallelTestEngine, LimitTearsDownExchangeCleanly) {
  // LIMIT closes the tree after a handful of batches; the exchange dtor
  // must abort and join its workers without deadlock or leak (ASan/TSan
  // jobs exercise this hardest).
  for (int rep = 0; rep < 5; ++rep) {
    auto rows = Run("SELECT id FROM fact LIMIT 10", 4);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ASSERT_EQ(rows->size(), 10u);
    for (size_t i = 0; i < 10; ++i) {
      // serial order preserved
      EXPECT_EQ((*rows)[i][0].AsInt(), static_cast<int64_t>(i));
    }
  }
}

TEST_F(ParallelTestEngine, CancellationSurfacesAndJoinsWorkers) {
  std::atomic<bool> cancel{false};
  ExecControl control;
  control.cancel = &cancel;
  ExecOptions exec;
  exec.control = &control;
  exec.max_threads = 4;
  exec.morsel_rows = 16;
  exec.parallel_min_rows = 0;
  int batches = 0;
  Status st = db_.QueryStreaming(
      "SELECT f1.id FROM fact f1, fact f2 WHERE f1.grp = f2.grp",
      exec, nullptr, [&](const RowBatch&) -> Status {
        if (++batches == 2) cancel.store(true);
        return Status::OK();
      });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
}

TEST_F(ParallelTestEngine, ExplainShowsExchangeCounters) {
  ExecOptions exec;
  exec.max_threads = 4;
  exec.morsel_rows = 64;
  exec.parallel_min_rows = 0;
  std::string profile;
  auto r = db_.QueryProfiled("SELECT id FROM fact WHERE val > 10", &profile,
                             &exec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(profile.find("Exchange"), std::string::npos) << profile;
  EXPECT_NE(profile.find("morsels="), std::string::npos) << profile;
  EXPECT_NE(profile.find("workers="), std::string::npos) << profile;
  EXPECT_NE(profile.find("arena_bytes="), std::string::npos) << profile;
}

TEST_F(ParallelTestEngine, SmallInputCutoffKeepsSerialPlan) {
  ExecOptions exec;
  exec.max_threads = 4;
  // Default parallel_min_rows (8192) > kRows: plan must stay serial.
  std::string profile;
  auto r = db_.QueryProfiled("SELECT id FROM fact", &profile, &exec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(profile.find("Exchange"), std::string::npos) << profile;
}

TEST_F(ParallelTestEngine, SubqueryMaterializedOncePerQuery) {
  // The FROM-subquery materializes during planning; pipeline clones must
  // share one materialization (and agree with the serial run).
  ExpectIdentical(
      "SELECT f.id, s.c FROM fact f, "
      "(SELECT grp AS g, COUNT(*) AS c FROM fact GROUP BY grp) s "
      "WHERE f.grp = s.g AND f.val > 90");
}

TEST_F(ParallelTestEngine, UnionAllIdentical) {
  ExpectIdentical(
      "SELECT id FROM fact WHERE val > 95 "
      "UNION ALL SELECT id FROM fact WHERE val < 5");
}

TEST_F(ParallelTestEngine, StatsCountersAdvance) {
  const uint64_t before =
      GlobalParallelExecStats().queries.load(std::memory_order_relaxed);
  auto rows = Run("SELECT id FROM fact", 4);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), static_cast<size_t>(kRows));
  EXPECT_GT(GlobalParallelExecStats().queries.load(std::memory_order_relaxed),
            before);
}

}  // namespace
}  // namespace rdfrel::sql
