#include "sql/catalog.h"

#include <gtest/gtest.h>

#include "sql/hash_index.h"

namespace rdfrel::sql {
namespace {

Schema PeopleSchema() {
  return Schema({{"id", ValueType::kInt64}, {"name", ValueType::kString}});
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog cat;
  auto t = cat.CreateTable("People", PeopleSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(cat.HasTable("people"));  // case-insensitive
  EXPECT_TRUE(cat.GetTable("PEOPLE").ok());
  EXPECT_TRUE(cat.CreateTable("people", PeopleSchema())
                  .status()
                  .IsAlreadyExists());
  ASSERT_TRUE(cat.DropTable("People").ok());
  EXPECT_FALSE(cat.HasTable("people"));
  EXPECT_TRUE(cat.DropTable("people").IsNotFound());
}

TEST(CatalogTest, TableNamesListed) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("b", PeopleSchema()).ok());
  ASSERT_TRUE(cat.CreateTable("a", PeopleSchema()).ok());
  auto names = cat.TableNames();
  ASSERT_EQ(names.size(), 2u);
}

TEST(TableTest, IndexMaintainedOnInsert) {
  Table t("people", PeopleSchema());
  ASSERT_TRUE(t.CreateIndex("idx_id", "id", IndexKind::kBTree).ok());
  auto rid = t.Insert({Value::Int(1), Value::Str("ann")});
  ASSERT_TRUE(rid.ok());
  const IndexInfo* idx = t.FindIndexOn("id");
  ASSERT_NE(idx, nullptr);
  auto rids = idx->Lookup(Value::Int(1));
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0], *rid);
}

TEST(TableTest, IndexBackfillsExistingRows) {
  Table t("people", PeopleSchema());
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::Str("a")}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(2), Value::Str("b")}).ok());
  ASSERT_TRUE(t.CreateIndex("idx_id", "id", IndexKind::kHash).ok());
  const IndexInfo* idx = t.FindIndexOn("id");
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->Lookup(Value::Int(2)).size(), 1u);
}

TEST(TableTest, IndexFollowsUpdateAndDelete) {
  Table t("people", PeopleSchema());
  ASSERT_TRUE(t.CreateIndex("idx_id", "id", IndexKind::kBTree).ok());
  auto rid = t.Insert({Value::Int(1), Value::Str("ann")});
  ASSERT_TRUE(rid.ok());
  auto rid2 = t.Update(*rid, {Value::Int(99), Value::Str("ann")});
  ASSERT_TRUE(rid2.ok());
  const IndexInfo* idx = t.FindIndexOn("id");
  EXPECT_TRUE(idx->Lookup(Value::Int(1)).empty());
  EXPECT_EQ(idx->Lookup(Value::Int(99)).size(), 1u);
  ASSERT_TRUE(t.Delete(*rid2).ok());
  EXPECT_TRUE(idx->Lookup(Value::Int(99)).empty());
}

TEST(TableTest, NullKeysNotIndexed) {
  Table t("people", PeopleSchema());
  ASSERT_TRUE(t.CreateIndex("idx_id", "id", IndexKind::kBTree).ok());
  ASSERT_TRUE(t.Insert({Value::Null(), Value::Str("ghost")}).ok());
  const IndexInfo* idx = t.FindIndexOn("id");
  EXPECT_EQ(idx->Lookup(Value::Null()).size(), 0u);
}

TEST(TableTest, DuplicateIndexRejected) {
  Table t("people", PeopleSchema());
  ASSERT_TRUE(t.CreateIndex("idx", "id", IndexKind::kBTree).ok());
  EXPECT_TRUE(
      t.CreateIndex("idx", "name", IndexKind::kBTree).IsAlreadyExists());
  EXPECT_TRUE(
      t.CreateIndex("idx2", "missing", IndexKind::kBTree).IsNotFound());
}

TEST(HashIndexTest, Basics) {
  HashIndex idx;
  idx.Insert(Value::Str("a"), RowId{0, 1});
  idx.Insert(Value::Str("a"), RowId{0, 2});
  idx.Insert(Value::Str("a"), RowId{0, 1});  // dup ignored
  idx.Insert(Value::Str("b"), RowId{1, 0});
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.num_keys(), 2u);
  EXPECT_EQ(idx.Lookup(Value::Str("a")).size(), 2u);
  EXPECT_TRUE(idx.Lookup(Value::Str("zzz")).empty());
  EXPECT_TRUE(idx.Remove(Value::Str("a"), RowId{0, 1}));
  EXPECT_FALSE(idx.Remove(Value::Str("a"), RowId{0, 1}));
  EXPECT_EQ(idx.Lookup(Value::Str("a")).size(), 1u);
  EXPECT_TRUE(idx.Remove(Value::Str("b"), RowId{1, 0}));
  EXPECT_FALSE(idx.Contains(Value::Str("b")));
}

}  // namespace
}  // namespace rdfrel::sql
