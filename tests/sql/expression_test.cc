#include "sql/expression.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace rdfrel::sql {
namespace {

/// Parses `expr` (as a SELECT item) and binds it against a scope with
/// columns a, b, c (unqualified) holding the given row.
class ExprEval {
 public:
  ExprEval() {
    scope_.Add("t", "a");
    scope_.Add("t", "b");
    scope_.Add("t", "c");
  }

  Result<Value> Eval(const std::string& text, Row row) {
    auto sel = ParseSelect("SELECT " + text + " FROM dummy");
    if (!sel.ok()) return sel.status();
    RDFREL_ASSIGN_OR_RETURN(
        BoundExprPtr bound,
        BindExpr(*(*sel)->cores[0].items[0].expr, scope_));
    return bound->Evaluate(row);
  }

 private:
  Scope scope_;
};

TEST(ScopeTest, ResolveQualifiedAndUnqualified) {
  Scope s;
  s.Add("t", "x");
  s.Add("u", "y");
  EXPECT_EQ(*s.Resolve("t", "x"), 0);
  EXPECT_EQ(*s.Resolve("", "y"), 1);
  EXPECT_TRUE(s.Resolve("u", "x").status().IsNotFound());
  EXPECT_TRUE(s.Resolve("", "z").status().IsNotFound());
}

TEST(ScopeTest, AmbiguousUnqualified) {
  Scope s;
  s.Add("t", "x");
  s.Add("u", "x");
  EXPECT_TRUE(s.Resolve("", "x").status().IsInvalidArgument());
  EXPECT_EQ(*s.Resolve("u", "x"), 1);
}

TEST(ScopeTest, CaseInsensitive) {
  Scope s;
  s.Add("T", "EntryCol");
  EXPECT_EQ(*s.Resolve("t", "entrycol"), 0);
  EXPECT_EQ(*s.Resolve("T", "ENTRYCOL"), 0);
}

TEST(ExprTest, ArithmeticAndComparison) {
  ExprEval e;
  Row r = {Value::Int(10), Value::Int(3), Value::Null()};
  EXPECT_EQ(e.Eval("a + b", r)->AsInt(), 13);
  EXPECT_EQ(e.Eval("a - b", r)->AsInt(), 7);
  EXPECT_EQ(e.Eval("a * b", r)->AsInt(), 30);
  EXPECT_DOUBLE_EQ(e.Eval("a / b", r)->AsDouble(), 10.0 / 3.0);
  EXPECT_EQ(e.Eval("a > b", r)->AsInt(), 1);
  EXPECT_EQ(e.Eval("a <= b", r)->AsInt(), 0);
  EXPECT_EQ(e.Eval("a = 10", r)->AsInt(), 1);
  EXPECT_EQ(e.Eval("a <> 10", r)->AsInt(), 0);
}

TEST(ExprTest, NullPropagation) {
  ExprEval e;
  Row r = {Value::Int(10), Value::Null(), Value::Null()};
  EXPECT_TRUE(e.Eval("a + b", r)->is_null());
  EXPECT_TRUE(e.Eval("b = b", r)->is_null());
  EXPECT_TRUE(e.Eval("b < 1", r)->is_null());
  EXPECT_TRUE(e.Eval("NOT b", r)->is_null());
  EXPECT_TRUE(e.Eval("-b", r)->is_null());
}

TEST(ExprTest, ThreeValuedAndOr) {
  ExprEval e;
  Row r = {Value::Int(1), Value::Int(0), Value::Null()};
  // AND: F dominates NULL.
  EXPECT_EQ(e.Eval("b = 1 AND c = 1", r)->AsInt(), 0);
  EXPECT_TRUE(e.Eval("a = 1 AND c = 1", r)->is_null());
  // OR: T dominates NULL.
  EXPECT_EQ(e.Eval("a = 1 OR c = 1", r)->AsInt(), 1);
  EXPECT_TRUE(e.Eval("b = 1 OR c = 1", r)->is_null());
}

TEST(ExprTest, IsNull) {
  ExprEval e;
  Row r = {Value::Int(1), Value::Null(), Value::Null()};
  EXPECT_EQ(e.Eval("a IS NULL", r)->AsInt(), 0);
  EXPECT_EQ(e.Eval("b IS NULL", r)->AsInt(), 1);
  EXPECT_EQ(e.Eval("b IS NOT NULL", r)->AsInt(), 0);
  EXPECT_EQ(e.Eval("a IS NOT NULL", r)->AsInt(), 1);
}

TEST(ExprTest, CaseSearchedForm) {
  ExprEval e;
  Row r = {Value::Int(2), Value::Int(0), Value::Null()};
  auto v = e.Eval(
      "CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END", r);
  EXPECT_EQ(v->AsString(), "two");
  auto v2 = e.Eval("CASE WHEN a = 9 THEN 'nine' END", r);
  EXPECT_TRUE(v2->is_null());
  // NULL condition does not select the branch.
  auto v3 = e.Eval("CASE WHEN c = 1 THEN 'x' ELSE 'y' END", r);
  EXPECT_EQ(v3->AsString(), "y");
}

TEST(ExprTest, Coalesce) {
  ExprEval e;
  Row r = {Value::Null(), Value::Int(5), Value::Null()};
  EXPECT_EQ(e.Eval("COALESCE(a, b, 9)", r)->AsInt(), 5);
  EXPECT_EQ(e.Eval("COALESCE(a, c, 9)", r)->AsInt(), 9);
  EXPECT_TRUE(e.Eval("COALESCE(a, c)", r)->is_null());
}

TEST(ExprTest, StringEquality) {
  ExprEval e;
  Row r = {Value::Str("x"), Value::Str("y"), Value::Null()};
  EXPECT_EQ(e.Eval("a = 'x'", r)->AsInt(), 1);
  EXPECT_EQ(e.Eval("a = b", r)->AsInt(), 0);
  EXPECT_EQ(e.Eval("a < b", r)->AsInt(), 1);
}

TEST(ExprTest, ErrorsAsStatuses) {
  ExprEval e;
  Row r = {Value::Str("x"), Value::Int(1), Value::Int(0)};
  // Strings are not predicates.
  EXPECT_TRUE(e.Eval("a AND b = 1", r).status().IsExecutionError());
  // Mixed-type ordered comparison.
  EXPECT_TRUE(e.Eval("a < b", r).status().IsExecutionError());
  // Arithmetic on strings.
  EXPECT_TRUE(e.Eval("a + 1", r).status().IsExecutionError());
  // Division by zero.
  EXPECT_TRUE(e.Eval("b / c", r).status().IsExecutionError());
  // Unknown column.
  EXPECT_TRUE(e.Eval("zzz", r).status().IsNotFound());
}

TEST(ExprTest, EvalPredicateNullIsFalse) {
  Scope s;
  s.Add("t", "a");
  auto sel = ParseSelect("SELECT a = 1 FROM d");
  ASSERT_TRUE(sel.ok());
  auto bound = BindExpr(*(*sel)->cores[0].items[0].expr, s);
  ASSERT_TRUE(bound.ok());
  auto pass = EvalPredicate(**bound, {Value::Null()});
  ASSERT_TRUE(pass.ok());
  EXPECT_FALSE(*pass);
}

TEST(ExprTest, CollectConjunctsFlattensAndOnly) {
  auto sel = ParseSelect(
      "SELECT x FROM t WHERE a = 1 AND (b = 2 OR c = 3) AND d = 4");
  ASSERT_TRUE(sel.ok());
  std::vector<const ast::Expr*> list;
  CollectConjuncts(*(*sel)->cores[0].where, &list);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[1]->op, ast::BinaryOp::kOr);
}

TEST(ExprTest, CoverageCheck) {
  Scope s;
  s.Add("t", "a");
  auto sel = ParseSelect("SELECT x FROM t WHERE t.a = 1 AND u.b = 2");
  ASSERT_TRUE(sel.ok());
  std::vector<const ast::Expr*> list;
  CollectConjuncts(*(*sel)->cores[0].where, &list);
  EXPECT_TRUE(ExprCoveredByScope(*list[0], s));
  EXPECT_FALSE(ExprCoveredByScope(*list[1], s));
}

}  // namespace
}  // namespace rdfrel::sql
