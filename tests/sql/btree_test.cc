#include "sql/btree.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rdfrel::sql {
namespace {

RowId Rid(uint32_t n) { return RowId{n / 100, n % 100}; }

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.Lookup(Value::Int(1)).empty());
  EXPECT_FALSE(t.Contains(Value::Int(1)));
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(BPlusTreeTest, InsertLookupSingle) {
  BPlusTree t;
  t.Insert(Value::Int(5), Rid(1));
  auto rids = t.Lookup(Value::Int(5));
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0], Rid(1));
  EXPECT_TRUE(t.Contains(Value::Int(5)));
  EXPECT_FALSE(t.Contains(Value::Int(6)));
}

TEST(BPlusTreeTest, DuplicateKeysAccumulate) {
  BPlusTree t;
  t.Insert(Value::Int(5), Rid(1));
  t.Insert(Value::Int(5), Rid(2));
  t.Insert(Value::Int(5), Rid(1));  // duplicate posting ignored
  EXPECT_EQ(t.Lookup(Value::Int(5)).size(), 2u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.num_keys(), 1u);
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree t(/*fanout=*/4);
  for (uint32_t i = 0; i < 100; ++i) t.Insert(Value::Int(i), Rid(i));
  EXPECT_GT(t.height(), 1u);
  EXPECT_TRUE(t.CheckInvariants().ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(t.Lookup(Value::Int(i)).size(), 1u) << "key " << i;
  }
}

TEST(BPlusTreeTest, StringKeys) {
  BPlusTree t(4);
  for (int i = 0; i < 50; ++i) {
    t.Insert(Value::Str("key" + std::to_string(i)),
             Rid(static_cast<uint32_t>(i)));
  }
  EXPECT_TRUE(t.CheckInvariants().ok());
  EXPECT_EQ(t.Lookup(Value::Str("key42")).size(), 1u);
  EXPECT_TRUE(t.Lookup(Value::Str("nope")).empty());
}

TEST(BPlusTreeTest, RemovePostings) {
  BPlusTree t(4);
  t.Insert(Value::Int(1), Rid(10));
  t.Insert(Value::Int(1), Rid(11));
  EXPECT_TRUE(t.Remove(Value::Int(1), Rid(10)));
  EXPECT_EQ(t.Lookup(Value::Int(1)).size(), 1u);
  EXPECT_TRUE(t.Remove(Value::Int(1), Rid(11)));
  EXPECT_FALSE(t.Contains(Value::Int(1)));
  EXPECT_FALSE(t.Remove(Value::Int(1), Rid(11)));
  EXPECT_FALSE(t.Remove(Value::Int(99), Rid(0)));
  EXPECT_EQ(t.size(), 0u);
}

TEST(BPlusTreeTest, RangeScanInclusive) {
  BPlusTree t(4);
  for (uint32_t i = 0; i < 100; i += 2) t.Insert(Value::Int(i), Rid(i));
  std::vector<int64_t> seen;
  t.Range(Value::Int(10), Value::Int(20), [&](const Value& k, RowId) {
    seen.push_back(k.AsInt());
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{10, 12, 14, 16, 18, 20}));
}

TEST(BPlusTreeTest, RangeUnboundedAndEarlyStop) {
  BPlusTree t(4);
  for (uint32_t i = 0; i < 30; ++i) t.Insert(Value::Int(i), Rid(i));
  int count = 0;
  t.Range(std::nullopt, std::nullopt, [&](const Value&, RowId) {
    return ++count < 7;
  });
  EXPECT_EQ(count, 7);
}

TEST(BPlusTreeTest, ScanAllOrdered) {
  BPlusTree t(4);
  std::vector<int> keys = {42, 7, 19, 3, 88, 61, 5, 70, 1, 33};
  for (int k : keys) {
    t.Insert(Value::Int(k), Rid(static_cast<uint32_t>(k)));
  }
  std::vector<int64_t> seen;
  t.ScanAll([&](const Value& k, RowId) {
    seen.push_back(k.AsInt());
    return true;
  });
  std::vector<int64_t> expect(keys.begin(), keys.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(seen, expect);
}

// ------------------------ Parameterized property sweep ---------------------

struct BTreeParam {
  size_t fanout;
  int num_keys;
  uint64_t seed;
};

class BTreePropertyTest : public ::testing::TestWithParam<BTreeParam> {};

TEST_P(BTreePropertyTest, RandomInsertRemoveMatchesReferenceSet) {
  const auto& p = GetParam();
  BPlusTree t(p.fanout);
  Random rng(p.seed);
  std::set<std::pair<int64_t, uint32_t>> reference;

  // Random inserts (with duplicates).
  for (int i = 0; i < p.num_keys; ++i) {
    int64_t key = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(p.num_keys / 2 + 1)));
    uint32_t rid = static_cast<uint32_t>(rng.Uniform(1000));
    t.Insert(Value::Int(key), Rid(rid));
    reference.insert({key, rid});
  }
  ASSERT_TRUE(t.CheckInvariants().ok());
  EXPECT_EQ(t.size(), reference.size());

  // Every reference key lookup agrees.
  for (const auto& [key, rid] : reference) {
    auto rids = t.Lookup(Value::Int(key));
    EXPECT_TRUE(std::find(rids.begin(), rids.end(), Rid(rid)) != rids.end());
  }

  // Remove a random half.
  std::vector<std::pair<int64_t, uint32_t>> items(reference.begin(),
                                                  reference.end());
  for (size_t i = 0; i < items.size(); i += 2) {
    EXPECT_TRUE(t.Remove(Value::Int(items[i].first), Rid(items[i].second)));
    reference.erase(items[i]);
  }
  ASSERT_TRUE(t.CheckInvariants().ok());
  EXPECT_EQ(t.size(), reference.size());

  // Ordered scan equals the sorted reference multiset.
  std::vector<std::pair<int64_t, uint32_t>> scanned;
  t.ScanAll([&](const Value& k, RowId rid) {
    scanned.push_back({k.AsInt(), rid.page * 100 + rid.slot});
    return true;
  });
  EXPECT_EQ(scanned.size(), reference.size());
  for (size_t i = 1; i < scanned.size(); ++i) {
    EXPECT_LE(scanned[i - 1].first, scanned[i].first);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreePropertyTest,
    ::testing::Values(BTreeParam{4, 200, 1}, BTreeParam{4, 2000, 2},
                      BTreeParam{8, 2000, 3}, BTreeParam{64, 2000, 4},
                      BTreeParam{64, 20000, 5}, BTreeParam{5, 999, 6}),
    [](const ::testing::TestParamInfo<BTreeParam>& param_info) {
      return "fanout" + std::to_string(param_info.param.fanout) + "_n" +
             std::to_string(param_info.param.num_keys) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace rdfrel::sql
