#include <gtest/gtest.h>

#include "sql/heap_file.h"
#include "sql/page.h"
#include "sql/row.h"
#include "sql/table_storage.h"

namespace rdfrel::sql {
namespace {

Schema TestSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"name", ValueType::kString},
                 {"score", ValueType::kDouble}});
}

TEST(RowSerdeTest, RoundTrip) {
  Schema s = TestSchema();
  Row row = {Value::Int(7), Value::Str("alice"), Value::Real(3.25)};
  std::string bytes;
  ASSERT_TRUE(SerializeRow(s, row, &bytes).ok());
  auto back = DeserializeRow(s, bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, row);
}

TEST(RowSerdeTest, NullsCostNothingButBitmap) {
  Schema s = TestSchema();
  Row all_null = {Value::Null(), Value::Null(), Value::Null()};
  std::string bytes;
  ASSERT_TRUE(SerializeRow(s, all_null, &bytes).ok());
  EXPECT_EQ(bytes.size(), 1u);  // 3 columns -> 1 bitmap byte
  auto back = DeserializeRow(s, bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, all_null);
}

TEST(RowSerdeTest, WideNullHeavyRowStaysCompact) {
  // 100 int columns, 2 populated: bitmap 13 bytes + 16 value bytes.
  std::vector<ColumnDef> cols;
  for (int i = 0; i < 100; ++i) {
    cols.push_back({"c" + std::to_string(i), ValueType::kInt64});
  }
  Schema s(std::move(cols));
  Row row(100);
  row[3] = Value::Int(1);
  row[97] = Value::Int(2);
  EXPECT_EQ(SerializedRowSize(s, row), 13u + 16u);
}

TEST(RowSerdeTest, IntWidensIntoDoubleColumn) {
  Schema s({{"d", ValueType::kDouble}});
  Row row = {Value::Int(4)};
  std::string bytes;
  ASSERT_TRUE(SerializeRow(s, row, &bytes).ok());
  auto back = DeserializeRow(s, bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0].AsDouble(), 4.0);
}

TEST(RowSerdeTest, TypeMismatchRejected) {
  Schema s({{"i", ValueType::kInt64}});
  std::string bytes;
  EXPECT_TRUE(SerializeRow(s, {Value::Str("x")}, &bytes)
                  .IsInvalidArgument());
  EXPECT_TRUE(SerializeRow(s, {}, &bytes).IsInvalidArgument());
}

TEST(RowSerdeTest, SerializedSizeMatchesActual) {
  Schema s = TestSchema();
  Row row = {Value::Int(7), Value::Str("some name here"), Value::Null()};
  std::string bytes;
  ASSERT_TRUE(SerializeRow(s, row, &bytes).ok());
  EXPECT_EQ(bytes.size(), SerializedRowSize(s, row));
}

TEST(PageTest, InsertGetDelete) {
  Page p(1024);
  auto s1 = p.Insert("hello");
  ASSERT_TRUE(s1.ok());
  auto s2 = p.Insert("world!");
  ASSERT_TRUE(s2.ok());
  EXPECT_NE(*s1, *s2);
  EXPECT_EQ(*p.Get(*s1), "hello");
  EXPECT_EQ(*p.Get(*s2), "world!");
  ASSERT_TRUE(p.Delete(*s1).ok());
  EXPECT_TRUE(p.Get(*s1).status().IsNotFound());
  EXPECT_TRUE(p.Delete(*s1).IsNotFound());
  EXPECT_EQ(*p.Get(*s2), "world!");
}

TEST(PageTest, FillsUntilCapacity) {
  Page p(256);
  int inserted = 0;
  while (true) {
    auto r = p.Insert("0123456789");
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsCapacityExceeded());
      break;
    }
    ++inserted;
  }
  EXPECT_GT(inserted, 5);
  EXPECT_LT(inserted, 26);
}

TEST(PageTest, UpdateInPlaceAndGrow) {
  Page p(256);
  auto slot = p.Insert("aaaaaaaaaa");
  ASSERT_TRUE(slot.ok());
  // Shrink in place.
  ASSERT_TRUE(p.Update(*slot, "bb").ok());
  EXPECT_EQ(*p.Get(*slot), "bb");
  // Grow within page free space.
  ASSERT_TRUE(p.Update(*slot, "cccccccccccccccc").ok());
  EXPECT_EQ(*p.Get(*slot), "cccccccccccccccc");
}

TEST(PageTest, UpdateOverflowSignalsCapacity) {
  Page p(128);
  auto slot = p.Insert("x");
  ASSERT_TRUE(slot.ok());
  std::string big(500, 'y');
  EXPECT_TRUE(p.Update(*slot, big).IsCapacityExceeded());
  EXPECT_EQ(*p.Get(*slot), "x");  // unchanged
}

TEST(PageTest, LiveAndDeadBytes) {
  Page p(1024);
  auto a = p.Insert("12345");
  auto b = p.Insert("123");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(p.LiveBytes(), 8u);
  ASSERT_TRUE(p.Delete(*a).ok());
  EXPECT_EQ(p.LiveBytes(), 3u);
  EXPECT_EQ(p.DeadBytes(), 5u);
}

TEST(HeapFileTest, SpansPages) {
  HeapFile h(256);
  std::vector<RowId> rids;
  for (int i = 0; i < 100; ++i) {
    auto r = h.Insert("payload-" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    rids.push_back(*r);
  }
  EXPECT_GT(h.num_pages(), 1u);
  for (size_t i = 0; i < 100; ++i) {
    auto cell = h.Get(rids[i]);
    ASSERT_TRUE(cell.ok());
    EXPECT_EQ(*cell, "payload-" + std::to_string(i));
  }
}

TEST(HeapFileTest, OversizeCellRejected) {
  HeapFile h(128);
  std::string big(1000, 'z');
  EXPECT_TRUE(h.Insert(big).status().IsCapacityExceeded());
}

TEST(HeapFileTest, UpdateMayRelocate) {
  HeapFile h(256);
  auto rid = h.Insert("small");
  ASSERT_TRUE(rid.ok());
  // Fill the page so the grown cell cannot stay.
  while (true) {
    auto r = h.Insert("fill-fill-fill-fill");
    ASSERT_TRUE(r.ok());
    if (r->page != rid->page) break;
  }
  std::string grown(100, 'g');
  auto new_rid = h.Update(*rid, grown);
  ASSERT_TRUE(new_rid.ok());
  EXPECT_FALSE(*new_rid == *rid);
  EXPECT_EQ(*h.Get(*new_rid), grown);
  EXPECT_TRUE(h.Get(*rid).status().IsNotFound());
}

TEST(HeapFileTest, ScanVisitsLiveOnly) {
  HeapFile h(256);
  auto a = h.Insert("a");
  auto b = h.Insert("b");
  auto c = h.Insert("c");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(h.Delete(*b).ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(h.Scan([&](RowId, std::string_view cell) {
                 seen.emplace_back(cell);
                 return Status::OK();
               }).ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "c"}));
}

TEST(TableStorageTest, CrudRoundTrip) {
  TableStorage t(TestSchema(), 512);
  Row r1 = {Value::Int(1), Value::Str("a"), Value::Real(0.5)};
  Row r2 = {Value::Int(2), Value::Null(), Value::Null()};
  auto rid1 = t.Insert(r1);
  auto rid2 = t.Insert(r2);
  ASSERT_TRUE(rid1.ok() && rid2.ok());
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(*t.Get(*rid1), r1);
  EXPECT_EQ(*t.Get(*rid2), r2);

  Row r1b = {Value::Int(1), Value::Str("a-updated"), Value::Real(0.7)};
  auto rid1b = t.Update(*rid1, r1b);
  ASSERT_TRUE(rid1b.ok());
  EXPECT_EQ(*t.Get(*rid1b), r1b);

  ASSERT_TRUE(t.Delete(*rid2).ok());
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableStorageTest, ManyRowsScanCount) {
  TableStorage t(TestSchema());
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(
        t.Insert({Value::Int(i), Value::Str("n" + std::to_string(i)),
                  Value::Real(i * 0.5)})
            .ok());
  }
  size_t count = 0;
  ASSERT_TRUE(t.Scan([&](RowId, const Row&) {
                 ++count;
                 return Status::OK();
               }).ok());
  EXPECT_EQ(count, 5000u);
  EXPECT_GT(t.num_pages(), 1u);
}

}  // namespace
}  // namespace rdfrel::sql
