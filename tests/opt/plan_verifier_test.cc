/// Negative-path tests for the plan/IR verifier (DESIGN.md §8): hand-built
/// malformed flow choice lists and exec trees must be rejected with
/// kInternalPlanError and a dotted path to the offending node, while
/// everything the real builders produce verifies cleanly.

#include "opt/plan_verifier.h"

#include <gtest/gtest.h>

#include "opt/cost_model.h"
#include "opt/data_flow_graph.h"
#include "opt/exec_tree.h"
#include "opt/flow_tree.h"
#include "opt/statistics.h"
#include "schema/hash_mapping.h"
#include "sparql/parser.h"

namespace rdfrel::opt {
namespace {

using rdf::Term;

/// A small graph with every predicate the test queries mention, so the
/// cost model has real statistics to chew on.
rdf::Graph TestGraph() {
  rdf::Graph g;
  for (int i = 0; i < 4; ++i) {
    std::string s = "s" + std::to_string(i);
    g.Add({Term::Iri(s), Term::Iri("p"), Term::Iri("o" + std::to_string(i))});
    g.Add({Term::Iri(s), Term::Iri("q"), Term::Literal("v")});
    g.Add({Term::Iri("o" + std::to_string(i)), Term::Iri("r"),
           Term::Literal("w")});
  }
  return g;
}

sparql::Query Parse(const std::string& body) {
  auto q = sparql::ParseQuery("PREFIX : <> SELECT * WHERE { " + body + " }");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(*q);
}

/// Parsed query plus its data flow graph, the raw material for both the
/// positive paths and the hand-mutated negative ones.
struct Ctx {
  rdf::Graph graph = TestGraph();
  Statistics stats;
  sparql::Query query;
  DataFlowGraph dfg;

  explicit Ctx(const std::string& body)
      : stats(Statistics::FromGraph(graph, 0)),
        query(Parse(body)),
        dfg(DataFlowGraph::Build(query,
                                 CostModel(&stats, &graph.dictionary()))) {}
};

FlowChoice Choice(int triple, AccessMethod m, int parent, int rank) {
  FlowChoice c;
  c.triple_id = triple;
  c.method = m;
  c.parent_triple = parent;
  c.rank = rank;
  return c;
}

void ExpectPlanError(const Status& st, const std::string& needle) {
  ASSERT_TRUE(st.IsInternalPlanError()) << st.ToString();
  EXPECT_NE(st.message().find(needle), std::string::npos) << st.ToString();
}

// ------------------------------------------------------------- flow: valid

TEST(PlanVerifierTest, GreedyFlowVerifiesStrict) {
  Ctx c("?x :p ?y . ?y :r ?w . OPTIONAL { ?x :q ?v }");
  FlowTree flow = GreedyFlowTree(c.dfg);
  EXPECT_TRUE(VerifyFlowTree(c.dfg, flow).ok());
}

TEST(PlanVerifierTest, ExhaustiveFlowVerifiesStrict) {
  Ctx c("?x :p ?y . ?y :r ?w");
  auto flow = ExhaustiveFlowTree(c.dfg, 10);
  ASSERT_TRUE(flow.ok());
  EXPECT_TRUE(VerifyFlowTree(c.dfg, *flow).ok());
}

TEST(PlanVerifierTest, ParseOrderFlowVerifiesRelaxed) {
  Ctx c("?x :p ?y . ?y :r ?w");
  FlowTree flow = ParseOrderFlowTree(c.dfg);
  EXPECT_TRUE(
      VerifyFlowTree(c.dfg, flow, FlowVerifyLevel::kRelaxed).ok());
}

// ---------------------------------------------------------- flow: negative

TEST(PlanVerifierTest, RejectsDuplicateTripleCoverage) {
  Ctx c("?x :p ?y . ?y :r ?w");
  std::vector<FlowChoice> bad = {Choice(1, AccessMethod::kScan, 0, 0),
                                 Choice(1, AccessMethod::kScan, 0, 1)};
  Status st = VerifyFlowChoices(c.dfg, bad);
  ExpectPlanError(st, "triple covered more than once");
  ExpectPlanError(st, "flow.choice[1] (t1)");
}

TEST(PlanVerifierTest, RejectsTripleIdOutOfRange) {
  Ctx c("?x :p ?y . ?y :r ?w");
  std::vector<FlowChoice> bad = {Choice(9, AccessMethod::kScan, 0, 0),
                                 Choice(2, AccessMethod::kScan, 0, 1)};
  ExpectPlanError(VerifyFlowChoices(c.dfg, bad),
                  "triple id out of range [1, 2]");
}

TEST(PlanVerifierTest, RejectsRankPositionMismatch) {
  Ctx c("?x :p ?y . ?y :r ?w");
  std::vector<FlowChoice> bad = {Choice(1, AccessMethod::kScan, 0, 0),
                                 Choice(2, AccessMethod::kScan, 0, 5)};
  ExpectPlanError(VerifyFlowChoices(c.dfg, bad),
                  "rank 5 does not match position");
}

TEST(PlanVerifierTest, RejectsUnknownFeedingTriple) {
  Ctx c("?x :p ?y . ?y :r ?w");
  std::vector<FlowChoice> bad = {Choice(1, AccessMethod::kScan, 0, 0),
                                 Choice(2, AccessMethod::kScan, 7, 1)};
  ExpectPlanError(VerifyFlowChoices(c.dfg, bad), "fed by unknown triple t7");
}

TEST(PlanVerifierTest, RejectsFeedingFromLaterChoice) {
  Ctx c("?x :p ?y . ?y :r ?w");
  std::vector<FlowChoice> bad = {Choice(1, AccessMethod::kScan, 2, 0),
                                 Choice(2, AccessMethod::kScan, 0, 1)};
  Status st = VerifyFlowChoices(c.dfg, bad);
  ExpectPlanError(st, "fed by t2 which is not chosen earlier");
  ExpectPlanError(st, "flow.choice[0] (t1)");
}

TEST(PlanVerifierTest, RejectsRequiredVarNotProducedByParent) {
  Ctx c("?x :p ?y . ?y :r ?w");
  // t2 via acs requires ?y bound, but it is fed straight from the root.
  std::vector<FlowChoice> bad = {Choice(1, AccessMethod::kScan, 0, 0),
                                 Choice(2, AccessMethod::kAcs, 0, 1)};
  ExpectPlanError(VerifyFlowChoices(c.dfg, bad),
                  "required variable ?y not produced by feeding triple t0");
}

TEST(PlanVerifierTest, RejectsUnboundRequiredVarRelaxed) {
  Ctx c("?x :p ?y . ?y :r ?w");
  // Even the relaxed level demands ?x be bound by *some* earlier choice.
  std::vector<FlowChoice> bad = {Choice(1, AccessMethod::kAcs, 0, 0),
                                 Choice(2, AccessMethod::kScan, 0, 1)};
  ExpectPlanError(
      VerifyFlowChoices(c.dfg, bad, FlowVerifyLevel::kRelaxed),
      "required variable ?x not bound by any earlier choice");
}

TEST(PlanVerifierTest, RejectsFeedAcrossUnionBoundary) {
  Ctx c("{ ?x :p ?y } UNION { ?x :q ?z }");
  // t2 fed by t1 from the other UNION branch (Definition 3.6 violation).
  std::vector<FlowChoice> bad = {Choice(1, AccessMethod::kScan, 0, 0),
                                 Choice(2, AccessMethod::kAcs, 1, 1)};
  ExpectPlanError(VerifyFlowChoices(c.dfg, bad),
                  "fed across a UNION boundary by t1");
}

TEST(PlanVerifierTest, RejectsBindingsEscapingAnOptional) {
  Ctx c("?x :p ?y . OPTIONAL { ?x :q ?z } ?x :r ?w");
  // Mandatory t3 fed by optional t2 (Definition 3.7 violation).
  std::vector<FlowChoice> bad = {Choice(1, AccessMethod::kScan, 0, 0),
                                 Choice(2, AccessMethod::kAcs, 1, 1),
                                 Choice(3, AccessMethod::kAcs, 2, 2)};
  Status st = VerifyFlowChoices(c.dfg, bad);
  ExpectPlanError(st, "bindings escape an OPTIONAL via t2");
  ExpectPlanError(st, "flow.choice[2] (t3)");
}

// ------------------------------------------------------------- exec: valid

TEST(PlanVerifierTest, BuiltExecTreeVerifies) {
  Ctx c("?x :p ?y . ?y :r ?w . OPTIONAL { ?x :q ?v }");
  FlowTree flow = GreedyFlowTree(c.dfg);
  auto plan = BuildExecTree(c.query, flow, /*late_fusing=*/true);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(VerifyExecTree(**plan, c.query).ok());
}

// ---------------------------------------------------------- exec: negative

TEST(PlanVerifierTest, RejectsOptionalWithTwoChildren) {
  Ctx c("?x :p ?y . ?x :q ?z");
  auto root = std::make_unique<ExecNode>();
  root->kind = ExecKind::kOptional;
  root->children.push_back(
      MakeTripleNode(c.dfg.tree().Triple(1), AccessMethod::kScan));
  root->children.push_back(
      MakeTripleNode(c.dfg.tree().Triple(2), AccessMethod::kScan));
  Status st = VerifyExecTree(*root, c.query);
  ExpectPlanError(st, "OPTIONAL must have exactly one child");
  ExpectPlanError(st, "plan.opt");
}

TEST(PlanVerifierTest, RejectsSingleChildAndWithoutFilters) {
  Ctx c("?x :p ?y");
  auto root = std::make_unique<ExecNode>();
  root->kind = ExecKind::kAnd;
  root->children.push_back(
      MakeTripleNode(c.dfg.tree().Triple(1), AccessMethod::kScan));
  Status st = VerifyExecTree(*root, c.query);
  ExpectPlanError(st,
                  "AND must have two children or one child plus filters");
  ExpectPlanError(st, "plan.and");
}

TEST(PlanVerifierTest, RejectsTripleAnsweredTwice) {
  Ctx c("?x :p ?y . ?x :q ?z");
  auto root = std::make_unique<ExecNode>();
  root->kind = ExecKind::kAnd;
  root->children.push_back(
      MakeTripleNode(c.dfg.tree().Triple(1), AccessMethod::kScan));
  root->children.push_back(
      MakeTripleNode(c.dfg.tree().Triple(1), AccessMethod::kScan));
  ExpectPlanError(VerifyExecTree(*root, c.query),
                  "triple t1 answered 2 times");
}

TEST(PlanVerifierTest, RejectsUnansweredTriple) {
  Ctx c("?x :p ?y . ?x :q ?z");
  auto root = MakeTripleNode(c.dfg.tree().Triple(1), AccessMethod::kScan);
  ExpectPlanError(VerifyExecTree(*root, c.query),
                  "triple t2 is not answered");
}

TEST(PlanVerifierTest, RejectsStarWithOneMember) {
  Ctx c("?x :p ?y . ?x :q ?z");
  auto root = std::make_unique<ExecNode>();
  root->kind = ExecKind::kStar;
  root->method = AccessMethod::kScan;
  root->star_triples = {c.dfg.tree().Triple(1)};
  root->star_optional = {false};
  Status st = VerifyExecTree(*root, c.query);
  ExpectPlanError(st, "star with fewer than two members");
  ExpectPlanError(st, "plan.star");
}

TEST(PlanVerifierTest, RejectsOptionalFirstStarMember) {
  Ctx c("?x :p ?y . ?x :q ?z");
  auto root = std::make_unique<ExecNode>();
  root->kind = ExecKind::kStar;
  root->method = AccessMethod::kScan;
  root->star_triples = {c.dfg.tree().Triple(1), c.dfg.tree().Triple(2)};
  root->star_optional = {true, false};
  ExpectPlanError(VerifyExecTree(*root, c.query),
                  "first star member must be mandatory");
}

TEST(PlanVerifierTest, RejectsStarMembersWithDifferentEntries) {
  Ctx c("?x :p ?y . ?z :q ?w");
  auto root = std::make_unique<ExecNode>();
  root->kind = ExecKind::kStar;
  root->method = AccessMethod::kScan;  // entry = subject: ?x vs ?z
  root->star_triples = {c.dfg.tree().Triple(1), c.dfg.tree().Triple(2)};
  root->star_optional = {false, false};
  Status st = VerifyExecTree(*root, c.query);
  ExpectPlanError(st, "entry differs from the star's shared entry");
  ExpectPlanError(st, "plan.star.member[1] (t2)");
}

TEST(PlanVerifierTest, RejectsOptionalMemberInDisjunctiveStar) {
  Ctx c("?x :p ?y . ?x :q ?z");
  auto root = std::make_unique<ExecNode>();
  root->kind = ExecKind::kStar;
  root->method = AccessMethod::kScan;
  root->star_semantics = StarSemantics::kDisjunctive;
  root->star_triples = {c.dfg.tree().Triple(1), c.dfg.tree().Triple(2)};
  root->star_optional = {false, true};
  ExpectPlanError(VerifyExecTree(*root, c.query),
                  "OPTIONAL member in a disjunctive star");
}

TEST(PlanVerifierTest, RejectsSchemaColumnCountMismatch) {
  Ctx c("?x :p ?y");
  auto root = MakeTripleNode(c.dfg.tree().Triple(1), AccessMethod::kScan);
  // The mapping was built for k=4 but the schema claims k=8 columns.
  auto mapping = std::make_shared<schema::HashMapping>(4, 2, 1);
  PlanVerifyContext ctx;
  ctx.direct = mapping.get();
  ctx.k_direct = 8;
  Status st = VerifyExecTree(*root, c.query, ctx);
  ExpectPlanError(st, "DPH mapping has 4 columns, schema has 8");
  ExpectPlanError(st, "plan.t1");
}

}  // namespace
}  // namespace rdfrel::opt
