#include <gtest/gtest.h>

#include "opt/cost_model.h"
#include "opt/data_flow_graph.h"
#include "opt/exec_tree.h"
#include "opt/flow_tree.h"
#include "opt/merge.h"
#include "opt/statistics.h"
#include "sparql/parser.h"

namespace rdfrel::opt {
namespace {

using rdf::Term;
using sparql::PatternKind;

/// A dataset shaped like the paper's running example (Figure 6): few
/// "Software" companies (selective aco), many people living in Palo Alto
/// (unselective aco on t1), founders/members/developers/revenue/employees.
rdf::Graph ExampleGraph() {
  rdf::Graph g;
  auto iri = [](const std::string& s) { return Term::Iri(s); };
  auto lit = [](const std::string& s) { return Term::Literal(s); };
  // 2 software companies.
  for (int c = 0; c < 2; ++c) {
    std::string comp = "Comp" + std::to_string(c);
    g.Add({iri(comp), iri("industry"), lit("Software")});
    g.Add({iri(comp), iri("revenue"), lit("R" + std::to_string(c))});
    g.Add({iri(comp), iri("employees"), lit("E" + std::to_string(c))});
    g.Add({iri("Product" + std::to_string(c)), iri("developer"), iri(comp)});
    g.Add({iri("Person" + std::to_string(c)), iri("founder"), iri(comp)});
    g.Add({iri("Person" + std::to_string(c)), iri("member"), iri(comp)});
  }
  // 30 people at home in Palo Alto (makes ?x home "Palo Alto" unselective).
  for (int p = 0; p < 30; ++p) {
    g.Add({iri("Person" + std::to_string(p)), iri("home"), lit("Palo Alto")});
  }
  // Plus assorted non-software companies.
  for (int c = 2; c < 12; ++c) {
    std::string comp = "Comp" + std::to_string(c);
    g.Add({iri(comp), iri("industry"), lit("Retail")});
  }
  return g;
}

sparql::Query Figure6Query() {
  auto q = sparql::ParseQuery(R"(
    PREFIX : <>
    SELECT * WHERE {
      ?x :home "Palo Alto" .
      { ?x :founder ?y } UNION { ?x :member ?y }
      ?y :industry "Software" .
      ?z :developer ?y .
      ?y :revenue ?n .
      OPTIONAL { ?y :employees ?m }
    })");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(*q);
}

struct Fixture {
  rdf::Graph graph = ExampleGraph();
  Statistics stats;
  sparql::Query query = Figure6Query();

  Fixture() { stats = Statistics::FromGraph(graph, 0); }
  CostModel cost() const { return CostModel(&stats, &graph.dictionary()); }
};

TEST(StatisticsTest, BasicCounts) {
  rdf::Graph g;
  g.Add({Term::Iri("a"), Term::Iri("p"), Term::Iri("x")});
  g.Add({Term::Iri("a"), Term::Iri("p"), Term::Iri("y")});
  g.Add({Term::Iri("b"), Term::Iri("q"), Term::Iri("x")});
  Statistics s = Statistics::FromGraph(g, 0);
  EXPECT_EQ(s.total_triples(), 3u);
  EXPECT_EQ(s.distinct_subjects(), 2u);
  EXPECT_EQ(s.distinct_objects(), 2u);
  EXPECT_DOUBLE_EQ(s.avg_triples_per_subject(), 1.5);
  EXPECT_DOUBLE_EQ(s.avg_triples_per_object(), 1.5);
  uint64_t a = g.dictionary().Lookup(Term::Iri("a"));
  uint64_t x = g.dictionary().Lookup(Term::Iri("x"));
  uint64_t p = g.dictionary().Lookup(Term::Iri("p"));
  EXPECT_DOUBLE_EQ(s.EstimateBySubject(a), 2.0);
  EXPECT_DOUBLE_EQ(s.EstimateByObject(x), 2.0);
  EXPECT_EQ(s.CountByPredicate(p), 2u);
}

TEST(StatisticsTest, TopKFallsBackToAverage) {
  rdf::Graph g;
  // One hot subject with 10 triples, 10 cold subjects with 1 each.
  for (int i = 0; i < 10; ++i) {
    g.Add({Term::Iri("hot"), Term::Iri("p"), Term::Iri("o" + std::to_string(i))});
    g.Add({Term::Iri("cold" + std::to_string(i)), Term::Iri("p"),
           Term::Iri("x")});
  }
  Statistics s = Statistics::FromGraph(g, 1);
  uint64_t hot = g.dictionary().Lookup(Term::Iri("hot"));
  uint64_t cold = g.dictionary().Lookup(Term::Iri("cold3"));
  EXPECT_DOUBLE_EQ(s.EstimateBySubject(hot), 10.0);  // exact (top-1)
  EXPECT_DOUBLE_EQ(s.EstimateBySubject(cold),
                   s.avg_triples_per_subject());  // averaged
}

TEST(CostModelTest, PaperExampleOrdering) {
  Fixture s;
  CostModel cm = s.cost();
  std::vector<const sparql::TriplePattern*> ts;
  s.query.where->CollectTriples(&ts);
  const auto& t1 = *ts[0];  // ?x home "Palo Alto"
  const auto& t4 = *ts[3];  // ?y industry "Software"
  // Scan costs the whole dataset.
  EXPECT_DOUBLE_EQ(cm.Tmc(t4, AccessMethod::kScan),
                   static_cast<double>(s.stats.total_triples()));
  // aco on "Software" is selective (2 companies).
  EXPECT_DOUBLE_EQ(cm.Tmc(t4, AccessMethod::kAco), 2.0);
  // aco on "Palo Alto" is not (30 residents).
  EXPECT_DOUBLE_EQ(cm.Tmc(t1, AccessMethod::kAco), 30.0);
  // acs with unbound-var subject costs the average.
  EXPECT_GT(cm.Tmc(t1, AccessMethod::kAcs), 0.0);
  EXPECT_LT(cm.Tmc(t1, AccessMethod::kAcs), 30.0);
}

TEST(CostModelTest, UnknownConstantNearZero) {
  Fixture s;
  auto q = sparql::ParseQuery(
      "SELECT * WHERE { ?x <industry> \"Quantum\" }");
  ASSERT_TRUE(q.ok());
  std::vector<const sparql::TriplePattern*> ts;
  q->where->CollectTriples(&ts);
  EXPECT_LT(s.cost().Tmc(*ts[0], AccessMethod::kAco), 1.0);
}

TEST(QueryTreeIndexTest, LcaAndConnectivity) {
  Fixture s;
  QueryTreeIndex tree(*s.query.where);
  ASSERT_EQ(tree.num_triples(), 7);
  // t2 and t3 are the UNION branches.
  EXPECT_TRUE(tree.OrConnected(2, 3));
  EXPECT_FALSE(tree.OrConnected(1, 4));
  // t7 is optional with respect to t6 but not vice versa.
  EXPECT_TRUE(tree.OptionalConnected(6, 7));
  EXPECT_FALSE(tree.OptionalConnected(7, 6));
  EXPECT_TRUE(tree.OptionalConnected(1, 7));
  // LCA of t2, t3 is the OR node.
  EXPECT_EQ(tree.Lca(2, 3)->kind, PatternKind::kOr);
  EXPECT_EQ(tree.Lca(1, 4)->kind, PatternKind::kAnd);
}

TEST(DataFlowGraphTest, EdgesRespectGuards) {
  Fixture s;
  CostModel cm = s.cost();
  DataFlowGraph g = DataFlowGraph::Build(s.query, cm);
  // 7 triples x 3 methods + root.
  EXPECT_EQ(g.nodes().size(), 1u + 21u);

  auto node_index = [&](int t, AccessMethod m) {
    for (size_t i = 1; i < g.nodes().size(); ++i) {
      if (g.nodes()[i].triple_id == t && g.nodes()[i].method == m) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  auto has_edge = [&](int from, int to) {
    for (const auto& e : g.edges()) {
      if (e.from == from && e.to == to) return true;
    }
    return false;
  };

  // Root edge to (t4, aco): constant object, no requirements.
  EXPECT_TRUE(has_edge(0, node_index(4, AccessMethod::kAco)));
  // (t4, aco) produces ?y which (t2, aco) requires.
  EXPECT_TRUE(has_edge(node_index(4, AccessMethod::kAco),
                       node_index(2, AccessMethod::kAco)));
  // No flow between the UNION branches t2 and t3.
  EXPECT_FALSE(has_edge(node_index(2, AccessMethod::kAco),
                        node_index(3, AccessMethod::kAco)));
  EXPECT_FALSE(has_edge(node_index(3, AccessMethod::kAco),
                        node_index(2, AccessMethod::kAco)));
  // No flow out of the OPTIONAL t7 into mandatory t6.
  EXPECT_FALSE(has_edge(node_index(7, AccessMethod::kAcs),
                        node_index(6, AccessMethod::kAcs)));
  // But flow INTO the optional is fine.
  EXPECT_TRUE(has_edge(node_index(6, AccessMethod::kAcs),
                       node_index(7, AccessMethod::kAcs)));
  // Scan nodes always have root edges.
  EXPECT_TRUE(has_edge(0, node_index(1, AccessMethod::kScan)));
}

TEST(FlowTreeTest, GreedyCoversAllTriplesOnce) {
  Fixture s;
  CostModel cm = s.cost();
  DataFlowGraph g = DataFlowGraph::Build(s.query, cm);
  FlowTree flow = GreedyFlowTree(g);
  ASSERT_EQ(flow.choices().size(), 7u);
  std::set<int> seen;
  for (const auto& c : flow.choices()) {
    EXPECT_TRUE(seen.insert(c.triple_id).second);
  }
  // The cheapest start is the selective (t4, aco): cost 2.
  EXPECT_EQ(flow.choices()[0].triple_id, 4);
  EXPECT_EQ(flow.choices()[0].method, AccessMethod::kAco);
  EXPECT_EQ(flow.choices()[0].parent_triple, 0);
  // t1 must NOT be evaluated by the expensive Palo Alto aco; the flow binds
  // ?x first (via t2/t3) and then uses acs.
  EXPECT_EQ(flow.ChoiceFor(1).method, AccessMethod::kAcs);
}

TEST(FlowTreeTest, LeafDetection) {
  Fixture s;
  CostModel cm = s.cost();
  DataFlowGraph g = DataFlowGraph::Build(s.query, cm);
  FlowTree flow = GreedyFlowTree(g);
  // t4 feeds others; t7 (optional tail) feeds nothing.
  EXPECT_FALSE(flow.IsLeaf(4));
  EXPECT_TRUE(flow.IsLeaf(7));
}

TEST(FlowTreeTest, ExhaustiveNoWorseThanGreedy) {
  Fixture s;
  CostModel cm = s.cost();
  DataFlowGraph g = DataFlowGraph::Build(s.query, cm);
  FlowTree greedy = GreedyFlowTree(g);
  auto best = ExhaustiveFlowTree(g, 7);
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_LE(best->TotalCost(), greedy.TotalCost() + 1e-9);
  EXPECT_EQ(best->choices().size(), 7u);
}

TEST(FlowTreeTest, ExhaustiveRejectsBigQueries) {
  Fixture s;
  CostModel cm = s.cost();
  DataFlowGraph g = DataFlowGraph::Build(s.query, cm);
  EXPECT_TRUE(ExhaustiveFlowTree(g, 3).status().IsInvalidArgument());
}

TEST(ExecTreeTest, StructureRespectsPatternSemantics) {
  Fixture s;
  CostModel cm = s.cost();
  DataFlowGraph g = DataFlowGraph::Build(s.query, cm);
  FlowTree flow = GreedyFlowTree(g);
  auto tree = BuildExecTree(s.query, flow);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const ExecNode& root = **tree;
  ASSERT_EQ(root.kind, ExecKind::kAnd);
  // Contains exactly one OR node (the union) and one OPTIONAL node, and the
  // OPTIONAL is the last child (late fusing defers it).
  int ors = 0, opts = 0;
  for (const auto& c : root.children) {
    if (c->kind == ExecKind::kOr) ++ors;
    if (c->kind == ExecKind::kOptional) ++opts;
  }
  EXPECT_EQ(ors, 1);
  EXPECT_EQ(opts, 1);
  EXPECT_EQ(root.children.back()->kind, ExecKind::kOptional);
  // All 7 triples appear exactly once.
  std::string dump = root.ToString();
  for (int t = 1; t <= 7; ++t) {
    std::string label = "t" + std::to_string(t);
    EXPECT_NE(dump.find(label), std::string::npos) << dump;
  }
}

TEST(ExecTreeTest, FlowOrderDrivesFusion) {
  Fixture s;
  CostModel cm = s.cost();
  DataFlowGraph g = DataFlowGraph::Build(s.query, cm);
  FlowTree flow = GreedyFlowTree(g);
  auto tree = BuildExecTree(s.query, flow);
  ASSERT_TRUE(tree.ok());
  // First child of the root AND must involve t4 (the selective entry point
  // chosen by the flow), not t1 (parse order).
  const ExecNode& first = *(*tree)->children.front();
  ASSERT_EQ(first.kind, ExecKind::kTriple);
  EXPECT_EQ(first.triple->id, 4);

  // Ablation: without late fusing, parse order wins.
  auto naive = BuildExecTree(s.query, flow, /*late_fusing=*/false);
  ASSERT_TRUE(naive.ok());
  const ExecNode& nfirst = *(*naive)->children.front();
  ASSERT_EQ(nfirst.kind, ExecKind::kTriple);
  EXPECT_EQ(nfirst.triple->id, 1);
}

TEST(MergeTest, Definitions39Through311) {
  Fixture s;
  QueryTreeIndex tree(*s.query.where);
  // t2, t3 are OR-mergeable but not AND-mergeable.
  EXPECT_TRUE(OrMergeable(tree, 2, 3));
  EXPECT_FALSE(AndMergeable(tree, 2, 3));
  // t4, t6 are AND-mergeable (both plain conjuncts).
  EXPECT_TRUE(AndMergeable(tree, 4, 6));
  EXPECT_FALSE(OrMergeable(tree, 4, 6));
  // t2, t5 are neither (one is under the OR).
  EXPECT_FALSE(AndMergeable(tree, 2, 5));
  EXPECT_FALSE(OrMergeable(tree, 2, 5));
  // t6 (main) with t7 (optional) are OPT-mergeable.
  EXPECT_TRUE(OptMergeable(tree, 6, 7));
  // t7 with t7's own guard does not OPT-merge against an OR branch.
  EXPECT_FALSE(OptMergeable(tree, 2, 7));
}

SpillCheck NoSpills() {
  return [](const sparql::TriplePattern&, AccessMethod) { return false; };
}

TEST(MergeTest, PaperFigure11Merges) {
  Fixture s;
  CostModel cm = s.cost();
  DataFlowGraph g = DataFlowGraph::Build(s.query, cm);
  FlowTree flow = GreedyFlowTree(g);
  auto tree = BuildExecTree(s.query, flow);
  ASSERT_TRUE(tree.ok());
  QueryTreeIndex idx(*s.query.where);
  ExecNodePtr merged = MergeExecTree(std::move(*tree), idx, NoSpills());
  std::string dump = merged->ToString();
  // The OR of t2/t3 becomes a disjunctive star; t6/t7 an OPT-merged star
  // (t7 flagged optional). t4 and t5 stay separate (t4 is aco by constant,
  // t5 aco on ?y — different entity constants), as in paper Figure 11.
  EXPECT_NE(dump.find("STAR[OR, aco](t2, t3)"), std::string::npos) << dump;
  EXPECT_NE(dump.find("STAR[AND, acs](t6, t7?)"), std::string::npos) << dump;
}

TEST(MergeTest, SpilledPredicateBlocksMerge) {
  Fixture s;
  CostModel cm = s.cost();
  DataFlowGraph g = DataFlowGraph::Build(s.query, cm);
  FlowTree flow = GreedyFlowTree(g);
  auto tree = BuildExecTree(s.query, flow);
  ASSERT_TRUE(tree.ok());
  QueryTreeIndex idx(*s.query.where);
  // Mark the employees predicate (t7) as spilled: OPT merge must not fire.
  SpillCheck spill = [](const sparql::TriplePattern& t, AccessMethod) {
    return !t.predicate.is_var && t.predicate.term.lexical() == "employees";
  };
  ExecNodePtr merged = MergeExecTree(std::move(*tree), idx, spill);
  std::string dump = merged->ToString();
  EXPECT_EQ(dump.find("t7?"), std::string::npos) << dump;
  EXPECT_NE(dump.find("OPTIONAL"), std::string::npos) << dump;
}

TEST(MergeTest, SameSubjectConjunctsMergeToStar) {
  rdf::Graph graph;
  graph.Add({Term::Iri("s"), Term::Iri("p1"), Term::Iri("o1")});
  Statistics stats = Statistics::FromGraph(graph, 0);
  CostModel cm(&stats, &graph.dictionary());
  auto q = sparql::ParseQuery(
      "SELECT ?s WHERE { ?s <SV1> ?o1 . ?s <SV2> ?o2 . ?s <SV3> ?o3 }");
  ASSERT_TRUE(q.ok());
  DataFlowGraph g = DataFlowGraph::Build(*q, cm);
  FlowTree flow = GreedyFlowTree(g);
  auto tree = BuildExecTree(*q, flow);
  ASSERT_TRUE(tree.ok());
  QueryTreeIndex idx(*q->where);
  ExecNodePtr merged = MergeExecTree(std::move(*tree), idx, NoSpills());
  // All three triples share ?s: if the flow picked a common method they
  // merge into one star node covering t1..t3.
  std::string dump = merged->ToString();
  EXPECT_NE(dump.find("STAR[AND"), std::string::npos) << dump;
  EXPECT_NE(dump.find("t1"), std::string::npos);
  EXPECT_NE(dump.find("t2"), std::string::npos);
  EXPECT_NE(dump.find("t3"), std::string::npos);
}

}  // namespace
}  // namespace rdfrel::opt
