#include "schema/loader.h"

#include <set>

#include <gtest/gtest.h>

#include "schema/coloring_mapping.h"
#include "schema/hash_mapping.h"

namespace rdfrel::schema {
namespace {

using rdf::Term;
using sql::Value;

rdf::Graph PaperFigure1Graph() {
  rdf::Graph g;
  auto iri = [](const char* s) { return Term::Iri(s); };
  auto lit = [](const char* s) { return Term::Literal(s); };
  g.Add({iri("Flint"), iri("born"), lit("1850")});
  g.Add({iri("Flint"), iri("died"), lit("1934")});
  g.Add({iri("Flint"), iri("founder"), iri("IBM")});
  g.Add({iri("Page"), iri("born"), lit("1973")});
  g.Add({iri("Page"), iri("founder"), iri("Google")});
  g.Add({iri("Page"), iri("board"), iri("Google")});
  g.Add({iri("Page"), iri("home"), lit("Palo Alto")});
  g.Add({iri("Google"), iri("industry"), lit("Software")});
  g.Add({iri("Google"), iri("industry"), lit("Internet")});
  g.Add({iri("Google"), iri("employees"), lit("54,604")});
  g.Add({iri("IBM"), iri("industry"), lit("Software")});
  g.Add({iri("IBM"), iri("industry"), lit("Hardware")});
  g.Add({iri("IBM"), iri("industry"), lit("Services")});
  g.Add({iri("IBM"), iri("employees"), lit("433,362")});
  return g;
}

struct StoreFixture {
  sql::Database db;
  std::unique_ptr<Db2RdfSchema> schema;
  std::unique_ptr<Loader> loader;

  explicit StoreFixture(uint32_t k = 16, uint32_t fns = 2) {
    Db2RdfConfig cfg;
    cfg.k_direct = k;
    cfg.k_reverse = k;
    auto s = Db2RdfSchema::Create(&db, cfg);
    EXPECT_TRUE(s.ok());
    schema = std::move(*s);
    loader = std::make_unique<Loader>(
        schema.get(), std::make_shared<HashMapping>(k, fns, 1),
        std::make_shared<HashMapping>(k, fns, 2));
  }
};

/// Finds the value stored for (entity, pred) in a primary table; returns
/// std::nullopt when absent.
std::optional<int64_t> FindVal(sql::Table* table, uint32_t k, int64_t entity,
                               int64_t pred) {
  const sql::IndexInfo* idx = table->FindIndexOn("entry");
  for (sql::RowId rid : idx->Lookup(Value::Int(entity))) {
    auto row = table->Get(rid);
    if (!row.ok()) return std::nullopt;
    for (uint32_t c = 0; c < k; ++c) {
      const Value& p = (*row)[Db2RdfSchema::PredSlot(c)];
      if (!p.is_null() && p.AsInt() == pred) {
        return (*row)[Db2RdfSchema::ValSlot(c)].AsInt();
      }
    }
  }
  return std::nullopt;
}

/// All elements of a secondary-table list.
std::multiset<int64_t> ListElements(sql::Table* secondary, int64_t lid) {
  std::multiset<int64_t> out;
  const sql::IndexInfo* idx = secondary->FindIndexOn("l_id");
  for (sql::RowId rid : idx->Lookup(Value::Int(lid))) {
    auto row = secondary->Get(rid);
    if (row.ok()) out.insert((*row)[1].AsInt());
  }
  return out;
}

TEST(LoaderTest, BulkLoadShredsFigure1) {
  StoreFixture f;
  rdf::Graph g = PaperFigure1Graph();
  auto stats = f.loader->BulkLoad(g);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->triples, 14u);
  // 4 subjects, no spills expected with k=16 and 2 hash functions.
  EXPECT_EQ(stats->dph_rows, 4u + stats->dph_spill_rows);

  auto& dict = g.dictionary();
  int64_t flint = static_cast<int64_t>(dict.Lookup(Term::Iri("Flint")));
  int64_t born = static_cast<int64_t>(dict.Lookup(Term::Iri("born")));
  int64_t y1850 = static_cast<int64_t>(dict.Lookup(Term::Literal("1850")));
  auto val = FindVal(f.schema->dph(), 16, flint, born);
  ASSERT_TRUE(val.has_value());
  EXPECT_EQ(*val, y1850);
}

TEST(LoaderTest, MultiValuedPredicateGoesToSecondary) {
  StoreFixture f;
  rdf::Graph g = PaperFigure1Graph();
  ASSERT_TRUE(f.loader->BulkLoad(g).ok());
  auto& dict = g.dictionary();
  int64_t ibm = static_cast<int64_t>(dict.Lookup(Term::Iri("IBM")));
  int64_t industry = static_cast<int64_t>(dict.Lookup(Term::Iri("industry")));
  auto val = FindVal(f.schema->dph(), 16, ibm, industry);
  ASSERT_TRUE(val.has_value());
  ASSERT_TRUE(Db2RdfSchema::IsLid(*val)) << *val;
  auto elems = ListElements(f.schema->ds(), *val);
  std::multiset<int64_t> expect = {
      static_cast<int64_t>(dict.Lookup(Term::Literal("Software"))),
      static_cast<int64_t>(dict.Lookup(Term::Literal("Hardware"))),
      static_cast<int64_t>(dict.Lookup(Term::Literal("Services")))};
  EXPECT_EQ(elems, expect);
  EXPECT_TRUE(f.schema->multivalued_direct().count(static_cast<uint64_t>(industry)) > 0);
}

TEST(LoaderTest, ReverseSideMirrors) {
  StoreFixture f;
  rdf::Graph g = PaperFigure1Graph();
  ASSERT_TRUE(f.loader->BulkLoad(g).ok());
  auto& dict = g.dictionary();
  // Reverse: who founded Google? RPH entry Google, pred founder -> Page.
  int64_t google = static_cast<int64_t>(dict.Lookup(Term::Iri("Google")));
  int64_t founder = static_cast<int64_t>(dict.Lookup(Term::Iri("founder")));
  auto val = FindVal(f.schema->rph(), 16, google, founder);
  ASSERT_TRUE(val.has_value());
  EXPECT_EQ(*val, static_cast<int64_t>(dict.Lookup(Term::Iri("Page"))));
  // Software's industry (reverse) is multi-valued: IBM and Google.
  int64_t software = static_cast<int64_t>(dict.Lookup(Term::Literal("Software")));
  int64_t industry = static_cast<int64_t>(dict.Lookup(Term::Iri("industry")));
  auto rval = FindVal(f.schema->rph(), 16, software, industry);
  ASSERT_TRUE(rval.has_value());
  ASSERT_TRUE(Db2RdfSchema::IsLid(*rval));
  auto elems = ListElements(f.schema->rs(), *rval);
  EXPECT_EQ(elems.size(), 2u);
}

TEST(LoaderTest, TinyKForcesSpills) {
  // k=2 with 1 hash function: entities with >2 predicates (or collisions)
  // must spill.
  StoreFixture f(/*k=*/2, /*fns=*/1);
  rdf::Graph g = PaperFigure1Graph();
  auto stats = f.loader->BulkLoad(g);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->dph_spill_rows, 0u);
  EXPECT_FALSE(f.schema->spilled_direct().empty());
  // Data must still be complete: Page's 4 predicates all findable.
  auto& dict = g.dictionary();
  int64_t page = static_cast<int64_t>(dict.Lookup(Term::Iri("Page")));
  for (const char* p : {"born", "founder", "board", "home"}) {
    auto val = FindVal(f.schema->dph(), 2, page,
                       static_cast<int64_t>(dict.Lookup(Term::Iri(p))));
    EXPECT_TRUE(val.has_value()) << p;
  }
  // Spill flag set on all of Page's rows.
  const sql::IndexInfo* idx = f.schema->dph()->FindIndexOn("entry");
  auto rids = idx->Lookup(Value::Int(page));
  ASSERT_GT(rids.size(), 1u);
  for (auto rid : rids) {
    auto row = f.schema->dph()->Get(rid);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ((*row)[Db2RdfSchema::kSpillSlot].AsInt(), 1);
  }
}

TEST(LoaderTest, IncrementalMatchesBulk) {
  StoreFixture bulk, incr;
  rdf::Graph g = PaperFigure1Graph();
  ASSERT_TRUE(bulk.loader->BulkLoad(g).ok());
  for (const auto& t : g.triples()) {
    ASSERT_TRUE(incr.loader->InsertTriple(g.dictionary(), t).ok());
  }
  // Same values retrievable from both stores for every triple.
  for (const auto& t : g.triples()) {
    for (auto* f : {&bulk, &incr}) {
      auto val = FindVal(f->schema->dph(), 16,
                         static_cast<int64_t>(t.subject),
                         static_cast<int64_t>(t.predicate));
      ASSERT_TRUE(val.has_value());
      if (Db2RdfSchema::IsLid(*val)) {
        auto elems = ListElements(f->schema->ds(), *val);
        EXPECT_TRUE(elems.count(static_cast<int64_t>(t.object)) > 0);
      } else {
        EXPECT_EQ(*val, static_cast<int64_t>(t.object));
      }
    }
  }
  EXPECT_EQ(bulk.schema->dph()->row_count(),
            incr.schema->dph()->row_count());
}

TEST(LoaderTest, IncrementalSingleToMultiConversion) {
  StoreFixture f;
  rdf::Graph g;
  g.Add({Term::Iri("s"), Term::Iri("p"), Term::Iri("o1")});
  ASSERT_TRUE(f.loader->BulkLoad(g).ok());
  auto& dict = g.dictionary();
  int64_t s = static_cast<int64_t>(dict.Lookup(Term::Iri("s")));
  int64_t p = static_cast<int64_t>(dict.Lookup(Term::Iri("p")));
  int64_t o1 = static_cast<int64_t>(dict.Lookup(Term::Iri("o1")));
  // Initially single-valued.
  auto val = FindVal(f.schema->dph(), 16, s, p);
  ASSERT_TRUE(val.has_value());
  EXPECT_EQ(*val, o1);

  // Add a second object for the same (s, p).
  uint64_t o2 = g.dictionary().Encode(Term::Iri("o2"));
  ASSERT_TRUE(f.loader
                  ->InsertTriple(g.dictionary(),
                                 {static_cast<uint64_t>(s),
                                  static_cast<uint64_t>(p), o2})
                  .ok());
  val = FindVal(f.schema->dph(), 16, s, p);
  ASSERT_TRUE(val.has_value());
  ASSERT_TRUE(Db2RdfSchema::IsLid(*val));
  auto elems = ListElements(f.schema->ds(), *val);
  EXPECT_EQ(elems.size(), 2u);
  EXPECT_TRUE(f.schema->multivalued_direct().count(static_cast<uint64_t>(p)) > 0);

  // Third object appends to the same list.
  uint64_t o3 = g.dictionary().Encode(Term::Iri("o3"));
  ASSERT_TRUE(f.loader
                  ->InsertTriple(g.dictionary(),
                                 {static_cast<uint64_t>(s),
                                  static_cast<uint64_t>(p), o3})
                  .ok());
  elems = ListElements(f.schema->ds(), *val);
  EXPECT_EQ(elems.size(), 3u);
}

TEST(LoaderTest, DuplicateTripleIsNoOp) {
  StoreFixture f;
  rdf::Graph g;
  g.Add({Term::Iri("s"), Term::Iri("p"), Term::Iri("o")});
  ASSERT_TRUE(f.loader->BulkLoad(g).ok());
  uint64_t rows_before = f.schema->dph()->row_count();
  uint64_t ds_before = f.schema->ds()->row_count();
  ASSERT_TRUE(f.loader->InsertTriple(g.dictionary(), g.triples()[0]).ok());
  EXPECT_EQ(f.schema->dph()->row_count(), rows_before);
  EXPECT_EQ(f.schema->ds()->row_count(), ds_before);
}

TEST(LoaderTest, ColoringMappingAvoidsSpillsWhereHashingSpills) {
  rdf::Graph g = PaperFigure1Graph();
  InterferenceGraph ig = InterferenceGraph::FromGraphBySubject(g);
  ColoringResult r = ColorInterferenceGraph(ig, 0);
  InterferenceGraph rig = InterferenceGraph::FromGraphByObject(g);
  ColoringResult rr = ColorInterferenceGraph(rig, 0);

  sql::Database db;
  Db2RdfConfig cfg;
  cfg.k_direct = r.colors_used;
  cfg.k_reverse = rr.colors_used;
  auto schema = Db2RdfSchema::Create(&db, cfg);
  ASSERT_TRUE(schema.ok());
  Loader loader(schema->get(),
                std::make_shared<ColoringMapping>(r, r.colors_used),
                std::make_shared<ColoringMapping>(rr, rr.colors_used));
  auto stats = loader.BulkLoad(g);
  ASSERT_TRUE(stats.ok());
  // A valid coloring guarantees zero spills within the colored set.
  EXPECT_EQ(stats->dph_spill_rows, 0u);
  EXPECT_EQ(stats->rph_spill_rows, 0u);
  // And the column budget is far below 13 (one per predicate).
  EXPECT_LT(r.colors_used, 13u);
}

TEST(Db2RdfSchemaTest, CreateRejectsZeroK) {
  sql::Database db;
  Db2RdfConfig cfg;
  cfg.k_direct = 0;
  EXPECT_TRUE(Db2RdfSchema::Create(&db, cfg).status().IsInvalidArgument());
}

TEST(Db2RdfSchemaTest, PrefixesAllowMultipleStores) {
  sql::Database db;
  Db2RdfConfig a, b;
  a.prefix = "one_";
  b.prefix = "two_";
  EXPECT_TRUE(Db2RdfSchema::Create(&db, a).ok());
  EXPECT_TRUE(Db2RdfSchema::Create(&db, b).ok());
  EXPECT_TRUE(db.catalog().HasTable("one_dph"));
  EXPECT_TRUE(db.catalog().HasTable("two_rph"));
}

TEST(Db2RdfSchemaTest, LidsAreNegativeAndUnique) {
  sql::Database db;
  auto schema = Db2RdfSchema::Create(&db, Db2RdfConfig{});
  ASSERT_TRUE(schema.ok());
  int64_t a = (*schema)->AllocateLid();
  int64_t b = (*schema)->AllocateLid();
  EXPECT_LT(a, 0);
  EXPECT_LT(b, 0);
  EXPECT_NE(a, b);
  EXPECT_TRUE(Db2RdfSchema::IsLid(a));
  EXPECT_FALSE(Db2RdfSchema::IsLid(1));
  EXPECT_FALSE(Db2RdfSchema::IsLid(0));
}

}  // namespace
}  // namespace rdfrel::schema
