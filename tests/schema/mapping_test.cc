#include <gtest/gtest.h>

#include "schema/coloring_mapping.h"
#include "schema/hash_mapping.h"
#include "schema/interference_graph.h"
#include "schema/predicate_mapping.h"

namespace rdfrel::schema {
namespace {

TEST(HashMappingTest, SingleFunctionDeterministic) {
  HashMapping m(16, 1);
  auto c1 = m.Columns({1, "http://x/born"});
  auto c2 = m.Columns({1, "http://x/born"});
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_EQ(c1, c2);
  EXPECT_LT(c1[0], 16u);
}

TEST(HashMappingTest, CompositionYieldsUpToNCandidates) {
  HashMapping m(64, 3);
  auto cols = m.Columns({1, "http://x/developer"});
  EXPECT_GE(cols.size(), 1u);
  EXPECT_LE(cols.size(), 3u);
  // Deduplicated.
  for (size_t i = 0; i < cols.size(); ++i) {
    for (size_t j = i + 1; j < cols.size(); ++j) {
      EXPECT_NE(cols[i], cols[j]);
    }
  }
}

TEST(HashMappingTest, Table3StyleInsertion) {
  // Paper Table 3: two hash functions; a predicate whose h1 column is taken
  // falls to its h2 column. We verify the candidate list has the h1 column
  // first, then h2 — the insertion semantics live in the Loader.
  HashMapping h1(8, 1, /*seed=*/11);
  HashMapping h2(8, 1, /*seed=*/22);
  ComposedMapping comp({std::make_shared<HashMapping>(h1),
                        std::make_shared<HashMapping>(h2)});
  PredicateRef p{5, "http://x/kernel"};
  auto cols = comp.Columns(p);
  EXPECT_EQ(cols[0], h1.Columns(p)[0]);
  if (cols.size() > 1) {
    EXPECT_EQ(cols[1], h2.Columns(p)[0]);
  } else {
    EXPECT_EQ(h1.Columns(p)[0], h2.Columns(p)[0]);
  }
}

TEST(HashMappingTest, DifferentSeedFamiliesDiffer) {
  HashMapping a(32, 1, 1), b(32, 1, 2);
  int diff = 0;
  for (int i = 0; i < 100; ++i) {
    std::string iri = "http://x/p" + std::to_string(i);
    if (a.Columns({0, iri}) != b.Columns({0, iri})) ++diff;
  }
  EXPECT_GT(diff, 50);
}

TEST(ComposedMappingTest, RangeIsMaxOfParts) {
  ComposedMapping comp({std::make_shared<HashMapping>(8, 1),
                        std::make_shared<HashMapping>(32, 1)});
  EXPECT_EQ(comp.num_columns(), 32u);
}

// ------------------------------------------------------------- interference

TEST(InterferenceGraphTest, CliquePerEntity) {
  InterferenceGraph g;
  g.AddEntity({1, 2, 3});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_TRUE(g.HasEdge(1, 3));
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(InterferenceGraphTest, DuplicateEdgesNotDoubleCounted) {
  InterferenceGraph g;
  g.AddEntity({1, 2});
  g.AddEntity({1, 2, 2});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Frequency(1), 2u);
  EXPECT_EQ(g.Frequency(2), 2u);
}

rdf::Graph PaperFigure1Graph() {
  using rdf::Term;
  rdf::Graph g;
  auto iri = [](const char* s) { return Term::Iri(s); };
  auto lit = [](const char* s) { return Term::Literal(s); };
  g.Add({iri("Flint"), iri("born"), lit("1850")});
  g.Add({iri("Flint"), iri("died"), lit("1934")});
  g.Add({iri("Flint"), iri("founder"), iri("IBM")});
  g.Add({iri("Page"), iri("born"), lit("1973")});
  g.Add({iri("Page"), iri("founder"), iri("Google")});
  g.Add({iri("Page"), iri("board"), iri("Google")});
  g.Add({iri("Page"), iri("home"), lit("Palo Alto")});
  g.Add({iri("Android"), iri("developer"), iri("Google")});
  g.Add({iri("Android"), iri("version"), lit("4.1")});
  g.Add({iri("Android"), iri("kernel"), iri("Linux")});
  g.Add({iri("Android"), iri("preceded"), lit("4.0")});
  g.Add({iri("Android"), iri("graphics"), iri("OpenGL")});
  g.Add({iri("Google"), iri("industry"), lit("Software")});
  g.Add({iri("Google"), iri("industry"), lit("Internet")});
  g.Add({iri("Google"), iri("employees"), lit("54,604")});
  g.Add({iri("Google"), iri("HQ"), iri("Mountain View")});
  g.Add({iri("IBM"), iri("industry"), lit("Software")});
  g.Add({iri("IBM"), iri("industry"), lit("Hardware")});
  g.Add({iri("IBM"), iri("industry"), lit("Services")});
  g.Add({iri("IBM"), iri("employees"), lit("433,362")});
  g.Add({iri("IBM"), iri("HQ"), iri("Armonk")});
  return g;
}

TEST(InterferenceGraphTest, PaperFigure4Structure) {
  rdf::Graph g = PaperFigure1Graph();
  InterferenceGraph ig = InterferenceGraph::FromGraphBySubject(g);
  // 13 distinct predicates.
  EXPECT_EQ(ig.num_nodes(), 13u);
  auto id = [&](const char* p) {
    return g.dictionary().Lookup(rdf::Term::Iri(p));
  };
  // born/died co-occur (Flint), born/founder co-occur, but board/died never
  // co-occur — the paper's key observation for Figure 4.
  EXPECT_TRUE(ig.HasEdge(id("born"), id("died")));
  EXPECT_TRUE(ig.HasEdge(id("born"), id("founder")));
  EXPECT_TRUE(ig.HasEdge(id("board"), id("home")));
  EXPECT_FALSE(ig.HasEdge(id("board"), id("died")));
  EXPECT_FALSE(ig.HasEdge(id("industry"), id("version")));
}

TEST(ColoringTest, PaperFigure4NeedsFewColors) {
  rdf::Graph g = PaperFigure1Graph();
  InterferenceGraph ig = InterferenceGraph::FromGraphBySubject(g);
  ColoringResult r = ColorInterferenceGraph(ig, /*max_colors=*/0);
  // The paper: "for the 13 predicates, we only need 5 colors". Greedy may
  // use a color or so more, but must beat one-column-per-predicate by far.
  EXPECT_LE(r.colors_used, 6u);
  EXPECT_GE(r.colors_used, 4u);
  EXPECT_TRUE(r.punted.empty());
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  // Validity: no edge joins two same-colored nodes.
  for (uint64_t a : ig.Nodes()) {
    for (uint64_t b : ig.Neighbors(a)) {
      EXPECT_NE(r.assignment.at(a), r.assignment.at(b));
    }
  }
}

TEST(ColoringTest, BudgetForcesPunting) {
  // A clique of 6 with a budget of 3 must punt 3 nodes.
  InterferenceGraph ig;
  ig.AddEntity({1, 2, 3, 4, 5, 6});
  ColoringResult r = ColorInterferenceGraph(ig, 3);
  EXPECT_EQ(r.assignment.size(), 3u);
  EXPECT_EQ(r.punted.size(), 3u);
  EXPECT_EQ(r.colors_used, 3u);
  EXPECT_NEAR(r.coverage, 0.5, 1e-9);
}

TEST(ColoringTest, PuntsRarePredicatesFirst) {
  // freq(1..3) high via many entities; predicate 9 appears once. With a
  // tight budget the rare predicate should be punted, not the frequent ones.
  InterferenceGraph ig;
  for (int i = 0; i < 100; ++i) ig.AddEntity({1, 2, 3});
  ig.AddEntity({1, 2, 3, 9});
  ColoringResult r = ColorInterferenceGraph(ig, 3);
  EXPECT_EQ(r.punted.count(9), 1u);
  EXPECT_EQ(r.assignment.count(1), 1u);
  EXPECT_GT(r.coverage, 0.99);
}

TEST(ColoringTest, DisconnectedPredicatesShareColorZero) {
  InterferenceGraph ig;
  ig.AddEntity({1});
  ig.AddEntity({2});
  ig.AddEntity({3});
  ColoringResult r = ColorInterferenceGraph(ig, 0);
  EXPECT_EQ(r.colors_used, 1u);
}

TEST(ColoringMappingTest, ColoredGetOneColumnPuntedGetFallback) {
  InterferenceGraph ig;
  ig.AddEntity({1, 2, 3, 4, 5, 6});
  ColoringResult r = ColorInterferenceGraph(ig, 3);
  ColoringMapping m(r, /*total_columns=*/8, /*fallback_functions=*/2);
  for (uint64_t p = 1; p <= 6; ++p) {
    auto cols = m.Columns({p, "http://x/p" + std::to_string(p)});
    if (m.IsColored(p)) {
      EXPECT_EQ(cols.size(), 1u);
      EXPECT_LT(cols[0], 3u);
    } else {
      EXPECT_GE(cols.size(), 1u);
      for (uint32_t c : cols) EXPECT_LT(c, 8u);
    }
  }
  // Unseen predicate also falls back to hashing.
  EXPECT_FALSE(m.IsColored(42));
  EXPECT_GE(m.Columns({42, "http://x/new"}).size(), 1u);
}

}  // namespace
}  // namespace rdfrel::schema
