/// Triple deletion (paper §6 future work: update performance): cells clear,
/// multi-value lists shrink, empty rows vanish, and queries reflect it.

#include <gtest/gtest.h>

#include "store/rdf_store.h"

namespace rdfrel::store {
namespace {

using rdf::Term;

rdf::Graph SmallGraph() {
  rdf::Graph g;
  auto iri = [](const std::string& s) { return Term::Iri("http://x/" + s); };
  auto lit = [](const std::string& s) { return Term::Literal(s); };
  g.Add({iri("ibm"), iri("industry"), lit("software")});
  g.Add({iri("ibm"), iri("industry"), lit("hardware")});
  g.Add({iri("ibm"), iri("industry"), lit("services")});
  g.Add({iri("ibm"), iri("hq"), lit("armonk")});
  g.Add({iri("sun"), iri("industry"), lit("hardware")});
  return g;
}

class DeleteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = RdfStore::Load(SmallGraph());
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    store_ = std::move(*s);
  }
  size_t Count(const std::string& q) {
    auto r = store_->Query("PREFIX : <http://x/> " + q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->size() : 0;
  }
  rdf::Triple T(const std::string& s, const std::string& p,
                const std::string& o, bool literal_object = true) {
    return {Term::Iri("http://x/" + s), Term::Iri("http://x/" + p),
            literal_object ? Term::Literal(o) : Term::Iri("http://x/" + o)};
  }
  std::unique_ptr<RdfStore> store_;
};

TEST_F(DeleteTest, DeleteSingleValuedCell) {
  EXPECT_EQ(Count("SELECT ?h WHERE { :ibm :hq ?h }"), 1u);
  ASSERT_TRUE(store_->Delete(T("ibm", "hq", "armonk")).ok());
  EXPECT_EQ(Count("SELECT ?h WHERE { :ibm :hq ?h }"), 0u);
  // Other predicates untouched.
  EXPECT_EQ(Count("SELECT ?i WHERE { :ibm :industry ?i }"), 3u);
}

TEST_F(DeleteTest, DeleteShrinksMultiValueList) {
  ASSERT_TRUE(store_->Delete(T("ibm", "industry", "hardware")).ok());
  EXPECT_EQ(Count("SELECT ?i WHERE { :ibm :industry ?i }"), 2u);
  // The reverse side shrinks too: hardware now only sun.
  EXPECT_EQ(Count("SELECT ?c WHERE { ?c :industry \"hardware\" }"), 1u);
}

TEST_F(DeleteTest, DeleteEntireList) {
  for (const char* v : {"software", "hardware", "services"}) {
    ASSERT_TRUE(store_->Delete(T("ibm", "industry", v)).ok()) << v;
  }
  EXPECT_EQ(Count("SELECT ?i WHERE { :ibm :industry ?i }"), 0u);
  EXPECT_EQ(Count("SELECT ?h WHERE { :ibm :hq ?h }"), 1u);
}

TEST_F(DeleteTest, DeleteLastPredicateRemovesRow) {
  ASSERT_TRUE(store_->Delete(T("sun", "industry", "hardware")).ok());
  EXPECT_EQ(Count("SELECT ?p ?o WHERE { :sun ?p ?o }"), 0u);
}

TEST_F(DeleteTest, DeleteAbsentTripleIsNotFound) {
  EXPECT_TRUE(store_->Delete(T("ibm", "hq", "zurich")).IsNotFound());
  EXPECT_TRUE(store_->Delete(T("nosuch", "hq", "armonk")).IsNotFound());
  // Double delete.
  ASSERT_TRUE(store_->Delete(T("ibm", "hq", "armonk")).ok());
  EXPECT_TRUE(store_->Delete(T("ibm", "hq", "armonk")).IsNotFound());
}

TEST_F(DeleteTest, InsertAfterDeleteRoundTrips) {
  ASSERT_TRUE(store_->Delete(T("ibm", "hq", "armonk")).ok());
  ASSERT_TRUE(store_->Insert(T("ibm", "hq", "poughkeepsie")).ok());
  auto r = store_->Query(
      "PREFIX : <http://x/> SELECT ?h WHERE { :ibm :hq ?h }");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->rows[0][0], Term::Literal("poughkeepsie"));
}

TEST_F(DeleteTest, ClosureTablesInvalidated) {
  rdf::Graph g;
  auto iri = [](const std::string& s) { return Term::Iri("http://x/" + s); };
  g.Add({iri("a"), iri("next"), iri("b")});
  g.Add({iri("b"), iri("next"), iri("c")});
  auto store = RdfStore::Load(std::move(g)).value();
  auto q = "PREFIX : <http://x/> SELECT ?r WHERE { :a :next+ ?r }";
  EXPECT_EQ(store->Query(q)->size(), 2u);
  ASSERT_TRUE(store
                  ->Delete({iri("b"), iri("next"), iri("c")})
                  .ok());
  EXPECT_EQ(store->Query(q)->size(), 1u);  // closure rebuilt
  ASSERT_TRUE(store->Insert({iri("c"), iri("next"), iri("d")}).ok());
  ASSERT_TRUE(store->Insert({iri("b"), iri("next"), iri("c")}).ok());
  EXPECT_EQ(store->Query(q)->size(), 3u);
}

}  // namespace
}  // namespace rdfrel::store
