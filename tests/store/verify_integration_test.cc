/// Integration gate for the static verification layer (DESIGN.md §8):
/// every query of every benchdata workload must plan and execute cleanly
/// with plan/IR verification forced on, across flow modes and both the
/// DB2RDF and baseline backends. Any kInternalPlanError here means an
/// optimizer or executor invariant regressed.

#include <gtest/gtest.h>

#include "benchdata/dbpedia.h"
#include "benchdata/lubm.h"
#include "benchdata/micro.h"
#include "benchdata/prbench.h"
#include "benchdata/sp2bench.h"
#include "store/rdf_store.h"
#include "store/triple_store_backend.h"

namespace rdfrel::store {
namespace {

benchdata::Workload MakeSmall(const std::string& name) {
  if (name == "micro") return benchdata::MakeMicro(400, 7);
  if (name == "lubm") return benchdata::MakeLubm(2, 7);
  if (name == "sp2bench") return benchdata::MakeSp2Bench(4, 7);
  if (name == "dbpedia") return benchdata::MakeDbpedia(400, 300, 7);
  if (name == "prbench") return benchdata::MakePrbench(2, 7);
  return {};
}

class WorkloadVerifierTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadVerifierTest, AllQueriesVerifyCleanlyAcrossFlowModes) {
  benchdata::Workload w = MakeSmall(GetParam());
  ASSERT_FALSE(w.queries.empty());
  benchdata::Workload w2 = MakeSmall(GetParam());

  auto db2rdf = RdfStore::Load(std::move(w.graph));
  ASSERT_TRUE(db2rdf.ok()) << db2rdf.status().ToString();
  auto triple = TripleStoreBackend::Load(std::move(w2.graph));
  ASSERT_TRUE(triple.ok()) << triple.status().ToString();

  // Greedy exercises the strict flow checks; parse-order exercises the
  // relaxed level the ablation mode is held to. Exhaustive is exponential
  // in pattern count, so workload-scale queries stick to the two scalable
  // modes (optimizer_test covers exhaustive on small queries).
  for (FlowMode flow : {FlowMode::kGreedy, FlowMode::kParseOrder}) {
    QueryOptions opts;
    opts.flow = flow;
    opts.verify_plans = true;
    for (const auto& q : w.queries) {
      auto a = (*db2rdf)->QueryWith(q.sparql, opts);
      EXPECT_TRUE(a.ok()) << w.name << "/" << q.id << " (db2rdf, flow "
                          << static_cast<int>(flow)
                          << "): " << a.status().ToString();
      auto b = (*triple)->QueryWith(q.sparql, opts);
      EXPECT_TRUE(b.ok()) << w.name << "/" << q.id << " (triple, flow "
                          << static_cast<int>(flow)
                          << "): " << b.status().ToString();
    }
  }

  // Unmerged / early-fused plan shapes go through the same verifiers.
  QueryOptions unmerged;
  unmerged.merging = false;
  unmerged.late_fusing = false;
  unmerged.verify_plans = true;
  for (const auto& q : w.queries) {
    auto a = (*db2rdf)->QueryWith(q.sparql, unmerged);
    EXPECT_TRUE(a.ok()) << w.name << "/" << q.id
                        << " (unmerged): " << a.status().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadVerifierTest,
                         ::testing::Values("micro", "lubm", "sp2bench",
                                           "dbpedia", "prbench"),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

}  // namespace
}  // namespace rdfrel::store
