#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "store/predicate_store_backend.h"
#include "store/rdf_store.h"
#include "store/triple_store_backend.h"

namespace rdfrel::store {
namespace {

using rdf::Term;

/// The paper's Figure 1 DBpedia sample, IRIs under http://ex/.
rdf::Graph Figure1Graph() {
  rdf::Graph g;
  auto iri = [](const std::string& s) { return Term::Iri("http://ex/" + s); };
  auto lit = [](const std::string& s) { return Term::Literal(s); };
  g.Add({iri("CharlesFlint"), iri("born"), lit("1850")});
  g.Add({iri("CharlesFlint"), iri("died"), lit("1934")});
  g.Add({iri("CharlesFlint"), iri("founder"), iri("IBM")});
  g.Add({iri("LarryPage"), iri("born"), lit("1973")});
  g.Add({iri("LarryPage"), iri("founder"), iri("Google")});
  g.Add({iri("LarryPage"), iri("board"), iri("Google")});
  g.Add({iri("LarryPage"), iri("home"), lit("Palo Alto")});
  g.Add({iri("Android"), iri("developer"), iri("Google")});
  g.Add({iri("Android"), iri("version"), lit("4.1")});
  g.Add({iri("Android"), iri("kernel"), iri("Linux")});
  g.Add({iri("Android"), iri("preceded"), lit("4.0")});
  g.Add({iri("Android"), iri("graphics"), iri("OpenGL")});
  g.Add({iri("Google"), iri("industry"), lit("Software")});
  g.Add({iri("Google"), iri("industry"), lit("Internet")});
  g.Add({iri("Google"), iri("employees"), lit("54604")});
  g.Add({iri("Google"), iri("HQ"), iri("MountainView")});
  g.Add({iri("Google"), iri("revenue"), lit("37905")});
  g.Add({iri("IBM"), iri("industry"), lit("Software")});
  g.Add({iri("IBM"), iri("industry"), lit("Hardware")});
  g.Add({iri("IBM"), iri("industry"), lit("Services")});
  g.Add({iri("IBM"), iri("employees"), lit("433362")});
  g.Add({iri("IBM"), iri("HQ"), iri("Armonk")});
  g.Add({iri("IBM"), iri("revenue"), lit("106916")});
  return g;
}

constexpr const char* kPrefix = "PREFIX : <http://ex/> ";

/// Sorted multiset of row signatures for order-insensitive comparison.
std::multiset<std::string> Signature(const ResultSet& rs) {
  std::multiset<std::string> out;
  for (const auto& row : rs.rows) {
    std::string sig;
    for (const auto& v : row) {
      sig += v.has_value() ? v->ToNTriples() : "UNBOUND";
      sig += "\x1f";
    }
    out.insert(sig);
  }
  return out;
}

class StoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto s1 = RdfStore::Load(Figure1Graph());
    ASSERT_TRUE(s1.ok()) << s1.status().ToString();
    db2rdf_ = s1->release();
    auto s2 = TripleStoreBackend::Load(Figure1Graph());
    ASSERT_TRUE(s2.ok()) << s2.status().ToString();
    triple_ = s2->release();
    auto s3 = PredicateStoreBackend::Load(Figure1Graph());
    ASSERT_TRUE(s3.ok()) << s3.status().ToString();
    pred_ = s3->release();
  }
  static void TearDownTestSuite() {
    delete db2rdf_;
    delete triple_;
    delete pred_;
  }

  /// Runs on DB2RDF, checks count; then checks all backends agree.
  ResultSet Check(const std::string& sparql, size_t expect_rows) {
    auto r = db2rdf_->Query(sparql);
    EXPECT_TRUE(r.ok()) << sparql << "\n-> " << r.status().ToString();
    if (!r.ok()) return {};
    EXPECT_EQ(r->size(), expect_rows)
        << sparql << "\n"
        << r->ToString() << "\nSQL:\n"
        << db2rdf_->TranslateToSql(sparql).ValueOr("<err>");
    for (SparqlStore* other : {static_cast<SparqlStore*>(triple_),
                               static_cast<SparqlStore*>(pred_)}) {
      auto o = other->Query(sparql);
      EXPECT_TRUE(o.ok()) << other->name() << ": " << sparql << "\n-> "
                          << o.status().ToString();
      if (o.ok()) {
        EXPECT_EQ(Signature(*o), Signature(*r))
            << other->name() << " disagrees on " << sparql << "\nDB2RDF:\n"
            << r->ToString() << "\n" << other->name() << ":\n"
            << o->ToString();
      }
    }
    return std::move(*r);
  }

  static RdfStore* db2rdf_;
  static TripleStoreBackend* triple_;
  static PredicateStoreBackend* pred_;
};

RdfStore* StoreTest::db2rdf_ = nullptr;
TripleStoreBackend* StoreTest::triple_ = nullptr;
PredicateStoreBackend* StoreTest::pred_ = nullptr;

TEST_F(StoreTest, SingleTripleConstantObject) {
  auto rs = Check(std::string(kPrefix) +
                      "SELECT ?x WHERE { ?x :founder :IBM }",
                  1);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Term::Iri("http://ex/CharlesFlint"));
}

TEST_F(StoreTest, SingleTripleConstantSubject) {
  Check(std::string(kPrefix) + "SELECT ?o WHERE { :Android :kernel ?o }", 1);
}

TEST_F(StoreTest, SubjectStarQuery) {
  // Who was born and founded something? Flint and Page.
  auto rs = Check(std::string(kPrefix) +
                      "SELECT ?x ?y WHERE { ?x :born ?b . ?x :founder ?y }",
                  2);
  std::set<std::string> founders;
  for (const auto& row : rs.rows) founders.insert(row[0]->lexical());
  EXPECT_TRUE(founders.count("http://ex/CharlesFlint"));
  EXPECT_TRUE(founders.count("http://ex/LarryPage"));
}

TEST_F(StoreTest, MultiValuedPredicateExpands) {
  // IBM has three industries.
  Check(std::string(kPrefix) + "SELECT ?i WHERE { :IBM :industry ?i }", 3);
}

TEST_F(StoreTest, ReverseAccessMultiValued) {
  // Software industry: IBM and Google.
  auto rs = Check(std::string(kPrefix) +
                      "SELECT ?c WHERE { ?c :industry \"Software\" }",
                  2);
  std::set<std::string> cs;
  for (const auto& row : rs.rows) cs.insert(row[0]->lexical());
  EXPECT_TRUE(cs.count("http://ex/IBM"));
  EXPECT_TRUE(cs.count("http://ex/Google"));
}

TEST_F(StoreTest, JoinAcrossEntities) {
  // Companies in Software whose products exist: Android develops for Google.
  Check(std::string(kPrefix) +
            "SELECT ?p ?c WHERE { ?p :developer ?c . ?c :industry "
            "\"Software\" }",
        1);
}

TEST_F(StoreTest, UnionQuery) {
  // founder-of-Google UNION board-of-Google: Page twice.
  Check(std::string(kPrefix) +
            "SELECT ?x WHERE { { ?x :founder :Google } UNION { ?x :board "
            ":Google } }",
        2);
}

TEST_F(StoreTest, OptionalPresentAndAbsent) {
  // All with revenue, optionally employees: Google and IBM both have both.
  auto rs = Check(std::string(kPrefix) +
                      "SELECT ?c ?e WHERE { ?c :revenue ?r OPTIONAL { ?c "
                      ":employees ?e } }",
                  2);
  for (const auto& row : rs.rows) EXPECT_TRUE(row[1].has_value());
  // Subjects with born, optionally a home: Flint has none -> unbound.
  auto rs2 = Check(std::string(kPrefix) +
                       "SELECT ?x ?h WHERE { ?x :born ?b OPTIONAL { ?x "
                       ":home ?h } }",
                   2);
  int unbound = 0;
  for (const auto& row : rs2.rows) {
    if (!row[1].has_value()) ++unbound;
  }
  EXPECT_EQ(unbound, 1);
}

TEST_F(StoreTest, PaperFigure6RunningExample) {
  std::string q = std::string(kPrefix) + R"(
    SELECT * WHERE {
      ?x :home "Palo Alto" .
      { ?x :founder ?y } UNION { ?x :board ?y }
      ?y :industry "Software" .
      ?z :developer ?y .
      ?y :revenue ?n .
      OPTIONAL { ?y :employees ?m }
    })";
  // Page founded Google AND sits on its board: two union branches match,
  // Android develops Google, employees present -> 2 rows.
  auto rs = Check(q, 2);
  for (const auto& row : rs.rows) {
    EXPECT_EQ(row[0], Term::Iri("http://ex/LarryPage"));   // ?x
    EXPECT_EQ(row[1], Term::Iri("http://ex/Google"));      // ?y
    EXPECT_EQ(row[2], Term::Iri("http://ex/Android"));     // ?z
    EXPECT_EQ(row[4], Term::Literal("54604"));             // ?m
  }
}

TEST_F(StoreTest, FilterEqualityAndOrdered) {
  Check(std::string(kPrefix) +
            "SELECT ?x WHERE { ?x :born ?b . FILTER (?b = \"1850\") }",
        1);
  Check(std::string(kPrefix) +
            "SELECT ?x WHERE { ?x :born ?b . FILTER (?b > 1900) }",
        1);
  Check(std::string(kPrefix) +
            "SELECT ?c WHERE { ?c :employees ?e . FILTER (?e >= 100000 && "
            "?e < 500000) }",
        1);
}

TEST_F(StoreTest, FilterBoundAfterOptional) {
  // Entities with born but NO home (Flint).
  auto rs = Check(std::string(kPrefix) +
                      "SELECT ?x WHERE { ?x :born ?b OPTIONAL { ?x :home "
                      "?h } FILTER (!BOUND(?h)) }",
                  1);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Term::Iri("http://ex/CharlesFlint"));
}

TEST_F(StoreTest, RegexPostFilter) {
  auto rs = Check(std::string(kPrefix) +
                      "SELECT ?x ?h WHERE { ?x :home ?h . FILTER "
                      "(REGEX(?h, \"Palo\")) }",
                  1);
  ASSERT_EQ(rs.size(), 1u);
}

TEST_F(StoreTest, VariablePredicate) {
  // All edges out of Android: 5.
  Check(std::string(kPrefix) + "SELECT ?p ?o WHERE { :Android ?p ?o }", 5);
  // All edges into Google: developer, founder, board -> 3.
  Check(std::string(kPrefix) + "SELECT ?s ?p WHERE { ?s ?p :Google }", 3);
}

TEST_F(StoreTest, DistinctAndLimit) {
  auto all = db2rdf_->Query(std::string(kPrefix) +
                            "SELECT ?i WHERE { ?c :industry ?i }");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 5u);  // 3 IBM + 2 Google
  auto distinct = db2rdf_->Query(
      std::string(kPrefix) + "SELECT DISTINCT ?i WHERE { ?c :industry ?i }");
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->size(), 4u);  // Software shared
  auto limited = db2rdf_->Query(
      std::string(kPrefix) +
      "SELECT ?i WHERE { ?c :industry ?i } ORDER BY ?i LIMIT 2");
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 2u);
}

TEST_F(StoreTest, EmptyResultForUnknownConstant) {
  Check(std::string(kPrefix) + "SELECT ?x WHERE { ?x :founder :Nokia }", 0);
  Check(std::string(kPrefix) + "SELECT ?x WHERE { ?x :nothere ?y }", 0);
}

TEST_F(StoreTest, AblationsAgreeWithDefault) {
  std::string q = std::string(kPrefix) + R"(
    SELECT * WHERE {
      ?x :home "Palo Alto" .
      { ?x :founder ?y } UNION { ?x :board ?y }
      ?y :industry "Software" .
      OPTIONAL { ?y :employees ?m }
    })";
  auto base = db2rdf_->Query(q);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  for (QueryOptions opts :
       {QueryOptions{FlowMode::kParseOrder, true, true},
        QueryOptions{FlowMode::kGreedy, false, true},
        QueryOptions{FlowMode::kGreedy, true, false},
        QueryOptions{FlowMode::kExhaustive, true, true},
        QueryOptions{FlowMode::kParseOrder, false, false}}) {
    auto r = db2rdf_->QueryWith(q, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(Signature(*r), Signature(*base))
        << "flow=" << static_cast<int>(opts.flow)
        << " late_fusing=" << opts.late_fusing
        << " merging=" << opts.merging;
  }
}

TEST_F(StoreTest, TranslatedSqlShowsCtesAndStars) {
  auto sql = db2rdf_->TranslateToSql(
      std::string(kPrefix) +
      "SELECT ?x WHERE { ?x :born ?b . ?x :founder ?y . ?x :home ?h }");
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  // A merged subject star must touch DPH exactly once.
  size_t count = 0;
  for (size_t pos = sql->find("dph AS T"); pos != std::string::npos;
       pos = sql->find("dph AS T", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u) << *sql;
}

TEST_F(StoreTest, ExplainShowsEveryStage) {
  auto ex = db2rdf_->Explain(
      std::string(kPrefix) +
      "SELECT * WHERE { ?x :born ?b . { ?x :founder ?y } UNION { ?x :board "
      "?y } OPTIONAL { ?y :employees ?m } }");
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_NE(ex->parse_tree.find("AND"), std::string::npos);
  EXPECT_NE(ex->parse_tree.find("OR"), std::string::npos);
  EXPECT_NE(ex->flow_tree.find("via"), std::string::npos);
  EXPECT_NE(ex->exec_tree.find("t1"), std::string::npos);
  // The OR of founder/board merges into a disjunctive star.
  EXPECT_NE(ex->plan_tree.find("STAR[OR"), std::string::npos)
      << ex->plan_tree;
  EXPECT_NE(ex->sql.find("WITH"), std::string::npos);
}

TEST_F(StoreTest, IncrementalInsertVisibleToQueries) {
  rdf::Graph g = Figure1Graph();
  auto store = RdfStore::Load(std::move(g));
  ASSERT_TRUE(store.ok());
  std::string q =
      std::string(kPrefix) + "SELECT ?x WHERE { ?x :founder :Tesla }";
  auto before = (*store)->Query(q);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 0u);
  ASSERT_TRUE((*store)
                  ->Insert({Term::Iri("http://ex/ElonMusk"),
                            Term::Iri("http://ex/founder"),
                            Term::Iri("http://ex/Tesla")})
                  .ok());
  auto after = (*store)->Query(q);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 1u);
  EXPECT_EQ(after->rows[0][0], Term::Iri("http://ex/ElonMusk"));
}

TEST_F(StoreTest, HashOnlyStoreAnswersSame) {
  rdf::Graph g = Figure1Graph();
  RdfStoreOptions opts;
  opts.use_coloring = false;
  opts.k_direct = 8;
  opts.k_reverse = 8;
  auto store = RdfStore::Load(std::move(g), opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  std::string q = std::string(kPrefix) +
                  "SELECT ?x ?y WHERE { ?x :born ?b . ?x :founder ?y }";
  auto a = (*store)->Query(q);
  auto b = db2rdf_->Query(q);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Signature(*a), Signature(*b));
}

TEST_F(StoreTest, TinyKSpillStoreAnswersSame) {
  rdf::Graph g = Figure1Graph();
  RdfStoreOptions opts;
  opts.use_coloring = false;
  opts.k_direct = 2;  // forces spills (Android has 5 predicates)
  opts.k_reverse = 2;
  opts.hash_functions = 1;
  auto store = RdfStore::Load(std::move(g), opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_GT((*store)->load_stats().dph_spill_rows, 0u);
  // Star query over a spilled entity still answers correctly (merging is
  // suppressed for spilled predicates).
  std::string q =
      std::string(kPrefix) +
      "SELECT ?v ?k WHERE { :Android :version ?v . :Android :kernel ?k . "
      ":Android :graphics ?g }";
  auto a = (*store)->Query(q);
  auto b = db2rdf_->Query(q);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Signature(*a), Signature(*b));
  EXPECT_EQ(a->size(), 1u);
}

}  // namespace
}  // namespace rdfrel::store
