/// Differential testing of the two SQL drive modes through the full SPARQL
/// stack: every random query must produce the same answer multiset whether
/// the embedded engine runs row-at-a-time (Volcano fallback) or
/// batch-at-a-time (vectorized default), on both the DB2RDF store and the
/// triple-store baseline.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "store/rdf_store.h"
#include "store/triple_store_backend.h"
#include "util/random.h"

namespace rdfrel::store {
namespace {

using rdf::Term;

constexpr int kNumPredicates = 6;
constexpr int kNumSubjects = 30;
constexpr int kNumObjects = 20;

Term Pred(uint64_t i) { return Term::Iri("http://d/p" + std::to_string(i)); }
Term Subj(uint64_t i) { return Term::Iri("http://d/s" + std::to_string(i)); }
Term Obj(uint64_t i) {
  if (i % 3 == 0) return Term::Literal("lit" + std::to_string(i));
  return Subj(i % kNumSubjects);
}

rdf::Graph RandomGraph(Random& rng, int num_triples) {
  rdf::Graph g;
  for (int i = 0; i < num_triples; ++i) {
    g.Add({Subj(rng.Uniform(kNumSubjects)), Pred(rng.Uniform(kNumPredicates)),
           Obj(rng.Uniform(kNumObjects))});
  }
  return g;
}

std::string RandomTriple(Random& rng) {
  auto component = [&](int pos) -> std::string {
    uint64_t die = rng.Uniform(10);
    if (pos == 1) {
      if (die < 8) {
        return "<http://d/p" + std::to_string(rng.Uniform(kNumPredicates)) +
               ">";
      }
      return "?v" + std::to_string(rng.Uniform(4));
    }
    if (die < 6) return "?v" + std::to_string(rng.Uniform(4));
    return "<http://d/s" + std::to_string(rng.Uniform(kNumSubjects)) + ">";
  };
  return component(0) + " " + component(1) + " " + component(2);
}

std::string RandomQuery(Random& rng) {
  std::string q = "SELECT * WHERE { ";
  uint64_t shape = rng.Uniform(5);
  int triples = 1 + static_cast<int>(rng.Uniform(3));
  switch (shape) {
    case 0:
      for (int i = 0; i < triples; ++i) q += RandomTriple(rng) + " . ";
      break;
    case 1:
      q += RandomTriple(rng) + " . { " + RandomTriple(rng) + " } UNION { " +
           RandomTriple(rng) + " } ";
      break;
    case 2:
      for (int i = 0; i < triples; ++i) q += RandomTriple(rng) + " . ";
      q += "OPTIONAL { " + RandomTriple(rng) + " } ";
      break;
    case 3:
      for (int i = 0; i < triples; ++i) q += RandomTriple(rng) + " . ";
      q += "FILTER (BOUND(?v" + std::to_string(rng.Uniform(4)) + ")) ";
      break;
    default:  // star on a shared subject variable
      for (int i = 0; i < triples; ++i) {
        q += "?v0 <http://d/p" + std::to_string(rng.Uniform(kNumPredicates)) +
             "> ?o" + std::to_string(i) + " . ";
      }
      break;
  }
  q += "}";
  return q;
}

std::multiset<std::string> Signature(const ResultSet& rs) {
  std::multiset<std::string> out;
  for (const auto& row : rs.rows) {
    std::string sig;
    for (const auto& v : row) {
      sig += v.has_value() ? v->ToNTriples() : "UNBOUND";
      sig += "\x1f";
    }
    out.insert(sig);
  }
  return out;
}

template <typename Store>
void CheckStoreAcrossModes(Store& store, Random& rng, int num_queries) {
  for (int i = 0; i < num_queries; ++i) {
    std::string q = RandomQuery(rng);
    store.database().set_exec_mode(sql::ExecMode::kBatch);
    auto batch = store.Query(q);
    store.database().set_exec_mode(sql::ExecMode::kRow);
    auto row = store.Query(q);
    store.database().set_exec_mode(sql::ExecMode::kBatch);
    ASSERT_EQ(batch.ok(), row.ok())
        << q << "\nbatch: " << batch.status().ToString()
        << "\nrow: " << row.status().ToString();
    if (!batch.ok()) continue;  // both rejected
    if (batch->size() > 100000) continue;  // cap runaway cross products
    ASSERT_EQ(Signature(*batch), Signature(*row))
        << "drive modes disagree on query:\n"
        << q << "\nbatch rows: " << batch->size()
        << ", row rows: " << row->size();
  }
}

TEST(VectorizedDifferentialTest, Db2RdfStoreModesAgree) {
  Random rng(20260806);
  rdf::Graph g = RandomGraph(rng, 250);
  auto store = RdfStore::Load(std::move(g), {});
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  CheckStoreAcrossModes(**store, rng, 30);
}

TEST(VectorizedDifferentialTest, TripleStoreModesAgree) {
  Random rng(4096);
  rdf::Graph g = RandomGraph(rng, 250);
  auto store = TripleStoreBackend::Load(std::move(g));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  CheckStoreAcrossModes(**store, rng, 30);
}

TEST(VectorizedDifferentialTest, ExplainIncludesExecutionProfile) {
  Random rng(7);
  rdf::Graph g = RandomGraph(rng, 100);
  auto store = RdfStore::Load(std::move(g), {});
  ASSERT_TRUE(store.ok());
  auto ex = (*store)->Explain(
      "SELECT ?s ?o WHERE { ?s <http://d/p0> ?o }", {});
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_FALSE(ex->exec_stats.empty());
  EXPECT_NE(ex->exec_stats.find("rows="), std::string::npos)
      << ex->exec_stats;
  EXPECT_NE(ex->exec_stats.find("batches="), std::string::npos)
      << ex->exec_stats;
}

}  // namespace
}  // namespace rdfrel::store
