/// Randomized differential testing: random graphs and random queries must
/// produce identical answer multisets on the DB2RDF store (in several
/// configurations, including spill-heavy tiny-k ones) and the triple-store
/// baseline. This is the strongest correctness net over the optimizer,
/// merger, translator, and engine together.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "store/rdf_store.h"
#include "store/triple_store_backend.h"
#include "util/random.h"

namespace rdfrel::store {
namespace {

using rdf::Term;

constexpr int kNumPredicates = 8;
constexpr int kNumSubjects = 40;
constexpr int kNumObjects = 25;

Term Pred(uint64_t i) {
  return Term::Iri("http://d/p" + std::to_string(i));
}
Term Subj(uint64_t i) {
  return Term::Iri("http://d/s" + std::to_string(i));
}
Term Obj(uint64_t i) {
  // Mix IRIs and literals; IRIs overlap the subject space so chains and
  // triangles exist.
  if (i % 3 == 0) return Term::Literal("lit" + std::to_string(i));
  return Subj(i % kNumSubjects);
}

rdf::Graph RandomGraph(Random& rng, int num_triples) {
  rdf::Graph g;
  for (int i = 0; i < num_triples; ++i) {
    g.Add({Subj(rng.Uniform(kNumSubjects)),
           Pred(rng.Uniform(kNumPredicates)),
           Obj(rng.Uniform(kNumObjects))});
  }
  return g;
}

/// A random triple pattern over variables ?v0..?v3 and graph constants.
std::string RandomTriple(Random& rng) {
  auto component = [&](int pos) -> std::string {
    uint64_t die = rng.Uniform(10);
    if (pos == 1) {  // predicate: mostly constant, sometimes variable
      if (die < 8) {
        return "<http://d/p" + std::to_string(rng.Uniform(kNumPredicates)) +
               ">";
      }
      return "?v" + std::to_string(rng.Uniform(4));
    }
    if (die < 6) return "?v" + std::to_string(rng.Uniform(4));
    if (pos == 2 && die < 8) {
      uint64_t o = rng.Uniform(kNumObjects);
      if (o % 3 == 0) return "\"lit" + std::to_string(o) + "\"";
      return "<http://d/s" + std::to_string(o % kNumSubjects) + ">";
    }
    return "<http://d/s" + std::to_string(rng.Uniform(kNumSubjects)) + ">";
  };
  return component(0) + " " + component(1) + " " + component(2);
}

std::string RandomFilter(Random& rng) {
  uint64_t die = rng.Uniform(4);
  std::string var = "?v" + std::to_string(rng.Uniform(4));
  switch (die) {
    case 0:
      return "FILTER (BOUND(" + var + ")) ";
    case 1:
      return "FILTER (!BOUND(" + var + ")) ";
    case 2:
      return "FILTER (" + var + " = <http://d/s" +
             std::to_string(rng.Uniform(kNumSubjects)) + ">) ";
    default:
      return "FILTER (" + var + " != \"lit" +
             std::to_string(rng.Uniform(kNumObjects)) + "\") ";
  }
}

std::string RandomQuery(Random& rng) {
  std::string q = "SELECT * WHERE { ";
  uint64_t shape = rng.Uniform(6);
  int triples = 1 + static_cast<int>(rng.Uniform(3));
  switch (shape) {
    case 0:  // plain BGP
      for (int i = 0; i < triples; ++i) {
        q += RandomTriple(rng) + " . ";
      }
      break;
    case 1:  // BGP + UNION of two branches
      q += RandomTriple(rng) + " . { " + RandomTriple(rng) + " } UNION { " +
           RandomTriple(rng) + " } ";
      break;
    case 2:  // BGP + OPTIONAL
      for (int i = 0; i < triples; ++i) q += RandomTriple(rng) + " . ";
      q += "OPTIONAL { " + RandomTriple(rng) + " } ";
      break;
    case 3:  // UNION of BGPs
      q += "{ " + RandomTriple(rng) + " . " + RandomTriple(rng) +
           " } UNION { " + RandomTriple(rng) + " } ";
      break;
    case 4:  // BGP + FILTER
      for (int i = 0; i < triples; ++i) q += RandomTriple(rng) + " . ";
      q += RandomFilter(rng);
      break;
    default:  // star on a shared subject variable
      for (int i = 0; i < triples; ++i) {
        q += "?v0 <http://d/p" +
             std::to_string(rng.Uniform(kNumPredicates)) + "> ?o" +
             std::to_string(i) + " . ";
      }
      break;
  }
  q += "}";
  return q;
}

std::multiset<std::string> Signature(const ResultSet& rs) {
  std::multiset<std::string> out;
  for (const auto& row : rs.rows) {
    std::string sig;
    for (const auto& v : row) {
      sig += v.has_value() ? v->ToNTriples() : "UNBOUND";
      sig += "\x1f";
    }
    out.insert(sig);
  }
  return out;
}

struct DiffParam {
  uint64_t seed;
  uint32_t k;            // 0 = auto coloring
  bool use_coloring;
  uint32_t hash_fns;
};

class DifferentialTest : public ::testing::TestWithParam<DiffParam> {};

TEST_P(DifferentialTest, RandomQueriesAgreeAcrossBackendsAndConfigs) {
  const DiffParam& p = GetParam();
  Random rng(p.seed);
  rdf::Graph g1 = RandomGraph(rng, 300);

  // Re-generate identical graphs from the same stream position by reusing
  // the triples (decode/re-add).
  auto clone = [&](const rdf::Graph& g) {
    rdf::Graph out;
    for (const auto& t : g.triples()) {
      auto decoded = g.dictionary().DecodeTriple(t);
      out.Add(*decoded);
    }
    return out;
  };

  RdfStoreOptions opts;
  opts.k_direct = p.k;
  opts.k_reverse = p.k;
  opts.use_coloring = p.use_coloring;
  opts.hash_functions = p.hash_fns;
  auto db2rdf = RdfStore::Load(clone(g1), opts);
  ASSERT_TRUE(db2rdf.ok()) << db2rdf.status().ToString();
  auto triple = TripleStoreBackend::Load(clone(g1));
  ASSERT_TRUE(triple.ok());

  int checked = 0;
  for (int i = 0; i < 40; ++i) {
    std::string q = RandomQuery(rng);
    auto a = (*db2rdf)->Query(q);
    auto b = (*triple)->Query(q);
    ASSERT_EQ(a.ok(), b.ok())
        << q << "\nDB2RDF: " << a.status().ToString()
        << "\ntriple: " << b.status().ToString();
    if (!a.ok()) continue;  // both rejected (e.g. unsupported shape)
    // Cap runaway cross products to keep the test fast.
    if (a->size() > 200000) continue;
    ASSERT_EQ(Signature(*a), Signature(*b))
        << "disagreement on query:\n"
        << q << "\nDB2RDF rows: " << a->size()
        << ", triple-store rows: " << b->size() << "\nSQL:\n"
        << (*db2rdf)->TranslateToSql(q).ValueOr("<err>");
    ++checked;

    // Also cross-check the ablation pipelines on a subset.
    if (i % 5 == 0) {
      for (QueryOptions qo :
           {QueryOptions{FlowMode::kParseOrder, true, true},
            QueryOptions{FlowMode::kGreedy, true, false},
            QueryOptions{FlowMode::kGreedy, false, false}}) {
        auto c = (*db2rdf)->QueryWith(q, qo);
        ASSERT_TRUE(c.ok()) << q << "\n" << c.status().ToString();
        ASSERT_EQ(Signature(*c), Signature(*a))
            << "ablation disagreement (flow=" << static_cast<int>(qo.flow)
            << " lf=" << qo.late_fusing << " merge=" << qo.merging
            << ") on:\n"
            << q;
      }
    }
  }
  EXPECT_GT(checked, 20);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialTest,
    ::testing::Values(
        DiffParam{1, 0, true, 2},   // default: auto coloring
        DiffParam{2, 0, true, 2},
        DiffParam{3, 16, false, 2},  // pure hashing
        DiffParam{4, 3, false, 1},   // tiny k: spill-heavy
        DiffParam{5, 2, false, 1},   // tinier k: everything spills
        DiffParam{6, 0, true, 3},
        DiffParam{7, 4, true, 2},    // forced small budget + fallback
        DiffParam{8, 3, false, 2},
        DiffParam{9, 0, true, 2},
        DiffParam{10, 8, false, 2},
        DiffParam{11, 2, true, 2},
        DiffParam{12, 0, true, 1}),
    [](const ::testing::TestParamInfo<DiffParam>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_k" +
             std::to_string(param_info.param.k) +
             (param_info.param.use_coloring ? "_color" : "_hash") + "_f" +
             std::to_string(param_info.param.hash_fns);
    });

}  // namespace
}  // namespace rdfrel::store
