/// SPARQL 1.1 property paths (the paper's future-work item): sequences,
/// alternatives, and inverses rewrite into plain patterns; transitive
/// closure (+, *) evaluates against materialized closure tables.

#include <gtest/gtest.h>

#include "sparql/parser.h"
#include "store/rdf_store.h"
#include "store/triple_store_backend.h"

namespace rdfrel::store {
namespace {

using rdf::Term;

/// A small org chart: a manages b manages c manages d; plus departments.
rdf::Graph OrgGraph() {
  rdf::Graph g;
  auto iri = [](const std::string& s) { return Term::Iri("http://o/" + s); };
  g.Add({iri("a"), iri("manages"), iri("b")});
  g.Add({iri("b"), iri("manages"), iri("c")});
  g.Add({iri("c"), iri("manages"), iri("d")});
  g.Add({iri("x"), iri("manages"), iri("y")});  // separate chain
  g.Add({iri("a"), iri("worksIn"), iri("eng")});
  g.Add({iri("b"), iri("worksIn"), iri("eng")});
  g.Add({iri("d"), iri("worksIn"), iri("sales")});
  g.Add({iri("eng"), iri("partOf"), iri("acme")});
  return g;
}

constexpr const char* kPrefix = "PREFIX : <http://o/> ";

class PathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = RdfStore::Load(OrgGraph());
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    store_ = std::move(*s);
  }
  ResultSet Q(const std::string& q) {
    auto r = store_->Query(std::string(kPrefix) + q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : ResultSet{};
  }
  std::unique_ptr<RdfStore> store_;
};

TEST_F(PathTest, ParserRewritesSequences) {
  auto q = sparql::ParseQuery(
      "SELECT ?x WHERE { ?x <http://o/manages>/<http://o/worksIn> ?d }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_triples, 2);  // chained via a fresh variable
}

TEST_F(PathTest, ParserRewritesAlternativesToUnion) {
  auto q = sparql::ParseQuery(
      "SELECT ?x WHERE { ?x <http://o/a>|<http://o/b> ?y }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where->kind, sparql::PatternKind::kOr);
  EXPECT_EQ(q->num_triples, 2);
}

TEST_F(PathTest, SequencePath) {
  // Department of everyone I directly manage.
  auto rs = Q("SELECT ?d WHERE { :a :manages/:worksIn ?d }");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Term::Iri("http://o/eng"));
}

TEST_F(PathTest, InversePath) {
  // ^manages: who manages b.
  auto rs = Q("SELECT ?m WHERE { :b ^:manages ?m }");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Term::Iri("http://o/a"));
}

TEST_F(PathTest, AlternativePath) {
  auto rs = Q("SELECT ?v WHERE { :a :manages|:worksIn ?v }");
  EXPECT_EQ(rs.size(), 2u);  // b and eng
}

TEST_F(PathTest, TransitivePlus) {
  auto rs = Q("SELECT ?r WHERE { :a :manages+ ?r }");
  EXPECT_EQ(rs.size(), 3u);  // b, c, d
  auto none = Q("SELECT ?r WHERE { :d :manages+ ?r }");
  EXPECT_EQ(none.size(), 0u);
}

TEST_F(PathTest, TransitiveStarIncludesSelf) {
  auto rs = Q("SELECT ?r WHERE { :c :manages* ?r }");
  EXPECT_EQ(rs.size(), 2u);  // c (zero-length) and d
}

TEST_F(PathTest, TransitiveReverseDirection) {
  // All (transitive) managers of d.
  auto rs = Q("SELECT ?m WHERE { ?m :manages+ :d }");
  EXPECT_EQ(rs.size(), 3u);  // a, b, c
}

TEST_F(PathTest, TransitiveJoinedWithPattern) {
  // Transitive reports of a who work in sales.
  auto rs = Q("SELECT ?r WHERE { :a :manages+ ?r . ?r :worksIn :sales }");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Term::Iri("http://o/d"));
}

TEST_F(PathTest, PathInSequenceWithClosure) {
  // manages+/worksIn : departments of all transitive reports.
  auto rs = Q("SELECT DISTINCT ?d WHERE { :a :manages+/:worksIn ?d }");
  EXPECT_EQ(rs.size(), 2u);  // eng (b), sales (d); c has none
}

TEST_F(PathTest, ClosureTableIsCached) {
  ASSERT_TRUE(store_->Query(std::string(kPrefix) +
                            "SELECT ?r WHERE { :a :manages+ ?r }")
                  .ok());
  ASSERT_TRUE(store_->Query(std::string(kPrefix) +
                            "SELECT ?r WHERE { :b :manages+ ?r }")
                  .ok());
  // Same closure table reused: only one "path0" table exists.
  EXPECT_TRUE(store_->database().catalog().HasTable("path0"));
  EXPECT_FALSE(store_->database().catalog().HasTable("path1"));
}

TEST_F(PathTest, BaselineRejectsTransitivePaths) {
  auto triple = TripleStoreBackend::Load(OrgGraph());
  ASSERT_TRUE(triple.ok());
  auto st = (*triple)
                ->Query(std::string(kPrefix) +
                        "SELECT ?r WHERE { :a :manages+ ?r }")
                .status();
  EXPECT_TRUE(st.IsUnsupported());
}

TEST_F(PathTest, IncrementalInsertInvalidatesNothingButNewQueriesStale) {
  // Documented behaviour: closure tables are built lazily and cached; they
  // reflect the data as of first use.
  auto before = Q("SELECT ?r WHERE { :a :manages+ ?r }");
  EXPECT_EQ(before.size(), 3u);
}

}  // namespace
}  // namespace rdfrel::store
