/// Serial-vs-parallel differential over every benchmark workload and all
/// three backends: each query runs once with max_threads=1 and once with a
/// parallel request (small morsels so tiny test data still splits), and the
/// results must be *byte-identical in order* — the exchange's determinism
/// contract, not just multiset equality. Suites are prefixed ParallelTest
/// so `ctest -R ParallelTest` (and the TSan CI job) runs this layer.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchdata/dbpedia.h"
#include "benchdata/lubm.h"
#include "benchdata/micro.h"
#include "benchdata/prbench.h"
#include "benchdata/sp2bench.h"
#include "store/backend_util.h"
#include "store/predicate_store_backend.h"
#include "store/rdf_store.h"
#include "store/triple_store_backend.h"

namespace rdfrel::store {
namespace {

benchdata::Workload MakeSmall(const std::string& name) {
  if (name == "micro") return benchdata::MakeMicro(400, 11);
  if (name == "lubm") return benchdata::MakeLubm(2, 11);
  if (name == "sp2bench") return benchdata::MakeSp2Bench(4, 11);
  if (name == "dbpedia") return benchdata::MakeDbpedia(400, 300, 11);
  if (name == "prbench") return benchdata::MakePrbench(2, 11);
  return {};
}

/// Ordered row signatures: order differences are failures.
std::vector<std::string> OrderedSignature(const ResultSet& rs) {
  std::vector<std::string> out;
  out.reserve(rs.rows.size());
  for (const auto& row : rs.rows) {
    std::string sig;
    for (const auto& v : row) {
      sig += v.has_value() ? v->ToNTriples() : "UNBOUND";
      sig += "\x1f";
    }
    out.push_back(std::move(sig));
  }
  return out;
}

void ExpectSerialParallelIdentical(SparqlStore& store,
                                   const benchdata::Workload& w,
                                   const std::string& backend) {
  for (const auto& q : w.queries) {
    QueryOptions serial;
    serial.max_threads = 1;
    auto a = store.QueryWith(q.sparql, serial);
    ASSERT_TRUE(a.ok()) << backend << "/" << w.name << "/" << q.id << ": "
                        << a.status().ToString();
    for (unsigned threads : {2u, 4u}) {
      QueryOptions par;
      par.max_threads = threads;
      par.morsel_rows = 32;  // force many morsels on small data
      auto b = store.QueryWith(q.sparql, par);
      ASSERT_TRUE(b.ok()) << backend << "/" << w.name << "/" << q.id << ": "
                          << b.status().ToString();
      ASSERT_EQ(OrderedSignature(*a), OrderedSignature(*b))
          << backend << "/" << w.name << "/" << q.id << " threads=" << threads
          << ": parallel result differs from serial ("
          << a->size() << " vs " << b->size() << " rows)";
    }
  }
}

class ParallelTestWorkloads : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelTestWorkloads, Db2RdfSerialParallelIdentical) {
  benchdata::Workload w = MakeSmall(GetParam());
  ASSERT_FALSE(w.queries.empty());
  auto store = RdfStore::Load(std::move(w.graph));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ExpectSerialParallelIdentical(**store, w, "db2rdf");
}

TEST_P(ParallelTestWorkloads, TripleStoreSerialParallelIdentical) {
  benchdata::Workload w = MakeSmall(GetParam());
  ASSERT_FALSE(w.queries.empty());
  auto store = TripleStoreBackend::Load(std::move(w.graph));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ExpectSerialParallelIdentical(**store, w, "triple");
}

TEST_P(ParallelTestWorkloads, PredicateStoreSerialParallelIdentical) {
  benchdata::Workload w = MakeSmall(GetParam());
  ASSERT_FALSE(w.queries.empty());
  auto store = PredicateStoreBackend::Load(std::move(w.graph));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ExpectSerialParallelIdentical(**store, w, "predicate");
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ParallelTestWorkloads,
                         ::testing::Values("micro", "lubm", "sp2bench",
                                           "dbpedia", "prbench"),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

TEST(ParallelTestPlanCache, IdentityExcludesExecutionKnobs) {
  // A plan cached at one thread count must serve every other: max_threads
  // and morsel_rows are execution-only, never part of plan identity.
  benchdata::Workload w = MakeSmall("micro");
  auto store = RdfStore::Load(std::move(w.graph));
  ASSERT_TRUE(store.ok());
  const std::string q = w.queries.front().sparql;

  QueryOptions serial;
  serial.max_threads = 1;
  QueryOptions par;
  par.max_threads = 4;
  par.morsel_rows = 32;

  // Key equality is what the cache uses.
  EXPECT_EQ(PlanCacheKey(q, serial), PlanCacheKey(q, par));
  EXPECT_TRUE(serial == par);

  // Behavioral check: the second request (different knobs) hits the cache.
  auto r1 = (*store)->QueryWith(q, serial);
  ASSERT_TRUE(r1.ok());
  const auto before = (*store)->plan_cache_stats();
  auto r2 = (*store)->QueryWith(q, par);
  ASSERT_TRUE(r2.ok());
  const auto after = (*store)->plan_cache_stats();
  EXPECT_EQ(after.hits, before.hits + 1)
      << "parallel request missed the plan cached by the serial request";
  EXPECT_EQ(OrderedSignature(*r1), OrderedSignature(*r2));
}

}  // namespace
}  // namespace rdfrel::store
