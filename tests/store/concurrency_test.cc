/// Tests for the concurrent read path and the plan/translation cache:
/// cache hits on repeated queries, invalidation on Insert/Delete (including
/// materialized property-path closure tables), the uniform QueryWith /
/// Explain surface across all three backends, and a reader/writer stress
/// test meant to run under -fsanitize=thread (see scripts/check.sh).

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "store/predicate_store_backend.h"
#include "store/rdf_store.h"
#include "store/triple_store_backend.h"

namespace rdfrel::store {
namespace {

using rdf::Term;

rdf::Graph ChainGraph(int n) {
  rdf::Graph g;
  auto iri = [](const std::string& s) { return Term::Iri("http://ex/" + s); };
  for (int i = 0; i < n; ++i) {
    g.Add({iri("n" + std::to_string(i)), iri("next"),
           iri("n" + std::to_string(i + 1))});
    g.Add({iri("n" + std::to_string(i)), iri("label"),
           Term::Literal("node " + std::to_string(i))});
  }
  return g;
}

constexpr const char* kPrefix = "PREFIX : <http://ex/> ";

std::multiset<std::string> Signature(const ResultSet& rs) {
  std::multiset<std::string> out;
  for (const auto& row : rs.rows) {
    std::string sig;
    for (const auto& v : row) {
      sig += v.has_value() ? v->ToNTriples() : "UNBOUND";
      sig += "\x1f";
    }
    out.insert(sig);
  }
  return out;
}

TEST(PlanCacheTest, IdenticalQueriesHitTheCache) {
  auto store = RdfStore::Load(ChainGraph(10)).value();
  const std::string q =
      std::string(kPrefix) + "SELECT ?x ?y WHERE { ?x :next ?y }";
  auto first = store->Query(q);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  util::CacheStats after_miss = store->plan_cache_stats();
  EXPECT_EQ(after_miss.hits, 0u);
  EXPECT_EQ(after_miss.misses, 1u);
  EXPECT_EQ(after_miss.entries, 1u);

  auto second = store->Query(q);
  ASSERT_TRUE(second.ok());
  util::CacheStats after_hit = store->plan_cache_stats();
  EXPECT_EQ(after_hit.hits, 1u);
  EXPECT_EQ(after_hit.misses, 1u);
  EXPECT_EQ(Signature(*first), Signature(*second));
}

TEST(PlanCacheTest, DifferentOptionsAreDifferentEntries) {
  auto store = RdfStore::Load(ChainGraph(10)).value();
  const std::string q =
      std::string(kPrefix) +
      "SELECT ?x ?l WHERE { ?x :next ?y . ?x :label ?l }";
  QueryOptions greedy;
  QueryOptions naive;
  naive.flow = FlowMode::kParseOrder;
  auto a = store->QueryWith(q, greedy);
  auto b = store->QueryWith(q, naive);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(Signature(*a), Signature(*b));
  util::CacheStats s = store->plan_cache_stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);
  // Re-running each hits its own entry.
  ASSERT_TRUE(store->QueryWith(q, greedy).ok());
  ASSERT_TRUE(store->QueryWith(q, naive).ok());
  EXPECT_EQ(store->plan_cache_stats().hits, 2u);
}

TEST(PlanCacheTest, InsertInvalidatesCacheAndResultsReflectWrite) {
  auto store = RdfStore::Load(ChainGraph(5)).value();
  const std::string q =
      std::string(kPrefix) + "SELECT ?x ?y WHERE { ?x :next ?y }";
  auto before = store->Query(q);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 5u);
  ASSERT_TRUE(store->Query(q).ok());  // warm the cache
  EXPECT_EQ(store->plan_cache_stats().hits, 1u);

  ASSERT_TRUE(store
                  ->Insert({Term::Iri("http://ex/n99"),
                            Term::Iri("http://ex/next"),
                            Term::Iri("http://ex/n100")})
                  .ok());
  EXPECT_EQ(store->plan_cache_stats().entries, 0u) << "cache not cleared";
  auto after = store->Query(q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 6u);
}

TEST(PlanCacheTest, DeleteInvalidatesClosureTables) {
  auto store = RdfStore::Load(ChainGraph(4)).value();
  // n0 -> n1 -> n2 -> n3 -> n4: n0 reaches 4 nodes transitively.
  const std::string q =
      std::string(kPrefix) + "SELECT ?y WHERE { :n0 :next+ ?y }";
  auto before = store->Query(q);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before->size(), 4u);
  ASSERT_TRUE(store->Query(q).ok());  // cached path plan
  ASSERT_GE(store->plan_cache_stats().hits, 1u);

  // Cutting the chain at n2 shrinks n0's reachable set to {n1, n2}.
  ASSERT_TRUE(store
                  ->Delete({Term::Iri("http://ex/n2"),
                            Term::Iri("http://ex/next"),
                            Term::Iri("http://ex/n3")})
                  .ok());
  EXPECT_EQ(store->plan_cache_stats().entries, 0u);
  auto after = store->Query(q);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->size(), 2u);
}

TEST(PlanCacheTest, BaselineBackendsCacheToo) {
  const std::string q =
      std::string(kPrefix) + "SELECT ?x ?y WHERE { ?x :next ?y }";
  auto triple = TripleStoreBackend::Load(ChainGraph(6)).value();
  auto pred = PredicateStoreBackend::Load(ChainGraph(6)).value();
  for (SparqlStore* s : {static_cast<SparqlStore*>(triple.get()),
                         static_cast<SparqlStore*>(pred.get())}) {
    ASSERT_TRUE(s->Query(q).ok()) << s->name();
    ASSERT_TRUE(s->Query(q).ok()) << s->name();
    util::CacheStats cs = s->plan_cache_stats();
    EXPECT_EQ(cs.misses, 1u) << s->name();
    EXPECT_EQ(cs.hits, 1u) << s->name();
  }
}

TEST(UniformInterfaceTest, AllBackendsAnswerQueryWithAndExplain) {
  const std::string q =
      std::string(kPrefix) +
      "SELECT ?x ?l WHERE { ?x :next ?y . ?x :label ?l }";
  auto db2rdf = RdfStore::Load(ChainGraph(8)).value();
  auto triple = TripleStoreBackend::Load(ChainGraph(8)).value();
  auto pred = PredicateStoreBackend::Load(ChainGraph(8)).value();
  std::vector<SparqlStore*> stores = {db2rdf.get(), triple.get(),
                                      pred.get()};
  QueryOptions opts;
  opts.flow = FlowMode::kGreedy;

  auto reference = db2rdf->QueryWith(q, opts);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (SparqlStore* s : stores) {
    auto via_with = s->QueryWith(q, opts);
    ASSERT_TRUE(via_with.ok()) << s->name() << ": "
                               << via_with.status().ToString();
    EXPECT_EQ(Signature(*via_with), Signature(*reference)) << s->name();
    // The thin overload must agree with explicit defaults.
    auto via_plain = s->Query(q);
    ASSERT_TRUE(via_plain.ok()) << s->name();
    EXPECT_EQ(Signature(*via_plain), Signature(*via_with)) << s->name();

    auto ex = s->Explain(q, opts);
    ASSERT_TRUE(ex.ok()) << s->name() << ": " << ex.status().ToString();
    EXPECT_FALSE(ex->parse_tree.empty()) << s->name();
    EXPECT_FALSE(ex->flow_tree.empty()) << s->name();
    EXPECT_FALSE(ex->exec_tree.empty()) << s->name();
    EXPECT_FALSE(ex->plan_tree.empty()) << s->name();
    EXPECT_FALSE(ex->sql.empty()) << s->name();
    // TranslateWith produces the SQL the store executes; Explain agrees.
    auto sql = s->TranslateWith(q, opts);
    ASSERT_TRUE(sql.ok()) << s->name();
    EXPECT_EQ(*sql, ex->sql) << s->name();
  }
}

TEST(ConcurrencyTest, ParallelReadersSeeConsistentResults) {
  auto store = RdfStore::Load(ChainGraph(32)).value();
  const std::string q =
      std::string(kPrefix) + "SELECT ?x ?y WHERE { ?x :next ?y }";
  auto expected = store->Query(q);
  ASSERT_TRUE(expected.ok());
  const auto want = Signature(*expected);

  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto r = store->Query(q);
        if (!r.ok() || Signature(*r) != want) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  util::CacheStats s = store->plan_cache_stats();
  EXPECT_GE(s.hits, static_cast<uint64_t>(kThreads * kIters - kThreads));
}

TEST(ConcurrencyTest, ReadersAndWriterStress) {
  auto store = RdfStore::Load(ChainGraph(16)).value();
  const std::vector<std::string> queries = {
      std::string(kPrefix) + "SELECT ?x ?y WHERE { ?x :next ?y }",
      std::string(kPrefix) + "SELECT ?l WHERE { :n3 :label ?l }",
      std::string(kPrefix) +
          "SELECT ?x ?l WHERE { ?x :next ?y . ?x :label ?l }",
      std::string(kPrefix) + "SELECT ?y WHERE { :n0 :next+ ?y }",
  };

  constexpr int kReaders = 8;
  constexpr int kReadIters = 40;
  constexpr int kWriteIters = 30;
  std::atomic<int> reader_errors{0};
  std::atomic<int> writer_errors{0};

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kReadIters; ++i) {
        const std::string& q =
            queries[static_cast<size_t>(t + i) % queries.size()];
        auto r = store->Query(q);
        // Results legitimately change under the writer; only hard errors
        // count as failures.
        if (!r.ok()) reader_errors.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {
    auto iri = [](const std::string& s) {
      return Term::Iri("http://ex/" + s);
    };
    for (int i = 0; i < kWriteIters; ++i) {
      rdf::Triple t{iri("w" + std::to_string(i)), iri("next"),
                    iri("w" + std::to_string(i + 1))};
      if (!store->Insert(t).ok()) writer_errors.fetch_add(1);
      if (i % 3 == 0) {
        if (!store->Delete(t).ok()) writer_errors.fetch_add(1);
      }
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_EQ(writer_errors.load(), 0);

  // The store is still coherent after the churn.
  auto sane = store->Query(std::string(kPrefix) +
                           "SELECT ?x ?y WHERE { ?x :next ?y }");
  ASSERT_TRUE(sane.ok()) << sane.status().ToString();
  EXPECT_GT(sane->size(), 0u);
}

}  // namespace
}  // namespace rdfrel::store
