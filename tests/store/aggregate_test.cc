/// SPARQL 1.1 aggregate queries end-to-end (the paper's future-work item):
/// COUNT/SUM/MIN/MAX/AVG with GROUP BY over the DB2RDF store and the
/// baselines.

#include <gtest/gtest.h>

#include "store/rdf_store.h"
#include "store/triple_store_backend.h"

namespace rdfrel::store {
namespace {

using rdf::Term;

rdf::Graph CompanyGraph() {
  rdf::Graph g;
  auto iri = [](const std::string& s) { return Term::Iri("http://a/" + s); };
  auto lit = [](const std::string& s) { return Term::Literal(s); };
  // Two industries; employee counts are numeric literals.
  g.Add({iri("IBM"), iri("industry"), lit("tech")});
  g.Add({iri("IBM"), iri("employees"), lit("300")});
  g.Add({iri("Google"), iri("industry"), lit("tech")});
  g.Add({iri("Google"), iri("employees"), lit("200")});
  g.Add({iri("Shell"), iri("industry"), lit("energy")});
  g.Add({iri("Shell"), iri("employees"), lit("90")});
  g.Add({iri("BP"), iri("industry"), lit("energy")});
  // BP has no employee count.
  return g;
}

constexpr const char* kPrefix = "PREFIX : <http://a/> ";

class AggregateQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = RdfStore::Load(CompanyGraph());
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    store_ = std::move(*s);
  }
  std::unique_ptr<RdfStore> store_;
};

TEST_F(AggregateQueryTest, GlobalCount) {
  auto r = store_->Query(std::string(kPrefix) +
                         "SELECT (COUNT(?c) AS ?n) WHERE { ?c :industry "
                         "?i }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->rows[0][0]->lexical(), "4");
}

TEST_F(AggregateQueryTest, CountStarAndDistinct) {
  auto r = store_->Query(std::string(kPrefix) +
                         "SELECT (COUNT(*) AS ?n) (COUNT(DISTINCT ?i) AS "
                         "?k) WHERE { ?c :industry ?i }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->rows[0][0]->lexical(), "4");
  EXPECT_EQ(r->rows[0][1]->lexical(), "2");
}

TEST_F(AggregateQueryTest, GroupByWithNumericAggregates) {
  auto r = store_->Query(
      std::string(kPrefix) +
      "SELECT ?i (COUNT(?c) AS ?n) (SUM(?e) AS ?total) (MAX(?e) AS ?top) "
      "WHERE { ?c :industry ?i OPTIONAL { ?c :employees ?e } } "
      "GROUP BY ?i ORDER BY ?i");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 2u);
  // Groups ordered by industry id (load order): tech first, then energy.
  std::map<std::string, std::vector<std::string>> by_industry;
  for (const auto& row : r->rows) {
    std::vector<std::string> vals;
    for (size_t i = 1; i < row.size(); ++i) {
      vals.push_back(row[i].has_value() ? row[i]->lexical() : "UNBOUND");
    }
    by_industry[row[0]->lexical()] = vals;
  }
  ASSERT_TRUE(by_industry.count("tech"));
  EXPECT_EQ(by_industry["tech"][0], "2");    // companies
  EXPECT_EQ(by_industry["tech"][1], "500");  // SUM employees
  EXPECT_EQ(by_industry["tech"][2], "300");  // MAX employees
  ASSERT_TRUE(by_industry.count("energy"));
  EXPECT_EQ(by_industry["energy"][0], "2");
  EXPECT_EQ(by_industry["energy"][1], "90");  // BP unbound: skipped
}

TEST_F(AggregateQueryTest, AvgIsDecimal) {
  auto r = store_->Query(std::string(kPrefix) +
                         "SELECT (AVG(?e) AS ?avg) WHERE { ?c :employees "
                         "?e }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->rows[0][0]->datatype(),
            "http://www.w3.org/2001/XMLSchema#decimal");
  EXPECT_NEAR(std::stod(r->rows[0][0]->lexical()), 196.6667, 0.01);
}

TEST_F(AggregateQueryTest, UngroupedProjectionRejected) {
  auto st = store_
                ->Query(std::string(kPrefix) +
                        "SELECT ?c (COUNT(?i) AS ?n) WHERE { ?c :industry "
                        "?i }")
                .status();
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST_F(AggregateQueryTest, BaselineAgreesOnAggregates) {
  auto triple = TripleStoreBackend::Load(CompanyGraph());
  ASSERT_TRUE(triple.ok());
  std::string q = std::string(kPrefix) +
                  "SELECT ?i (COUNT(?c) AS ?n) WHERE { ?c :industry ?i } "
                  "GROUP BY ?i";
  auto a = store_->Query(q);
  auto b = (*triple)->Query(q);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->size(), b->size());
  std::set<std::string> sa, sb;
  for (const auto& row : a->rows) {
    sa.insert(row[0]->lexical() + "|" + row[1]->lexical());
  }
  for (const auto& row : b->rows) {
    sb.insert(row[0]->lexical() + "|" + row[1]->lexical());
  }
  EXPECT_EQ(sa, sb);
}

TEST_F(AggregateQueryTest, CountOverEmptyPattern) {
  auto r = store_->Query(std::string(kPrefix) +
                         "SELECT (COUNT(?x) AS ?n) WHERE { ?x :nothere ?y "
                         "}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->rows[0][0]->lexical(), "0");
}

}  // namespace
}  // namespace rdfrel::store
