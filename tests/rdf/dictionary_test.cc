#include "rdf/dictionary.h"

#include <gtest/gtest.h>

namespace rdfrel::rdf {
namespace {

TEST(DictionaryTest, EncodeAssignsDenseIdsFromOne) {
  Dictionary d;
  EXPECT_EQ(d.Encode(Term::Iri("a")), 1u);
  EXPECT_EQ(d.Encode(Term::Iri("b")), 2u);
  EXPECT_EQ(d.Encode(Term::Iri("c")), 3u);
  EXPECT_EQ(d.size(), 3u);
}

TEST(DictionaryTest, EncodeIsIdempotent) {
  Dictionary d;
  uint64_t id = d.Encode(Term::Literal("x"));
  EXPECT_EQ(d.Encode(Term::Literal("x")), id);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DictionaryTest, RoundTrip) {
  Dictionary d;
  Term t = Term::LangLiteral("bonjour", "fr");
  uint64_t id = d.Encode(t);
  auto r = d.Decode(id);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, t);
}

TEST(DictionaryTest, LookupMissingIsZero) {
  Dictionary d;
  d.Encode(Term::Iri("present"));
  EXPECT_EQ(d.Lookup(Term::Iri("absent")), 0u);
  EXPECT_NE(d.Lookup(Term::Iri("present")), 0u);
}

TEST(DictionaryTest, DecodeInvalidIds) {
  Dictionary d;
  d.Encode(Term::Iri("a"));
  EXPECT_TRUE(d.Decode(0).status().IsNotFound());
  EXPECT_TRUE(d.Decode(2).status().IsNotFound());
}

TEST(DictionaryTest, IriAndLiteralSameLexicalGetDistinctIds) {
  Dictionary d;
  EXPECT_NE(d.Encode(Term::Iri("x")), d.Encode(Term::Literal("x")));
}

TEST(DictionaryTest, TripleRoundTrip) {
  Dictionary d;
  Triple t{Term::Iri("s"), Term::Iri("p"), Term::TypedLiteral("5", "int")};
  EncodedTriple et = d.EncodeTriple(t);
  EXPECT_NE(et.subject, 0u);
  auto back = d.DecodeTriple(et);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(DictionaryTest, SharedTermsShareIds) {
  Dictionary d;
  EncodedTriple a =
      d.EncodeTriple({Term::Iri("s"), Term::Iri("p1"), Term::Iri("o")});
  EncodedTriple b =
      d.EncodeTriple({Term::Iri("s"), Term::Iri("p2"), Term::Iri("o")});
  EXPECT_EQ(a.subject, b.subject);
  EXPECT_EQ(a.object, b.object);
  EXPECT_NE(a.predicate, b.predicate);
}

TEST(DictionaryTest, MemoryUsagePositive) {
  Dictionary d;
  d.Encode(Term::Iri("http://example.org/some/long/uri"));
  EXPECT_GT(d.MemoryUsage(), 0u);
}

}  // namespace
}  // namespace rdfrel::rdf
