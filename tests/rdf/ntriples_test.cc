#include "rdf/ntriples.h"

#include <sstream>

#include <gtest/gtest.h>

namespace rdfrel::rdf {
namespace {

TEST(NTriplesTest, ParsesSimpleTriple) {
  auto r = ParseNTriplesLine("<s> <p> <o> .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->subject, Term::Iri("s"));
  EXPECT_EQ(r->predicate, Term::Iri("p"));
  EXPECT_EQ(r->object, Term::Iri("o"));
}

TEST(NTriplesTest, ParsesLiteralObject) {
  auto r = ParseNTriplesLine("<s> <p> \"Palo Alto\" .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->object, Term::Literal("Palo Alto"));
}

TEST(NTriplesTest, ParsesLangLiteral) {
  auto r = ParseNTriplesLine("<s> <p> \"chat\"@en .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->object, Term::LangLiteral("chat", "en"));
}

TEST(NTriplesTest, ParsesTypedLiteral) {
  auto r = ParseNTriplesLine("<s> <p> \"1850\"^^<http://x#int> .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->object, Term::TypedLiteral("1850", "http://x#int"));
}

TEST(NTriplesTest, ParsesBlankNodes) {
  auto r = ParseNTriplesLine("_:b1 <p> _:b2 .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->subject, Term::BlankNode("b1"));
  EXPECT_EQ(r->object, Term::BlankNode("b2"));
}

TEST(NTriplesTest, ParsesEscapes) {
  auto r = ParseNTriplesLine(R"(<s> <p> "a\"b\nc\\d" .)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->object, Term::Literal("a\"b\nc\\d"));
}

TEST(NTriplesTest, SkipsCommentsAndBlank) {
  EXPECT_TRUE(ParseNTriplesLine("# a comment").status().IsNotFound());
  EXPECT_TRUE(ParseNTriplesLine("   ").status().IsNotFound());
}

TEST(NTriplesTest, RejectsMalformed) {
  EXPECT_TRUE(ParseNTriplesLine("<s> <p> <o>").status().IsParseError());
  EXPECT_TRUE(ParseNTriplesLine("<s> <p> .").status().IsParseError());
  EXPECT_TRUE(ParseNTriplesLine("\"lit\" <p> <o> .").status().IsParseError());
  EXPECT_TRUE(ParseNTriplesLine("<s> \"p\" <o> .").status().IsParseError());
  EXPECT_TRUE(ParseNTriplesLine("<s> <p> \"unterminated .").status()
                  .IsParseError());
}

TEST(NTriplesTest, DocumentRoundTrip) {
  std::string doc =
      "<s1> <p> \"v1\" .\n"
      "# comment\n"
      "\n"
      "<s2> <p> \"v \\\"2\\\"\"@en .\n";
  auto triples = ParseNTriplesString(doc);
  ASSERT_TRUE(triples.ok());
  ASSERT_EQ(triples->size(), 2u);

  std::ostringstream out;
  ASSERT_TRUE(WriteNTriples(*triples, out).ok());
  auto again = ParseNTriplesString(out.str());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *triples);
}

TEST(NTriplesTest, ReportsParseErrorCodeOnBrokenLine) {
  std::istringstream in("<a> <b> <c> .\nbroken line\n");
  Status st = ParseNTriples(in, [](Triple) { return Status::OK(); });
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(NTriplesTest, SinkErrorStopsParse) {
  std::istringstream in("<a> <b> <c> .\n<d> <e> <f> .\n");
  int count = 0;
  Status st = ParseNTriples(in, [&](Triple) {
    ++count;
    return Status::ExecutionError("stop");
  });
  EXPECT_TRUE(st.IsExecutionError());
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace rdfrel::rdf
