#include "rdf/graph.h"

#include <gtest/gtest.h>

namespace rdfrel::rdf {
namespace {

Graph SampleGraph() {
  Graph g;
  g.Add({Term::Iri("Flint"), Term::Iri("born"), Term::Literal("1850")});
  g.Add({Term::Iri("Flint"), Term::Iri("died"), Term::Literal("1934")});
  g.Add({Term::Iri("Flint"), Term::Iri("founder"), Term::Iri("IBM")});
  g.Add({Term::Iri("Page"), Term::Iri("born"), Term::Literal("1973")});
  g.Add({Term::Iri("Page"), Term::Iri("founder"), Term::Iri("Google")});
  return g;
}

TEST(GraphTest, SizeAndDistincts) {
  Graph g = SampleGraph();
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.DistinctSubjects().size(), 2u);
  EXPECT_EQ(g.DistinctPredicates().size(), 3u);
  EXPECT_EQ(g.DistinctObjects().size(), 5u);
}

TEST(GraphTest, GroupBySubjectPreservesFirstOccurrenceOrder) {
  Graph g = SampleGraph();
  auto groups = g.GroupBySubject();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].second.size(), 3u);  // Flint first
  EXPECT_EQ(groups[1].second.size(), 2u);  // Page second
  EXPECT_EQ(groups[0].second[0], 0u);
}

TEST(GraphTest, GroupByObjectSingletons) {
  Graph g = SampleGraph();
  auto groups = g.GroupByObject();
  EXPECT_EQ(groups.size(), 5u);
  for (auto& [id, idxs] : groups) {
    EXPECT_EQ(idxs.size(), 1u) << "object id " << id;
  }
}

TEST(GraphTest, DecodeAllRoundTrips) {
  Graph g = SampleGraph();
  auto decoded = g.DecodeAll();
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 5u);
  EXPECT_EQ((*decoded)[2].object, Term::Iri("IBM"));
}

TEST(GraphTest, SharedTermsEncodedOnce) {
  Graph g = SampleGraph();
  // Terms: Flint, born, 1850, died, 1934, founder, IBM, Page, 1973, Google.
  EXPECT_EQ(g.dictionary().size(), 10u);
}

TEST(GraphTest, AddEncodedAppends) {
  Graph g;
  uint64_t s = g.dictionary().Encode(Term::Iri("s"));
  uint64_t p = g.dictionary().Encode(Term::Iri("p"));
  uint64_t o = g.dictionary().Encode(Term::Iri("o"));
  g.AddEncoded({s, p, o});
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.triples()[0].subject, s);
}

TEST(GraphTest, DuplicateTriplesKept) {
  Graph g;
  Triple t{Term::Iri("s"), Term::Iri("p"), Term::Iri("o")};
  g.Add(t);
  g.Add(t);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.dictionary().size(), 3u);
}

}  // namespace
}  // namespace rdfrel::rdf
