#include "rdf/term.h"

#include <gtest/gtest.h>

namespace rdfrel::rdf {
namespace {

TEST(TermTest, IriBasics) {
  Term t = Term::Iri("http://example.org/IBM");
  EXPECT_TRUE(t.is_iri());
  EXPECT_EQ(t.lexical(), "http://example.org/IBM");
  EXPECT_EQ(t.ToNTriples(), "<http://example.org/IBM>");
}

TEST(TermTest, PlainLiteral) {
  Term t = Term::Literal("Palo Alto");
  EXPECT_TRUE(t.is_literal());
  EXPECT_EQ(t.ToNTriples(), "\"Palo Alto\"");
}

TEST(TermTest, LangLiteral) {
  Term t = Term::LangLiteral("chat", "en");
  EXPECT_EQ(t.language(), "en");
  EXPECT_EQ(t.ToNTriples(), "\"chat\"@en");
}

TEST(TermTest, TypedLiteral) {
  Term t = Term::TypedLiteral("1850", "http://www.w3.org/2001/XMLSchema#integer");
  EXPECT_EQ(t.datatype(), "http://www.w3.org/2001/XMLSchema#integer");
  EXPECT_EQ(t.ToNTriples(),
            "\"1850\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST(TermTest, BlankNode) {
  Term t = Term::BlankNode("b1");
  EXPECT_TRUE(t.is_blank());
  EXPECT_EQ(t.ToNTriples(), "_:b1");
}

TEST(TermTest, LiteralEscaping) {
  Term t = Term::Literal("line1\nline2 \"quoted\"");
  EXPECT_EQ(t.ToNTriples(), "\"line1\\nline2 \\\"quoted\\\"\"");
}

TEST(TermTest, EqualityDistinguishesKind) {
  EXPECT_NE(Term::Iri("x"), Term::Literal("x"));
  EXPECT_NE(Term::Literal("x"), Term::BlankNode("x"));
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
}

TEST(TermTest, EqualityDistinguishesLangAndType) {
  EXPECT_NE(Term::Literal("a"), Term::LangLiteral("a", "en"));
  EXPECT_NE(Term::LangLiteral("a", "en"), Term::LangLiteral("a", "fr"));
  EXPECT_NE(Term::TypedLiteral("1", "t1"), Term::TypedLiteral("1", "t2"));
}

TEST(TermTest, DictionaryKeysDistinct) {
  // Same lexical form, different kinds/tags must never collide.
  EXPECT_NE(Term::Iri("x").DictionaryKey(), Term::Literal("x").DictionaryKey());
  EXPECT_NE(Term::Literal("x").DictionaryKey(),
            Term::LangLiteral("x", "en").DictionaryKey());
  EXPECT_NE(Term::LangLiteral("x", "en").DictionaryKey(),
            Term::TypedLiteral("x", "en").DictionaryKey());
  EXPECT_NE(Term::BlankNode("x").DictionaryKey(),
            Term::Iri("x").DictionaryKey());
}

TEST(TermTest, OrderingIsTotal) {
  Term a = Term::Iri("a"), b = Term::Iri("b");
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < a);
}

TEST(TripleTest, ToNTriples) {
  Triple t{Term::Iri("s"), Term::Iri("p"), Term::Literal("o")};
  EXPECT_EQ(t.ToNTriples(), "<s> <p> \"o\" .");
}

}  // namespace
}  // namespace rdfrel::rdf
