// rdfrel-lint fixture: blocking-under-lock VIOLATIONS. Uses the real
// util/mutex.h primitives (header-only) so the fixture exercises exactly
// the RAII types the rule matches. Each `lint-expect:` line must be
// flagged; see blocking_under_lock_clean.cc for the release-around-I/O
// twin.

#include "util/mutex.h"

namespace {

struct FakeFile {
  int SyncImpl() { return 0; }
  int Sync() { return SyncImpl(); }
};

struct FakePool {
  void Submit(int /*task*/) {}
};

class Journal {
 public:
  void FlushHoldingLock() {
    rdfrel::util::MutexLock lock(&mu_);
    seq_ = seq_ + 1;
    file_.Sync();  // lint-expect: blocking-under-lock
  }

  void HandOffHoldingLock(FakePool* pool) {
    rdfrel::util::MutexLock lock(&mu_);
    pool->Submit(seq_);  // lint-expect: blocking-under-lock
  }

  void WaitOnForeignMutex(rdfrel::util::CondVar* cv) {
    rdfrel::util::MutexLock lock(&mu_);
    cv->Wait(io_mu_);  // lint-expect: blocking-under-lock
  }

 private:
  rdfrel::util::Mutex mu_;
  rdfrel::util::Mutex io_mu_;
  FakeFile file_ RDFREL_GUARDED_BY(mu_);
  int seq_ RDFREL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Journal j;
  j.FlushHoldingLock();
  FakePool pool;
  j.HandOffHoldingLock(&pool);
  return 0;
}
