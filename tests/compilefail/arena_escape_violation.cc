// rdfrel-lint fixture: arena-escape VIOLATIONS. Every line tagged with a
// `lint-expect:` comment must be flagged; the self-test
// (tests/util/lint_fixture_test.cc) and scripts/lint.sh assert the exact
// (line, rule) set. The clean twin (arena_escape_clean.cc) shows the same
// shapes done correctly. The types are minimal stand-ins — the lint keys
// on project naming (QueryArena, Allocate), not on real headers — but the
// file must compile with plain g++ as the harness's positive control.

#include <cstddef>
#include <vector>

namespace {

class QueryArena {
 public:
  void* Allocate(std::size_t n) {
    buf_.push_back(std::vector<char>(n));
    return buf_.back().data();
  }

 private:
  std::vector<std::vector<char>> buf_;
};

// A long-lived type (think: plan cache, store) hoarding per-query memory.
class PlanCache {
 public:
  void Remember(QueryArena* arena) {
    row_ = arena->Allocate(64);  // lint-expect: arena-escape
  }

  void Push(QueryArena* arena) {
    rows_.push_back(arena->Allocate(64));  // lint-expect: arena-escape
  }

 private:
  void* row_ = nullptr;
  std::vector<void*> rows_;
};

void StashGlobal(QueryArena* arena) {
  static void* last_row = arena->Allocate(8);  // lint-expect: arena-escape
  (void)last_row;
}

}  // namespace

int main() {
  QueryArena arena;
  PlanCache cache;
  cache.Remember(&arena);
  cache.Push(&arena);
  StashGlobal(&arena);
  return 0;
}
