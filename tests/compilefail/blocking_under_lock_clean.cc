// rdfrel-lint fixture: blocking-under-lock CLEAN twin. The same I/O and
// hand-off as blocking_under_lock_violation.cc, but staged correctly:
// snapshot state under the lock, release around the blocking call
// (relockable MutexLock idiom, as in persist/wal.cc FlusherLoop), wait only
// on the lock's own mutex. Zero diagnostics expected.

#include "util/mutex.h"

namespace {

struct FakeFile {
  int SyncImpl() { return 0; }
  int Sync() { return SyncImpl(); }
};

struct FakePool {
  void Submit(int /*task*/) {}
};

class Journal {
 public:
  void FlushReleasedAroundIo() {
    rdfrel::util::MutexLock lock(&mu_);
    seq_ = seq_ + 1;
    lock.Unlock();
    file_.Sync();  // lock released: syncing no longer stalls other threads
    lock.Lock();
    synced_seq_ = seq_;
  }

  void HandOffOutsideLock(FakePool* pool) {
    int snapshot = 0;
    {
      rdfrel::util::MutexLock lock(&mu_);
      snapshot = seq_;
    }
    pool->Submit(snapshot);
  }

  void WaitOnOwnMutex(rdfrel::util::CondVar* cv) {
    rdfrel::util::MutexLock lock(&mu_);
    while (seq_ == 0) cv->Wait(mu_);
  }

 private:
  rdfrel::util::Mutex mu_;
  FakeFile file_;
  int seq_ RDFREL_GUARDED_BY(mu_) = 0;
  int synced_seq_ RDFREL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Journal j;
  j.FlushReleasedAroundIo();
  FakePool pool;
  j.HandOffOutsideLock(&pool);
  return 0;
}
