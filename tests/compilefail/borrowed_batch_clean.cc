// rdfrel-lint fixture: borrowed-batch CLEAN twin. The same consumer shapes
// as borrowed_batch_violation.cc using the safe idioms: copy row VALUES or
// index VALUES out of the batch (they survive the producer's next
// NextBatch), keep scratch copies in locals that die with the call, and
// pass the batch address only downward into calls. Zero diagnostics
// expected.

#include <cstdint>
#include <vector>

namespace {

class RowBatch {
 public:
  int RowAt(std::size_t i) const { return rows_[i]; }
  const std::vector<uint32_t>& selection() const { return sel_; }

 private:
  std::vector<int> rows_{0};
  std::vector<uint32_t> sel_{0};
};

int Sum(const RowBatch* batch) { return batch->RowAt(0); }

class Pager {
 public:
  void CopyRowValue(RowBatch* out) {
    first_row_ = out->RowAt(0);  // a Row copy owns its storage: safe
  }

  void CollectRowValues(RowBatch* out) {
    rows_.push_back(out->RowAt(0));  // value lands in the container: safe
  }

  void ScratchSelection(RowBatch& batch) {
    std::vector<uint32_t> scratch(batch.selection());  // dies with the call
    total_ = total_ + static_cast<int>(scratch.size());
  }

  void PassDown(RowBatch& batch) {
    int sum = Sum(&batch);  // address only flows down the stack
    total_ = total_ + sum;
  }

 private:
  int first_row_ = 0;
  int total_ = 0;
  std::vector<int> rows_;
};

}  // namespace

int main() {
  RowBatch batch;
  Pager pager;
  pager.CopyRowValue(&batch);
  pager.CollectRowValues(&batch);
  pager.ScratchSelection(batch);
  pager.PassDown(batch);
  return 0;
}
