// rdfrel-lint fixture: borrowed-batch VIOLATIONS. A RowBatch handed to an
// operator is valid only until the producer's next NextBatch call; the
// hazard is address-shaped retention — keeping the batch pointer, a pointer
// into its storage, or a wholesale copy of its selection vector. Each
// `lint-expect:` line must be flagged; borrowed_batch_clean.cc shows the
// value-copy idioms that are safe.

#include <cstdint>
#include <vector>

namespace {

class RowBatch {
 public:
  int RowAt(std::size_t i) const { return rows_[i]; }
  const std::vector<uint32_t>& selection() const { return sel_; }

 private:
  std::vector<int> rows_{0};
  std::vector<uint32_t> sel_{0};
};

class Pager {
 public:
  void RetainPointer(RowBatch* out) {
    last_ = out;  // lint-expect: borrowed-batch
  }

  void RetainRowAddress(RowBatch& batch) {
    pinned_ = &batch;  // lint-expect: borrowed-batch
  }

  void RetainSelection(RowBatch* out) {
    sel_ = out->selection();  // lint-expect: borrowed-batch
  }

  void CollectSelections(RowBatch* out) {
    sels_.push_back(out->selection());  // lint-expect: borrowed-batch
  }

 private:
  RowBatch* last_ = nullptr;
  RowBatch* pinned_ = nullptr;
  std::vector<uint32_t> sel_;
  std::vector<std::vector<uint32_t>> sels_;
};

}  // namespace

int main() {
  RowBatch batch;
  Pager pager;
  pager.RetainPointer(&batch);
  pager.RetainRowAddress(batch);
  pager.RetainSelection(&batch);
  pager.CollectSelections(&batch);
  return 0;
}
