// rdfrel-lint fixture: status-discipline CLEAN twin. The same intentional
// drops as status_discipline_violation.cc, routed through
// rdfrel::IgnoreError so every swallowed error carries a greppable reason.
// Also exercises the `(void)` uses the rule deliberately leaves alone:
// silencing a genuinely unused non-Status parameter or local. Zero
// diagnostics expected.

#include "util/status.h"

namespace {

rdfrel::Status MightFail() { return rdfrel::Status::OK(); }

rdfrel::Result<int> MightFailWithValue() { return 7; }

void DropCallResult() {
  rdfrel::IgnoreError(MightFail(), "fixture: failure is irrelevant here");
}

void DropStatusVariable() {
  rdfrel::Status scan = MightFail();
  rdfrel::IgnoreError(scan, "fixture: best-effort scan");
}

void DropResultVariable() {
  rdfrel::Result<int> parsed = MightFailWithValue();
  rdfrel::IgnoreError(parsed, "fixture: value only needed when present");
}

void SilenceUnusedParam(int tuning_knob) {
  (void)tuning_knob;  // not a Status: plain unused-suppression stays legal
}

}  // namespace

int main() {
  DropCallResult();
  DropStatusVariable();
  DropResultVariable();
  SilenceUnusedParam(3);
  return 0;
}
