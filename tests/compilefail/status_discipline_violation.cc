// rdfrel-lint fixture: status-discipline VIOLATIONS. `(void)` on a
// Status-bearing expression swallows the only error signal this library
// emits, with nothing greppable left behind. Each `lint-expect:` line must
// be flagged; status_discipline_clean.cc shows the IgnoreError replacement.
// Uses the real util/status.h so the [[nodiscard]] pressure that tempts
// people into `(void)` is present for real.

#include "util/status.h"

namespace {

rdfrel::Status MightFail() { return rdfrel::Status::OK(); }

rdfrel::Result<int> MightFailWithValue() { return 7; }

void DropCallResult() {
  (void)MightFail();  // lint-expect: status-discipline
}

void DropStatusVariable() {
  rdfrel::Status scan = MightFail();
  (void)scan;  // lint-expect: status-discipline
}

void DropResultVariable() {
  rdfrel::Result<int> parsed = MightFailWithValue();
  (void)parsed;  // lint-expect: status-discipline
}

}  // namespace

int main() {
  DropCallResult();
  DropStatusVariable();
  DropResultVariable();
  return 0;
}
