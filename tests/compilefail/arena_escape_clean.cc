// rdfrel-lint fixture: arena-escape CLEAN twin. Same shapes as
// arena_escape_violation.cc, done correctly: arena-backed pointers live in
// locals that die with the query, or in members of a class that declares
// its query-bound lifetime with RDFREL_QUERY_SCOPED. Zero diagnostics
// expected.

#include <cstddef>
#include <vector>

#include "util/scope_markers.h"

namespace {

class QueryArena {
 public:
  void* Allocate(std::size_t n) {
    buf_.push_back(std::vector<char>(n));
    return buf_.back().data();
  }

 private:
  std::vector<std::vector<char>> buf_;
};

// The operator owns arena-backed members AND dies with the query — the
// marker states that contract, so the lint exempts its members.
class RDFREL_QUERY_SCOPED PerQueryBuffer {
 public:
  void Remember(QueryArena* arena) { row_ = arena->Allocate(64); }

  void Push(QueryArena* arena) { rows_.push_back(arena->Allocate(64)); }

 private:
  void* row_ = nullptr;
  std::vector<void*> rows_;
};

// A long-lived type may use the arena freely through locals: nothing
// arena-backed survives the call.
class Evaluator {
 public:
  bool Scratch(QueryArena* arena) {
    void* scratch = arena->Allocate(16);
    return scratch != nullptr;
  }
};

}  // namespace

int main() {
  QueryArena arena;
  PerQueryBuffer buffer;
  buffer.Remember(&arena);
  buffer.Push(&arena);
  Evaluator ev;
  return ev.Scratch(&arena) ? 0 : 1;
}
