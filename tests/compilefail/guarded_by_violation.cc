// Compile-fail input: writes a GUARDED_BY field without holding its mutex.
// Under clang -Werror=thread-safety this translation unit MUST NOT compile;
// the harness (tests/compilefail/CMakeLists.txt and
// scripts/check_thread_safety.sh) asserts exactly that.

#include "util/mutex.h"

namespace {

class Counter {
 public:
  void Bump() { ++value_; }  // BAD: mu_ not held

 private:
  rdfrel::util::Mutex mu_;
  int value_ RDFREL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
