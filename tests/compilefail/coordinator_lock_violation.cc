// Compile-fail input: the sharded-store coordinator pattern with its lock
// discipline broken. Checkpoint() calls a RDFREL_REQUIRES(mu_) helper and
// bumps the GUARDED_BY generation counter without taking the coordinator
// lock (rank kCoordinator) — exactly the bug that would make a multi-shard
// checkpoint a torn cut instead of a consistent one. Under clang
// -Werror=thread-safety this translation unit MUST NOT compile.

#include <cstdint>

#include "util/mutex.h"

namespace {

class MiniCoordinator {
 public:
  void Checkpoint() {
    ++generation_;        // BAD: mu_ not held exclusively
    WriteManifestLocked();  // BAD: REQUIRES(mu_) without the lock
  }

 private:
  void WriteManifestLocked() RDFREL_REQUIRES(mu_) {}

  mutable rdfrel::util::SharedMutex mu_{
      "mini-coordinator", rdfrel::util::lock_rank::kCoordinator};
  uint64_t generation_ RDFREL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  MiniCoordinator c;
  c.Checkpoint();
  return 0;
}
