// Positive control for coordinator_lock_violation.cc: the same sharded
// checkpoint shape with the discipline intact — the coordinator's
// kCoordinator-ranked lock is held exclusively across the generation bump
// and the RDFREL_REQUIRES(mu_) manifest write, so the multi-shard
// checkpoint is one consistent cut. MUST compile under clang
// -Werror=thread-safety.

#include <cstdint>

#include "util/mutex.h"

namespace {

class MiniCoordinator {
 public:
  void Checkpoint() {
    rdfrel::util::WriterLock lock(&mu_);
    ++generation_;
    WriteManifestLocked();
  }

 private:
  void WriteManifestLocked() RDFREL_REQUIRES(mu_) {}

  mutable rdfrel::util::SharedMutex mu_{
      "mini-coordinator", rdfrel::util::lock_rank::kCoordinator};
  uint64_t generation_ RDFREL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  MiniCoordinator c;
  c.Checkpoint();
  return 0;
}
