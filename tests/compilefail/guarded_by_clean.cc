// Positive control for the compile-fail harness: identical shape to
// guarded_by_violation.cc but correctly locked, so it MUST compile under
// clang -Werror=thread-safety. A harness failure here means the include
// path or flags are broken, not that the analysis fired.

#include "util/mutex.h"

namespace {

class Counter {
 public:
  void Bump() {
    rdfrel::util::MutexLock lock(&mu_);
    ++value_;
  }

 private:
  rdfrel::util::Mutex mu_;
  int value_ RDFREL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
