#include "sparql/parser.h"

#include <gtest/gtest.h>

namespace rdfrel::sparql {
namespace {

TEST(SparqlParserTest, SimpleBgp) {
  auto q = ParseQuery(
      "SELECT ?s WHERE { ?s <http://x/p> ?o . ?s <http://x/q> \"v\" }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_vars, (std::vector<std::string>{"s"}));
  EXPECT_EQ(q->num_triples, 2);
  std::vector<const TriplePattern*> ts;
  q->where->CollectTriples(&ts);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_TRUE(ts[0]->subject.is_var);
  EXPECT_EQ(ts[0]->predicate.term, rdf::Term::Iri("http://x/p"));
  EXPECT_EQ(ts[1]->object.term, rdf::Term::Literal("v"));
  EXPECT_EQ(ts[0]->id, 1);
  EXPECT_EQ(ts[1]->id, 2);
}

TEST(SparqlParserTest, PrefixExpansion) {
  auto q = ParseQuery(
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/> "
      "SELECT ?x WHERE { ?x foaf:name ?n }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<const TriplePattern*> ts;
  q->where->CollectTriples(&ts);
  EXPECT_EQ(ts[0]->predicate.term,
            rdf::Term::Iri("http://xmlns.com/foaf/0.1/name"));
}

TEST(SparqlParserTest, UndeclaredPrefixRejected) {
  auto st = ParseQuery("SELECT ?x WHERE { ?x foaf:name ?n }").status();
  EXPECT_TRUE(st.IsInvalidQuery()) << st.ToString();
  EXPECT_EQ(st.code(), StatusCode::kInvalidQuery);
}

TEST(SparqlParserTest, AKeywordIsRdfType) {
  auto q = ParseQuery("SELECT ?x WHERE { ?x a <http://x/Person> }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<const TriplePattern*> ts;
  q->where->CollectTriples(&ts);
  EXPECT_EQ(ts[0]->predicate.term.lexical(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

TEST(SparqlParserTest, PredicateAndObjectLists) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?x <http://x/p> ?a, ?b ; <http://x/q> ?c }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_triples, 3);
  std::vector<const TriplePattern*> ts;
  q->where->CollectTriples(&ts);
  // All share subject ?x.
  for (const auto* t : ts) {
    EXPECT_TRUE(t->subject.is_var);
    EXPECT_EQ(t->subject.var, "x");
  }
  EXPECT_EQ(ts[1]->object.var, "b");
  EXPECT_EQ(ts[2]->predicate.term, rdf::Term::Iri("http://x/q"));
}

TEST(SparqlParserTest, UnionPattern) {
  auto q = ParseQuery(
      "SELECT ?x WHERE { { ?x <p:f> ?y } UNION { ?x <p:m> ?y } }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->where->kind, PatternKind::kOr);
  EXPECT_EQ(q->where->children.size(), 2u);
}

TEST(SparqlParserTest, OptionalPattern) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?x <p:a> ?y OPTIONAL { ?y <p:b> ?z } }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->where->kind, PatternKind::kAnd);
  ASSERT_EQ(q->where->children.size(), 2u);
  EXPECT_EQ(q->where->children[1]->kind, PatternKind::kOptional);
}

TEST(SparqlParserTest, PaperFigure6Query) {
  // The running example of the paper (Figure 6a), modulo prefixes.
  auto q = ParseQuery(R"(
    PREFIX : <http://example.org/>
    SELECT * WHERE {
      ?x :home "Palo Alto" .
      { ?x :founder ?y } UNION { ?x :member ?y }
      ?y :industry "Software" .
      ?z :developer ?y .
      ?y :revenue ?n .
      OPTIONAL { ?y :employees ?m }
    })");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_triples, 7);
  ASSERT_EQ(q->where->kind, PatternKind::kAnd);
  // Children: t1, OR, t4, t5, t6, OPTIONAL.
  ASSERT_EQ(q->where->children.size(), 6u);
  EXPECT_EQ(q->where->children[0]->kind, PatternKind::kTriple);
  EXPECT_EQ(q->where->children[1]->kind, PatternKind::kOr);
  EXPECT_EQ(q->where->children[5]->kind, PatternKind::kOptional);
}

TEST(SparqlParserTest, DistinctOrderLimitOffset) {
  auto q = ParseQuery(
      "SELECT DISTINCT ?x WHERE { ?x <p:a> ?y } "
      "ORDER BY DESC(?y) ?x LIMIT 10 OFFSET 20");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->distinct);
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_TRUE(q->order_by[0].descending);
  EXPECT_EQ(q->order_by[0].var, "y");
  EXPECT_FALSE(q->order_by[1].descending);
  EXPECT_EQ(q->limit, 10);
  EXPECT_EQ(q->offset, 20);
}

TEST(SparqlParserTest, Filters) {
  auto q = ParseQuery(
      "SELECT ?x WHERE { ?x <p:age> ?a . "
      "FILTER (?a > 18 && (?a < 65 || BOUND(?x))) "
      "FILTER (!REGEX(?x, \"bot\")) }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->where->filters.size(), 2u);
  EXPECT_EQ(q->where->filters[0]->op, FilterOp::kAnd);
  EXPECT_EQ(q->where->filters[1]->op, FilterOp::kNot);
}

TEST(SparqlParserTest, TypedAndLangLiterals) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?x <p:a> \"5\"^^<http://www.w3.org/2001/XMLSchema#int> . "
      "?x <p:b> \"hi\"@en . ?x <p:c> 42 . ?x <p:d> 3.5 }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<const TriplePattern*> ts;
  q->where->CollectTriples(&ts);
  EXPECT_EQ(ts[0]->object.term.datatype(),
            "http://www.w3.org/2001/XMLSchema#int");
  EXPECT_EQ(ts[1]->object.term.language(), "en");
  EXPECT_EQ(ts[2]->object.term.lexical(), "42");
  EXPECT_EQ(ts[3]->object.term.datatype(),
            "http://www.w3.org/2001/XMLSchema#decimal");
}

TEST(SparqlParserTest, BlankNodeSubject) {
  auto q = ParseQuery("SELECT * WHERE { _:b <p:a> ?x }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<const TriplePattern*> ts;
  q->where->CollectTriples(&ts);
  EXPECT_TRUE(ts[0]->subject.term.is_blank());
  EXPECT_EQ(ts[0]->subject.term.lexical(), "b");
}

TEST(SparqlParserTest, StarProjectionCollectsAllVars) {
  auto q = ParseQuery("SELECT * WHERE { ?a <p:x> ?b . ?b <p:y> ?c }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->EffectiveSelectVars(),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SparqlParserTest, NestedOptionalAndUnion) {
  auto q = ParseQuery(R"(
    SELECT * WHERE {
      ?a <p:1> ?b .
      OPTIONAL { ?b <p:2> ?c OPTIONAL { ?c <p:3> ?d } }
      { ?a <p:4> ?e } UNION { ?a <p:5> ?e } UNION { ?a <p:6> ?e }
    })");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->where->children.size(), 3u);
  const auto& opt = *q->where->children[1];
  EXPECT_EQ(opt.kind, PatternKind::kOptional);
  const auto& uni = *q->where->children[2];
  EXPECT_EQ(uni.kind, PatternKind::kOr);
  EXPECT_EQ(uni.children.size(), 3u);
}

TEST(SparqlParserTest, MalformedQueriesRejected) {
  EXPECT_FALSE(ParseQuery("SELECT ?x { ?x <p> }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x <p> ?y").ok());
  EXPECT_FALSE(ParseQuery("ASK { ?x <p> ?y }").ok());
  EXPECT_FALSE(ParseQuery("SELECT WHERE { ?x <p> ?y }").ok());
}

TEST(SparqlParserTest, CommentsIgnored) {
  auto q = ParseQuery(
      "# leading comment\nSELECT ?x # trailing\nWHERE { ?x <p:a> ?y }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_triples, 1);
}

TEST(SparqlParserTest, PatternToStringMentionsStructure) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?x <p:a> ?y OPTIONAL { ?y <p:b> ?z } }");
  ASSERT_TRUE(q.ok());
  std::string s = q->where->ToString();
  EXPECT_NE(s.find("AND"), std::string::npos);
  EXPECT_NE(s.find("OPTIONAL"), std::string::npos);
  EXPECT_NE(s.find("t1"), std::string::npos);
}

}  // namespace
}  // namespace rdfrel::sparql
