#include "sparql/inference.h"

#include <gtest/gtest.h>

#include "sparql/parser.h"
#include "store/rdf_store.h"

namespace rdfrel::sparql {
namespace {

TypeHierarchy LubmHierarchy() {
  TypeHierarchy h;
  h.AddSubclass("http://l/GraduateStudent", "http://l/Student");
  h.AddSubclass("http://l/UndergraduateStudent", "http://l/Student");
  h.AddSubclass("http://l/Student", "http://l/Person");
  h.AddSubclass("http://l/FullProfessor", "http://l/Professor");
  h.AddSubclass("http://l/Professor", "http://l/Person");
  return h;
}

TEST(TypeHierarchyTest, TransitiveExpansion) {
  TypeHierarchy h = LubmHierarchy();
  auto student = h.ExpandClass("http://l/Student");
  EXPECT_EQ(student.size(), 3u);
  EXPECT_EQ(student[0], "http://l/Student");  // the class itself first
  auto person = h.ExpandClass("http://l/Person");
  EXPECT_EQ(person.size(), 6u);  // Person, Student, Professor, 2 students, 1 prof
  EXPECT_TRUE(h.HasSubclasses("http://l/Person"));
  EXPECT_FALSE(h.HasSubclasses("http://l/GraduateStudent"));
}

TEST(TypeHierarchyTest, CycleTolerated) {
  TypeHierarchy h;
  h.AddSubclass("a", "b");
  h.AddSubclass("b", "a");
  auto ea = h.ExpandClass("a");
  EXPECT_EQ(ea.size(), 2u);
  h.AddSubclass("a", "a");  // self edge ignored
  EXPECT_EQ(h.ExpandClass("a").size(), 2u);
}

TEST(ExpandTypeQueryTest, RewritesTypeTripleIntoUnion) {
  auto q = ParseQuery(
      "PREFIX : <http://l/> "
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "SELECT ?x WHERE { ?x rdf:type :Student . ?x :takesCourse ?c }");
  ASSERT_TRUE(q.ok());
  TypeHierarchy h = LubmHierarchy();
  auto n = ExpandTypeQuery(h, &*q);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  // One UNION with 3 branches + the course triple = 4 triples.
  EXPECT_EQ(q->num_triples, 4);
  std::string dump = q->where->ToString();
  EXPECT_NE(dump.find("OR"), std::string::npos);
  EXPECT_NE(dump.find("GraduateStudent"), std::string::npos);
  EXPECT_NE(dump.find("UndergraduateStudent"), std::string::npos);
}

TEST(ExpandTypeQueryTest, LeavesLeafTypesAndNonTypeTriples) {
  auto q = ParseQuery(
      "PREFIX : <http://l/> "
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "SELECT ?x WHERE { ?x rdf:type :GraduateStudent . ?x :name ?n }");
  ASSERT_TRUE(q.ok());
  TypeHierarchy h = LubmHierarchy();
  auto n = ExpandTypeQuery(h, &*q);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0);
  EXPECT_EQ(q->num_triples, 2);
}

TEST(ExpandTypeQueryTest, ExpandsInsideNestedPatterns) {
  auto q = ParseQuery(
      "PREFIX : <http://l/> "
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "SELECT ?x WHERE { ?x :name ?n OPTIONAL { ?x rdf:type :Professor } }");
  ASSERT_TRUE(q.ok());
  TypeHierarchy h = LubmHierarchy();
  auto n = ExpandTypeQuery(h, &*q);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  EXPECT_EQ(q->num_triples, 3);  // name + 2 professor classes
}

TEST(ExpandTypeQueryTest, ExpandedQueryAnswersInference) {
  // End-to-end: a store without inference answers a superclass query after
  // expansion (the paper's LUBM methodology).
  rdf::Graph g;
  auto type = rdf::Term::Iri(
      "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  g.Add({rdf::Term::Iri("http://l/alice"), type,
         rdf::Term::Iri("http://l/GraduateStudent")});
  g.Add({rdf::Term::Iri("http://l/bob"), type,
         rdf::Term::Iri("http://l/UndergraduateStudent")});
  g.Add({rdf::Term::Iri("http://l/carol"), type,
         rdf::Term::Iri("http://l/FullProfessor")});
  auto store = store::RdfStore::Load(std::move(g));
  ASSERT_TRUE(store.ok());

  std::string text =
      "PREFIX : <http://l/> "
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "SELECT ?x WHERE { ?x rdf:type :Student }";
  // Unexpanded: no direct Student instances.
  auto plain = (*store)->Query(text);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->size(), 0u);

  // Expanded: both students.
  auto q = ParseQuery(text);
  ASSERT_TRUE(q.ok());
  TypeHierarchy h = LubmHierarchy();
  ASSERT_TRUE(ExpandTypeQuery(h, &*q).ok());
  auto expanded = (*store)->QueryParsed(*q);
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  EXPECT_EQ(expanded->size(), 2u);
}

}  // namespace
}  // namespace rdfrel::sparql
